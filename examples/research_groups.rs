//! Identifying nested research groups in an author–paper network (§I of
//! the paper): bitruss decomposition reveals a loose research community
//! first, then decomposes it into smaller, more cohesive groups — exactly
//! the nested hierarchy the paper illustrates with Figure 1.
//!
//! Run with: `cargo run --release --example research_groups`

use bitruss::workloads::block::{planted_blocks, Block};
use bitruss::{decompose, Algorithm};

fn main() {
    // A field with 600 authors and 900 papers. One broad community
    // (30 authors x 40 papers at low density) contains a tight lab
    // (10 authors x 14 papers, near-complete co-authorship coverage),
    // which itself contains an inseparable trio publishing everything
    // together.
    let n_authors = 600;
    let n_papers = 900;
    let field = Block {
        upper_start: 100,
        upper_len: 30,
        lower_start: 200,
        lower_len: 40,
        density: 0.35,
    };
    let lab = Block {
        upper_start: 108,
        upper_len: 10,
        lower_start: 210,
        lower_len: 14,
        density: 0.9,
    };
    let trio = Block::full(110, 3, 212, 8);

    let background =
        bitruss::workloads::powerlaw::chung_lu(n_authors, n_papers, 4_000, 2.5, 2.5, 7);
    let g = bitruss::GraphBuilder::new()
        .with_upper(n_authors)
        .with_lower(n_papers)
        .add_edges(background.edge_pairs())
        .add_edges(planted_blocks(n_authors, n_papers, &[field, lab, trio], 0, 8).edge_pairs())
        .build()
        .expect("valid synthetic network");

    println!(
        "network: {} authors, {} papers, {} authorship edges",
        g.num_upper(),
        g.num_lower(),
        g.num_edges()
    );

    let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
    println!("max bitruss number: {}", d.max_bitruss());

    // Show how the community containing author 110 (a trio member)
    // shrinks and densifies as k grows: loose field → lab → trio.
    let trio_author = g.upper(110);
    println!("\ncommunities containing author a110 as cohesion k increases:");
    let mut last_size = usize::MAX;
    for k in d.levels() {
        if k == 0 {
            continue;
        }
        let communities = d.communities(&g, k);
        let Some(c) = communities
            .iter()
            .find(|c| c.vertices.binary_search(&trio_author).is_ok())
        else {
            break;
        };
        let authors = c.upper_members(&g).count();
        let papers = c.lower_members(&g).count();
        if authors < last_size {
            println!(
                "  k = {k:>4}: {authors:>3} authors, {papers:>3} papers, {} edges",
                c.edges.len()
            );
            last_size = authors;
        }
    }

    // At the highest level the trio must stand alone with its papers.
    let top_k = d.max_bitruss();
    let top = d.communities(&g, top_k);
    let tight = top
        .iter()
        .find(|c| c.vertices.binary_search(&trio_author).is_ok())
        .expect("trio survives to the top level");
    let authors: Vec<u32> = tight.upper_members(&g).map(|v| g.layer_index(v)).collect();
    println!("\nmost cohesive group (k = {top_k}): authors {authors:?}");
    assert!(authors.iter().all(|&a| (108..=119).contains(&a)));
}
