//! Recommendation support on a user–item network (§I of the paper):
//! the bitruss hierarchy groups users/items at different similarity
//! levels — the denser the subgraph, the more similar its members — and
//! co-membership at high k yields recommendation candidates.
//!
//! Run with: `cargo run --release --example recommendation`

use std::collections::BTreeSet;

use bitruss::workloads::block::{planted_blocks, Block};
use bitruss::{decompose, Algorithm, VertexId};

fn main() {
    // A store with 1 500 users and 1 000 items: two taste clusters of
    // different tightness plus organic long-tail purchases.
    let n_users = 1_500;
    let n_items = 1_000;
    let cluster_a = Block {
        upper_start: 200,
        upper_len: 25,
        lower_start: 100,
        lower_len: 30,
        density: 0.7,
    };
    // 80% coverage: every cluster member misses a few items — those gaps
    // are exactly what the community recommends back.
    let cluster_b = Block {
        upper_start: 900,
        upper_len: 15,
        lower_start: 600,
        lower_len: 12,
        density: 0.8,
    };
    let organic = bitruss::workloads::powerlaw::chung_lu(n_users, n_items, 6_000, 2.7, 2.7, 11);
    let g = bitruss::GraphBuilder::new()
        .with_upper(n_users)
        .with_lower(n_items)
        .add_edges(organic.edge_pairs())
        .add_edges(planted_blocks(n_users, n_items, &[cluster_a, cluster_b], 0, 12).edge_pairs())
        .build()
        .expect("valid synthetic network");

    println!(
        "store: {} users, {} items, {} purchases",
        g.num_upper(),
        g.num_lower(),
        g.num_edges()
    );

    let (d, _) = decompose(&g, Algorithm::pc_default());

    // Pick a member of cluster B and recommend: items bought by the
    // user's high-similarity community that the user has not bought yet.
    let target_user = g.upper(905);
    let bought: BTreeSet<VertexId> = g.neighbors(target_user).map(|(v, _)| v).collect();
    println!(
        "target user u905 bought {} items; searching their similarity community…",
        bought.len()
    );

    // Use the tightest community containing the user.
    let mut best: Option<(u64, Vec<VertexId>)> = None;
    for k in d.levels().into_iter().rev() {
        if k == 0 {
            break;
        }
        if let Some(c) = d
            .communities(&g, k)
            .into_iter()
            .find(|c| c.vertices.binary_search(&target_user).is_ok())
        {
            best = Some((k, c.vertices));
            break; // highest k wins
        }
    }
    let (k, members) = best.expect("user belongs to a cohesive community");
    let items: Vec<VertexId> = members.iter().copied().filter(|&v| g.is_lower(v)).collect();
    let users = members.len() - items.len();
    println!(
        "similarity community at k = {k}: {users} users sharing {} items",
        items.len()
    );

    let recommendations: Vec<u32> = items
        .iter()
        .filter(|v| !bought.contains(v))
        .map(|&v| g.layer_index(v))
        .collect();
    println!("recommended items for u905: {recommendations:?}");

    // The recommendations must be non-trivial and come from cluster B's
    // item range.
    assert!(
        !recommendations.is_empty(),
        "the community fills the user's gaps"
    );
    assert!(recommendations.iter().all(|&i| (600..612).contains(&i)));
    println!("all recommendations lie in the user's taste cluster ✓");
}
