//! Fraud detection on a user–page "like" network (§I of the paper).
//!
//! Fraudulent accounts give fake likes in lockstep: because opening fake
//! accounts is costly, a fraud ring reuses a small set of accounts across
//! the pages it boosts, forming a dense biclique-like block. The ring's
//! size is unknown in advance — but bitruss decomposition reveals closely
//! connected groups at *every* level of cohesion, so the ring surfaces as
//! a high-k community without any size parameter.
//!
//! Run with: `cargo run --release --example fraud_detection`

use bitruss::workloads::block::{planted_blocks, Block};
use bitruss::{decompose, Algorithm};

fn main() {
    // A platform with 2 000 users (upper layer) and 800 pages (lower
    // layer). Organic likes are diffuse; the fraud ring is 18 accounts
    // boosting 12 pages with ~95% coverage.
    let n_users = 2_000;
    let n_pages = 800;
    let ring = Block {
        upper_start: 700,
        upper_len: 18,
        lower_start: 300,
        lower_len: 12,
        density: 0.95,
    };
    // Organic behaviour: power-law likes (popular pages, heavy users).
    // Tail exponents ~2.8 keep natural co-like blooms well below the
    // ring's cohesion; heavier tails would create large organic
    // (2, k)-bicliques that are themselves legitimate dense communities.
    let organic = bitruss::workloads::powerlaw::chung_lu(n_users, n_pages, 9_000, 2.8, 2.8, 42);
    let g = bitruss::GraphBuilder::new()
        .with_upper(n_users)
        .with_lower(n_pages)
        .add_edges(organic.edge_pairs())
        .add_edges(planted_blocks(n_users, n_pages, &[ring], 0, 43).edge_pairs())
        .build()
        .expect("valid synthetic network");

    println!(
        "network: {} users, {} pages, {} likes",
        g.num_upper(),
        g.num_lower(),
        g.num_edges()
    );

    let (d, m) = decompose(&g, Algorithm::pc_default());
    println!(
        "decomposed in {:?} ({} support updates), max bitruss = {}",
        m.total_time(),
        m.support_updates,
        d.max_bitruss()
    );

    // Walk the hierarchy from the most cohesive level down until a
    // non-trivial community appears: that is the lockstep candidate.
    let mut suspicious = None;
    for k in d.levels().into_iter().rev() {
        let communities = d.communities(&g, k);
        if let Some(c) = communities.first() {
            if c.edges.len() >= 20 {
                suspicious = Some((k, c.clone()));
                break;
            }
        }
    }

    let (k, ring_found) = suspicious.expect("a dense community exists");
    let users: Vec<u32> = ring_found
        .upper_members(&g)
        .map(|v| g.layer_index(v))
        .collect();
    let pages: Vec<u32> = ring_found
        .lower_members(&g)
        .map(|v| g.layer_index(v))
        .collect();
    println!(
        "most cohesive community (k = {k}): {} users x {} pages, {} likes",
        users.len(),
        pages.len(),
        ring_found.edges.len()
    );
    println!("  users: {users:?}");
    println!("  pages: {pages:?}");

    // Verify the finding: the flagged users/pages overlap the planted ring.
    let planted_users: Vec<u32> = (700..718).collect();
    let caught = users.iter().filter(|u| planted_users.contains(u)).count();
    println!(
        "  {caught}/{} planted ring accounts are inside the flagged community",
        planted_users.len()
    );
    assert!(caught >= 12, "the ring should dominate the top community");
}
