//! End-to-end network analysis: profile a registry dataset with every
//! tool in the suite — degree stats, (2,2)-core pruning, butterfly
//! counts, tip decomposition of both layers, bitruss decomposition and a
//! direct k-bitruss query.
//!
//! Run with: `cargo run --release --example network_analysis [dataset]`

use bitruss::graph::{alpha_beta_core, GraphStats};
use bitruss::{decompose, k_bitruss, tip_decomposition, Algorithm, TipLayer};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Github".into());
    let Some(dataset) = bitruss::workloads::dataset_by_name(&name) else {
        eprintln!("unknown dataset {name:?}; see datagen::all_datasets()");
        std::process::exit(1);
    };
    let g = dataset.generate();
    let stats = GraphStats::of(&g);
    println!("== {} ==", dataset.name);
    println!(
        "{} upper x {} lower, {} edges (max degree {}/{})",
        stats.num_upper,
        stats.num_lower,
        stats.num_edges,
        stats.max_degree_upper,
        stats.max_degree_lower
    );

    // (2,2)-core: where all butterflies live.
    let core = alpha_beta_core(&g, 2, 2);
    println!(
        "(2,2)-core: {} edges ({:.1}% of the graph holds 100% of the butterflies)",
        core.graph.num_edges(),
        100.0 * core.graph.num_edges() as f64 / g.num_edges() as f64
    );

    // Butterfly profile.
    let counts = bitruss::count_per_edge(&g);
    println!(
        "butterflies: {} (max per-edge support {})",
        counts.total,
        counts.max_support()
    );

    // Tip numbers: which single vertices anchor the most cohesion.
    for (layer, label) in [(TipLayer::Upper, "upper"), (TipLayer::Lower, "lower")] {
        let theta = tip_decomposition(&g, layer);
        let max = theta.iter().copied().max().unwrap_or(0);
        let hubs = theta.iter().filter(|&&t| t == max).count();
        println!("max {label}-tip number: {max} ({hubs} vertices)");
    }

    // Full bitruss decomposition with the paper's fastest algorithm.
    let (d, m) = decompose(&g, Algorithm::Pc { tau: 0.1 });
    println!(
        "bitruss decomposition: φ_max = {} in {:.2}s ({} updates, {} ε-iterations)",
        d.max_bitruss(),
        m.total_time().as_secs_f64(),
        m.support_updates,
        m.iterations
    );

    // Hierarchy silhouette: edges surviving at exponentially spaced k.
    let mut k = 1u64;
    print!("hierarchy: ");
    while k <= d.max_bitruss() {
        print!("|H_{k}|={} ", d.k_bitruss_edges(k).len());
        k *= 4;
    }
    println!();

    // Direct query at half the maximum level — no full decomposition
    // needed when only one level matters.
    let target = (d.max_bitruss() / 2).max(1);
    let h = k_bitruss(&g, target);
    println!(
        "direct {target}-bitruss query: {} edges (matches the decomposition: {})",
        h.graph.num_edges(),
        h.new_to_old.len() == d.k_bitruss_edges(target).len()
    );
}
