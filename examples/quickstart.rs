//! Quickstart: build a small bipartite graph, run a [`BitrussEngine`]
//! session, and explore the result — decompose, query the hierarchy,
//! snapshot, resume.
//!
//! Run with: `cargo run --release --example quickstart`

use bitruss::{Algorithm, BitrussEngine, GraphBuilder, Query};

fn main() {
    // The author–paper network of the paper's Figure 1:
    // authors u0..u3 (upper layer), papers v0..v4 (lower layer).
    let g = GraphBuilder::new()
        .add_edges([
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 2),
            (3, 4),
        ])
        .build()
        .expect("valid edge list");

    println!(
        "graph: {} authors x {} papers, {} edges",
        g.num_upper(),
        g.num_lower(),
        g.num_edges()
    );

    // Butterfly supports — how many (2,2)-bicliques contain each edge.
    let counts = bitruss::count_per_edge(&g);
    println!("butterflies: {}", counts.total);

    // All algorithms produce identical bitruss numbers; they differ in
    // how much work the peeling takes. Each engine session owns one run.
    let mut reference: Option<Vec<u64>> = None;
    for alg in [
        Algorithm::BsIntersection,
        Algorithm::Bu,
        Algorithm::BuPlusPlus,
        Algorithm::pc_default(),
    ] {
        let session = BitrussEngine::builder()
            .algorithm(alg)
            .build_borrowed(&g)
            .expect("run cannot fail without an observer");
        let m = session.metrics().expect("fresh session");
        println!(
            "{:>5}: max bitruss = {}, support updates = {}",
            alg,
            session.max_bitruss(),
            m.support_updates
        );
        if let Some(r) = &reference {
            assert_eq!(session.phi(), &r[..], "algorithms must agree");
        } else {
            reference = Some(session.phi().to_vec());
        }
    }

    // Keep one session for serving: the hierarchy index is built lazily
    // on the first query and cached for the rest.
    let session = BitrussEngine::builder()
        .algorithm(Algorithm::BuPlusPlus)
        .build_borrowed(&g)
        .expect("run cannot fail without an observer");
    for (k, n) in session.level_sizes() {
        println!("phi = {k}: {n} edges");
    }
    for k in session.decomposition().levels() {
        let edges = session.k_bitruss_edges(k).expect("hierarchy");
        println!("{k}-bitruss: {} edges", edges.len());
    }

    // The batch query language the CLI `query` subcommand serves.
    for line in ["edges 2", "community 0 0 2", "community 3 4 2"] {
        let query: Query = line.parse().expect("well-formed query");
        let answer = session.execute(&query).expect("in-range query");
        println!("  {line:<18} -> {answer}");
    }

    // Snapshot the session and resume it — the hierarchy travels along,
    // so the resumed session answers without recomputing anything.
    let mut bytes = Vec::new();
    session.save_snapshot_to(&mut bytes).expect("snapshot");
    let resumed = BitrussEngine::from_snapshot_reader(&bytes[..]).expect("valid snapshot");
    assert_eq!(resumed.phi(), session.phi());
    println!(
        "snapshot: {} bytes; resumed session serves {} edges",
        bytes.len(),
        resumed.graph().num_edges()
    );

    // Per-edge bitruss numbers, as in Figure 1 (blue=2, yellow=1, gray=0).
    for e in g.edges() {
        let (u, v) = g.edge(e);
        println!(
            "  edge (u{}, v{}): support {}, bitruss number {}",
            g.layer_index(u),
            g.layer_index(v),
            counts.support(e),
            session.decomposition().bitruss_number(e)
        );
    }
}
