//! Quickstart: build a small bipartite graph, decompose it with every
//! algorithm, and explore the result.
//!
//! Run with: `cargo run --release --example quickstart`

use bitruss::{decompose, Algorithm, GraphBuilder};

fn main() {
    // The author–paper network of the paper's Figure 1:
    // authors u0..u3 (upper layer), papers v0..v4 (lower layer).
    let g = GraphBuilder::new()
        .add_edges([
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 2),
            (3, 4),
        ])
        .build()
        .expect("valid edge list");

    println!(
        "graph: {} authors x {} papers, {} edges",
        g.num_upper(),
        g.num_lower(),
        g.num_edges()
    );

    // Butterfly supports — how many (2,2)-bicliques contain each edge.
    let counts = bitruss::count_per_edge(&g);
    println!("butterflies: {}", counts.total);

    // All algorithms produce identical bitruss numbers; they differ in
    // how much work the peeling takes.
    let mut reference = None;
    for alg in [
        Algorithm::BsIntersection,
        Algorithm::Bu,
        Algorithm::BuPlusPlus,
        Algorithm::pc_default(),
    ] {
        let (d, m) = decompose(&g, alg);
        println!(
            "{:>5}: max bitruss = {}, support updates = {}",
            alg.name(),
            d.max_bitruss(),
            m.support_updates
        );
        if let Some(r) = &reference {
            assert_eq!(&d, r, "algorithms must agree");
        } else {
            reference = Some(d);
        }
    }
    let d = reference.expect("at least one algorithm ran");

    // The bitruss hierarchy: each level is a maximal subgraph in which
    // every edge lies in at least k butterflies.
    for k in d.levels() {
        let edges = d.k_bitruss_edges(k);
        println!("{k}-bitruss: {} edges", edges.len());
    }

    // Per-edge bitruss numbers, as in Figure 1 (blue=2, yellow=1, gray=0).
    for e in g.edges() {
        let (u, v) = g.edge(e);
        println!(
            "  edge (u{}, v{}): support {}, bitruss number {}",
            g.layer_index(u),
            g.layer_index(v),
            counts.support(e),
            d.bitruss_number(e)
        );
    }
}
