//! Integration tests for the extension features: the priority-order
//! ablation knob and decomposition persistence.

use bitruss::graph::{GraphBuilder, PriorityMode};
use bitruss::{decompose, Algorithm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any total priority order yields the same bitruss numbers — the
    /// BE-Index partition of butterflies into blooms changes shape, not
    /// semantics.
    #[test]
    fn priority_order_does_not_change_phi(
        nu in 3..14u32,
        nl in 3..14u32,
        m in 5..70usize,
        seed in any::<u64>(),
    ) {
        let base = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let id_only = GraphBuilder::new()
            .with_upper(base.num_upper())
            .with_lower(base.num_lower())
            .with_priority_mode(PriorityMode::IdOnly)
            .add_edges(base.edge_pairs())
            .build()
            .unwrap();
        for alg in [Algorithm::Bu, Algorithm::BuPlusPlus, Algorithm::Pc { tau: 0.2 }] {
            let (d_deg, _) = decompose(&base, alg);
            let (d_id, _) = decompose(&id_only, alg);
            prop_assert_eq!(&d_deg.phi, &d_id.phi, "{}", alg.name());
        }
    }

    /// Decomposition persistence round-trips byte-for-byte semantics —
    /// including declared layer sizes, so graphs with trailing isolated
    /// vertices come back identical (the reader honours the size header
    /// it writes; regression for the header being silently dropped).
    #[test]
    fn persistence_round_trip(
        nu in 3..16u32,
        nl in 3..16u32,
        m in 0..90usize,
        extra_upper in 0..5u32,
        extra_lower in 0..5u32,
        seed in any::<u64>(),
    ) {
        let base = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let g = GraphBuilder::new()
            .with_upper(base.num_upper() + extra_upper)
            .with_lower(base.num_lower() + extra_lower)
            .add_edges(base.edge_pairs())
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let mut buf = Vec::new();
        bitruss::write_decomposition(&g, &d, &mut buf).unwrap();
        let (g2, d2) = bitruss::read_decomposition(buf.as_slice()).unwrap();
        prop_assert_eq!(g.edge_pairs(), g2.edge_pairs());
        prop_assert_eq!(g.num_upper(), g2.num_upper());
        prop_assert_eq!(g.num_lower(), g2.num_lower());
        prop_assert_eq!(d, d2);
    }

    /// Binary snapshots round-trip the exact `(graph, φ)` pair — declared
    /// layer sizes included — and the persisted hierarchy equals the one
    /// rebuilt from scratch.
    #[test]
    fn binary_snapshot_round_trip(
        nu in 3..16u32,
        nl in 3..16u32,
        m in 0..90usize,
        extra_upper in 0..5u32,
        extra_lower in 0..5u32,
        seed in any::<u64>(),
    ) {
        let base = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let g = GraphBuilder::new()
            .with_upper(base.num_upper() + extra_upper)
            .with_lower(base.num_lower() + extra_lower)
            .add_edges(base.edge_pairs())
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let h = bitruss::BitrussHierarchy::new(&g, &d).unwrap();
        let mut buf = Vec::new();
        bitruss::write_snapshot(&g, &d, Some(&h), &mut buf).unwrap();
        let snap = bitruss::read_snapshot(buf.as_slice()).unwrap();
        prop_assert_eq!(g.edge_pairs(), snap.graph.edge_pairs());
        prop_assert_eq!(g.num_upper(), snap.graph.num_upper());
        prop_assert_eq!(g.num_lower(), snap.graph.num_lower());
        prop_assert_eq!(&d, &snap.decomposition);
        prop_assert_eq!(snap.hierarchy, Some(h));
    }
}

/// On a skewed graph the degree order produces a strictly smaller index
/// (Lemma 6's bound is the point of Definition 7).
#[test]
fn degree_priority_shrinks_the_index_on_skewed_graphs() {
    let base = bitruss::workloads::powerlaw::chung_lu(300, 300, 3_000, 1.8, 1.8, 11);
    let id_only = GraphBuilder::new()
        .with_upper(base.num_upper())
        .with_lower(base.num_lower())
        .with_priority_mode(PriorityMode::IdOnly)
        .add_edges(base.edge_pairs())
        .build()
        .unwrap();
    let idx_deg = bitruss::index::BeIndex::build(&base);
    let idx_id = bitruss::index::BeIndex::build(&id_only);
    assert!(
        idx_deg.num_wedges() < idx_id.num_wedges(),
        "degree order: {} wedges, id order: {} wedges",
        idx_deg.num_wedges(),
        idx_id.num_wedges()
    );
    // Both still satisfy Lemma 1-3 semantics.
    assert_eq!(idx_deg.total_butterflies(), idx_id.total_butterflies());
}
