//! Durability tests for the crash-safe snapshot store: kill-point
//! recovery proptests plus a deterministic corruption corpus.
//!
//! The contract under test (see `docs/DURABILITY.md`):
//!
//! * **No lost acks** — every batch whose `apply` returned `Ok` survives
//!   a crash at *any* later point.
//! * **No invented state** — recovery always lands on a state reachable
//!   by applying an acknowledged prefix of the workload (plus at most
//!   the one in-flight batch whose record happened to reach the disk
//!   whole before the crash).
//! * **Corruption is loud or contained** — a damaged journal tail is
//!   truncated to the last valid record, a damaged newest snapshot
//!   falls back to the previous generation, and a damaged MANIFEST
//!   fails recovery with an error naming the file.
//!
//! All tests run on [`MemVfs`], the deterministic fault-injecting
//! in-memory filesystem: kills, torn writes and ENOSPC are simulated by
//! global operation number, and `crash()` discards everything that was
//! never fsynced. When an assertion fails, the offending durable image
//! is exported to `target/durability-failures/<case>/` so CI can upload
//! it for offline replay.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bitruss::dynamic::DynamicEngineExt;
use bitruss::graph::GraphBuilder;
use bitruss::{BitrussEngine, DurableEngine, Fault, MemVfs, UpdateBatch, Vfs};
use proptest::prelude::*;

/// Tiny deterministic generator (the vendored proptest shim has no
/// collection strategies; seeds drive the shapes instead).
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// An engine state as a comparable value: `(upper, lower) → φ`.
type State = BTreeMap<(u32, u32), u64>;

fn state_of(engine: &BitrussEngine<'_>) -> State {
    engine
        .graph()
        .edge_pairs()
        .into_iter()
        .zip(engine.phi().iter().copied())
        .collect()
}

/// Rebuilds an engine holding exactly `state`'s edge set (φ recomputed
/// from scratch — bit-identical to the maintained values by the
/// maintenance property tests).
fn engine_from_state(state: &State) -> BitrussEngine<'static> {
    let g = GraphBuilder::new()
        .add_edges(state.keys().copied())
        .build()
        .expect("state graph");
    BitrussEngine::builder().build(g).expect("state engine")
}

fn store_dir() -> PathBuf {
    PathBuf::from("/store")
}

/// A chain of batches, each valid when every predecessor was applied
/// (deletes target edges present in the evolving mirror, inserts are
/// fresh pairs). Batches can legitimately come out empty — the durable
/// engine must ack those without journaling them.
fn gen_batches(base: &bitruss::BipartiteGraph, seed: u64, count: usize) -> Vec<UpdateBatch> {
    let mut rng = Rng::new(seed);
    let mut present: std::collections::BTreeSet<(u32, u32)> =
        base.edge_pairs().into_iter().collect();
    let mut batches = Vec::with_capacity(count);
    for _ in 0..count {
        let mut batch = UpdateBatch::new();
        for _ in 0..(1 + rng.next() % 3) {
            if !present.is_empty() && rng.next().is_multiple_of(2) {
                let idx = rng.next() as usize % present.len();
                let &(u, v) = present.iter().nth(idx).expect("mirror edge");
                batch.delete(u, v);
                present.remove(&(u, v));
            } else {
                let pair = ((rng.next() % 8) as u32, (rng.next() % 8) as u32);
                if present.insert(pair) {
                    batch.insert(pair.0, pair.1);
                }
            }
        }
        batches.push(batch);
    }
    batches
}

/// What one (possibly fault-injected) run of the workload observed.
struct RunOutcome {
    /// `acked_states[i]` is the engine state after `i` acknowledged
    /// batches; `acked_states[0]` is the base state.
    acked_states: Vec<State>,
    /// Number of batches whose `apply` returned `Ok`.
    acked: usize,
    /// The batch whose `apply` errored, if the run ended on one (its
    /// journal record may or may not have reached the disk whole).
    in_flight: Option<UpdateBatch>,
    /// `true` when `DurableEngine::create_with` itself failed.
    create_failed: bool,
}

/// Runs create → (checkpoint?/apply)* on `vfs`, stopping at the first
/// error (under `Fault::Kill` every later operation fails anyway).
fn run_workload(
    vfs: &MemVfs,
    base: &bitruss::BipartiteGraph,
    batches: &[UpdateBatch],
    checkpoint_every: usize,
) -> RunOutcome {
    let engine = BitrussEngine::builder()
        .build(base.clone())
        .expect("base engine");
    let acked_states = vec![state_of(&engine)];
    let mut outcome = RunOutcome {
        acked_states,
        acked: 0,
        in_flight: None,
        create_failed: false,
    };
    let mut durable = match DurableEngine::create_with(Arc::new(vfs.clone()), &store_dir(), engine)
    {
        Ok(d) => d,
        Err(_) => {
            outcome.create_failed = true;
            return outcome;
        }
    };
    for (i, batch) in batches.iter().enumerate() {
        if checkpoint_every > 0
            && i > 0
            && i % checkpoint_every == 0
            && durable.checkpoint().is_err()
        {
            return outcome;
        }
        match durable.apply(batch) {
            Ok(_) => {
                outcome.acked += 1;
                outcome.acked_states.push(state_of(durable.engine()));
            }
            Err(_) => {
                outcome.in_flight = Some(batch.clone());
                return outcome;
            }
        }
    }
    outcome
}

/// Dumps the crashed durable image for CI artifact upload, then returns
/// the failure message.
fn dump_and_describe(vfs: &MemVfs, tag: &str, msg: &str) -> String {
    let dir = PathBuf::from("target/durability-failures").join(tag);
    match vfs.dump_durable_to(&dir) {
        Ok(()) => format!("{msg} (durable image dumped to {})", dir.display()),
        Err(e) => format!("{msg} (image dump failed: {e})"),
    }
}

/// Checks that recovery from `vfs` (already crashed) lands on an
/// acknowledged prefix of `outcome`'s workload.
fn check_recovery(vfs: &MemVfs, outcome: &RunOutcome) -> Result<(), String> {
    let recovered = match DurableEngine::open_with(Arc::new(vfs.clone()), &store_dir()) {
        Ok(r) => r,
        Err(e) => {
            // A store whose create() never returned Ok may legitimately
            // not exist; anything acknowledged must recover.
            if outcome.create_failed && outcome.acked == 0 {
                return Ok(());
            }
            return Err(format!(
                "recovery failed after {} acknowledged batches: {e}",
                outcome.acked
            ));
        }
    };
    let got = state_of(recovered.engine());
    if got == outcome.acked_states[outcome.acked] {
        return Ok(());
    }
    // The one in-flight batch's record may have reached the disk whole
    // even though its fsync (the ack) never completed: recovering *that*
    // state is allowed too — it is a valid next state, just unconfirmed.
    if let Some(batch) = &outcome.in_flight {
        let mut extended = engine_from_state(&outcome.acked_states[outcome.acked]);
        if extended.apply(batch).is_ok() && state_of(&extended) == got {
            return Ok(());
        }
    }
    Err(format!(
        "recovered state matches no acknowledged prefix (acked {} of {} states, in-flight: {})",
        outcome.acked,
        outcome.acked_states.len(),
        outcome.in_flight.is_some(),
    ))
}

// ---------------------------------------------------------------------
// Kill-point sweep: the tentpole property.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// For EVERY filesystem operation in the workload, killing the
    /// process at that operation and recovering must land on a state
    /// reachable from an acknowledged prefix — across pure crashes and
    /// crashes that leave torn (partially persisted) journal tails.
    #[test]
    fn every_kill_point_recovers_an_acknowledged_prefix(
        seed in any::<u64>(),
        graph_seed in any::<u64>(),
        n_batches in 2..5usize,
        checkpoint_every in 0..3usize,
    ) {
        let base = bitruss::workloads::random::uniform(6, 6, 24, graph_seed);
        let batches = gen_batches(&base, seed, n_batches);

        // Fault-free baseline: everything acks; count the ops so the
        // kill sweep covers each one exactly.
        let clean = MemVfs::new();
        let baseline = run_workload(&clean, &base, &batches, checkpoint_every);
        prop_assert!(!baseline.create_failed);
        prop_assert_eq!(baseline.acked, batches.len());
        let total_ops = clean.ops();
        prop_assert!(total_ops > 0);

        // keep=0 is a pure crash (only fsynced bytes survive); the
        // other values let part — or occasionally all — of an unsynced
        // journal append survive, exercising torn-tail truncation and
        // the whole-record-without-ack case.
        for kill_at in 0..total_ops {
            for keep in [0usize, 7, 64] {
                let vfs = MemVfs::new();
                vfs.fail_at(kill_at, Fault::Kill);
                let outcome = run_workload(&vfs, &base, &batches, checkpoint_every);
                vfs.crash_keeping_tail(keep);
                if let Err(msg) = check_recovery(&vfs, &outcome) {
                    let tag = format!("kill-{kill_at}-keep-{keep}");
                    prop_assert!(false, "kill@{kill_at} keep={keep}: {}",
                        dump_and_describe(&vfs, &tag, &msg));
                }
            }
        }
    }

    /// Transient write failures (ENOSPC, torn writes) must lose exactly
    /// the batches whose `apply` errored: the journal self-heals, later
    /// batches ack normally, and recovery replays the acknowledged
    /// subsequence — nothing more, nothing less.
    #[test]
    fn transient_faults_lose_only_unacknowledged_batches(
        seed in any::<u64>(),
        graph_seed in any::<u64>(),
    ) {
        let base = bitruss::workloads::random::uniform(6, 6, 24, graph_seed);
        let batches = gen_batches(&base, seed, 6);
        let vfs = MemVfs::new();
        let engine = BitrussEngine::builder().build(base.clone()).expect("base engine");
        let mut durable =
            DurableEngine::create_with(Arc::new(vfs.clone()), &store_dir(), engine)
                .expect("create");

        let mut rng = Rng::new(seed ^ 0x5DEECE66D);
        let mut failed = 0usize;
        for (i, batch) in batches.iter().enumerate() {
            let before = state_of(durable.engine());
            if i % 2 == 0 {
                // Arm a one-shot transient fault on the record write or
                // its fsync.
                let fault = if rng.next().is_multiple_of(2) { Fault::Enospc } else { Fault::ShortWrite };
                vfs.fail_at(vfs.ops() + rng.next() % 2, fault);
            }
            match durable.apply(batch) {
                Ok(_) => {}
                Err(_) => {
                    failed += 1;
                    // A failed apply must leave the in-memory state
                    // untouched.
                    prop_assert_eq!(state_of(durable.engine()), before);
                }
            }
        }
        prop_assert!(failed > 0, "fault schedule hit no batch");
        let expected = state_of(durable.engine());
        drop(durable);

        vfs.crash();
        let recovered = match DurableEngine::open_with(Arc::new(vfs.clone()), &store_dir()) {
            Ok(r) => r,
            Err(e) => {
                let msg = dump_and_describe(&vfs, "enospc-recovery", &e.to_string());
                prop_assert!(false, "recovery failed: {}", msg);
                unreachable!()
            }
        };
        let got = state_of(recovered.engine());
        if got != expected {
            let msg = dump_and_describe(
                &vfs,
                "enospc-divergence",
                "recovered state is not the acknowledged subsequence",
            );
            prop_assert!(false, "{}", msg);
        }

        // The recovered store accepts new writes: the journal healed.
        let mut recovered = recovered;
        let mut fresh = UpdateBatch::new();
        fresh.insert(30, 31); // guaranteed absent: the workload stays under (8, 8)
        recovered.apply(&fresh).expect("post-recovery apply");
        prop_assert!(recovered.engine().graph().num_edges() as usize == expected.len() + 1);
    }
}

// ---------------------------------------------------------------------
// Corruption corpus: deterministic damage to a known-good store image.

/// Three two-insert batches over fresh upper vertices (6, 7): never
/// no-ops, so the journal holds exactly one 42-byte record per batch
/// (4 len + 8 seq + 4 count + 2 × 9 ops + 8 checksum) after the
/// 28-byte header.
fn corpus_batches() -> Vec<UpdateBatch> {
    let mut b1 = UpdateBatch::new();
    b1.insert(6, 0).insert(6, 1);
    let mut b2 = UpdateBatch::new();
    b2.insert(7, 2).insert(7, 3);
    let mut b3 = UpdateBatch::new();
    b3.insert(6, 2).insert(7, 0);
    vec![b1, b2, b3]
}

const CORPUS_HEADER: usize = 28;
const CORPUS_RECORD: usize = 42;

/// Builds a store with `corpus_batches` applied (no checkpoint), and
/// returns the live vfs plus the per-prefix states.
fn corpus_store() -> (MemVfs, Vec<State>) {
    let base = bitruss::workloads::random::uniform(6, 6, 24, 42);
    let vfs = MemVfs::new();
    let engine = BitrussEngine::builder().build(base).expect("base engine");
    let mut states = vec![state_of(&engine)];
    let mut durable =
        DurableEngine::create_with(Arc::new(vfs.clone()), &store_dir(), engine).expect("create");
    for batch in corpus_batches() {
        durable.apply(&batch).expect("corpus apply");
        states.push(state_of(durable.engine()));
    }
    drop(durable);
    (vfs, states)
}

/// Overwrites `path` on `vfs` with `bytes`, durably.
fn rewrite(vfs: &MemVfs, path: &Path, bytes: &[u8]) {
    use std::io::Write as _;
    let mut f = vfs.create(path).expect("rewrite create");
    f.write_all(bytes).expect("rewrite write");
    f.sync_data().expect("rewrite sync");
    vfs.sync_dir(path.parent().expect("parent"))
        .expect("rewrite dir sync");
}

/// Truncating the journal at any byte keeps exactly the complete
/// records before the cut; a cut inside the header is a loud failure
/// (the header is written atomically before the MANIFEST commits, so
/// only external damage can produce one).
#[test]
fn journal_truncation_corpus() {
    let full = CORPUS_HEADER + 3 * CORPUS_RECORD;
    for cut in 0..=full {
        let (vfs, states) = corpus_store();
        let wal = store_dir().join("wal-0.log");
        assert_eq!(vfs.durable_bytes(&wal).expect("wal bytes").len(), full);
        vfs.truncate(&wal, cut as u64).expect("truncate");

        let opened = DurableEngine::open_with(Arc::new(vfs.clone()), &store_dir());
        if cut < CORPUS_HEADER {
            assert!(opened.is_err(), "cut {cut}: torn header must fail recovery");
            continue;
        }
        let recovered = match opened {
            Ok(r) => r,
            Err(e) => {
                panic!(
                    "cut {cut}: {}",
                    dump_and_describe(&vfs, &format!("truncate-{cut}"), &e.to_string())
                );
            }
        };
        let complete = (cut - CORPUS_HEADER) / CORPUS_RECORD;
        let report = recovered.recovery().expect("report");
        assert_eq!(report.replayed_batches, complete, "cut {cut}");
        let on_boundary = (cut - CORPUS_HEADER).is_multiple_of(CORPUS_RECORD);
        assert_eq!(report.truncated_journal, !on_boundary, "cut {cut}");
        assert!(!report.fell_back, "cut {cut}");
        assert_eq!(state_of(recovered.engine()), states[complete], "cut {cut}");
    }
}

/// Flipping any byte of a journal record stops replay at the last
/// record before the damage; flipping the journal header is loud.
#[test]
fn journal_byte_flip_corpus() {
    let full = CORPUS_HEADER + 3 * CORPUS_RECORD;
    for offset in 0..full {
        let (vfs, states) = corpus_store();
        let wal = store_dir().join("wal-0.log");
        let mut bytes = vfs.durable_bytes(&wal).expect("wal bytes");
        bytes[offset] ^= 0xA5;
        rewrite(&vfs, &wal, &bytes);

        let opened = DurableEngine::open_with(Arc::new(vfs.clone()), &store_dir());
        if offset < CORPUS_HEADER {
            assert!(
                opened.is_err(),
                "offset {offset}: corrupt journal header must fail recovery"
            );
            continue;
        }
        let recovered = match opened {
            Ok(r) => r,
            Err(e) => {
                panic!(
                    "offset {offset}: {}",
                    dump_and_describe(&vfs, &format!("flip-{offset}"), &e.to_string())
                );
            }
        };
        let intact = (offset - CORPUS_HEADER) / CORPUS_RECORD;
        let report = recovered.recovery().expect("report");
        assert_eq!(report.replayed_batches, intact, "offset {offset}");
        assert!(report.truncated_journal, "offset {offset}");
        assert_eq!(
            state_of(recovered.engine()),
            states[intact],
            "offset {offset}"
        );
    }
}

/// A corrupt MANIFEST can never be silently reinterpreted: every
/// single-byte flip fails recovery with an error naming the file.
#[test]
fn manifest_corruption_is_loud() {
    for offset in 0..CORPUS_HEADER {
        let (vfs, _) = corpus_store();
        let manifest = store_dir().join("MANIFEST");
        let mut bytes = vfs.durable_bytes(&manifest).expect("manifest bytes");
        assert_eq!(bytes.len(), CORPUS_HEADER);
        bytes[offset] ^= 0xA5;
        rewrite(&vfs, &manifest, &bytes);

        let err = DurableEngine::open_with(Arc::new(vfs.clone()), &store_dir())
            .err()
            .unwrap_or_else(|| panic!("offset {offset}: corrupt MANIFEST must fail recovery"));
        assert!(
            err.to_string().contains("MANIFEST"),
            "offset {offset}: error must name the file: {err}"
        );
    }
}

/// A corrupt newest snapshot falls back to the previous generation and
/// replays its full journal — the acknowledged state survives — then
/// immediately re-checkpoints so writes can resume.
#[test]
fn corrupt_newest_snapshot_falls_back_without_losing_acks() {
    let base = bitruss::workloads::random::uniform(6, 6, 24, 42);
    let vfs = MemVfs::new();
    let engine = BitrussEngine::builder().build(base).expect("base engine");
    let mut durable =
        DurableEngine::create_with(Arc::new(vfs.clone()), &store_dir(), engine).expect("create");
    let batches = corpus_batches();
    durable.apply(&batches[0]).expect("apply 0");
    assert_eq!(durable.checkpoint().expect("checkpoint"), 1);
    durable.apply(&batches[1]).expect("apply 1");
    let expected = state_of(durable.engine());
    drop(durable);

    // Flip a byte in the middle of gen-1.snap: the committed newest
    // snapshot now fails its checksum.
    let snap = store_dir().join("gen-1.snap");
    let mut bytes = vfs.durable_bytes(&snap).expect("snap bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    rewrite(&vfs, &snap, &bytes);

    let recovered =
        DurableEngine::open_with(Arc::new(vfs.clone()), &store_dir()).expect("fallback recovery");
    let report = recovered.recovery().expect("report").clone();
    assert!(report.fell_back);
    assert_eq!(report.loaded_generation, 0);
    assert_eq!(report.manifest_generation, 1);
    // gen 1 ≡ gen 0 + full wal-0 (1 batch) and wal-1 held 1 more batch.
    assert_eq!(report.replayed_batches, 2);
    assert!(!report.possibly_lost_tail);
    assert_eq!(state_of(recovered.engine()), expected);
    // The fallback recovery re-checkpointed: a fresh committed
    // generation exists and the store accepts writes again.
    assert_eq!(recovered.generation(), 2);
    assert_eq!(recovered.journal_batches(), 0);
    let mut recovered = recovered;
    recovered
        .apply(&corpus_batches()[2])
        .expect("post-fallback apply");
}
