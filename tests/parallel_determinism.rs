//! Determinism cross-checks for the parallel engine: the parallel
//! BE-Index build and BiT-BU++/P must be **bit-identical** to their
//! sequential counterparts for every thread count, on randomized graphs.
//! These are the guarantees the merge-in-vertex-order construction and
//! the `max(MBS, ·)` composition law provide by design; this suite pins
//! them against regressions.

use bitruss::decomposition::{bit_bu_pp, bit_bu_pp_par_tuned, validate_decomposition};
use bitruss::index::BeIndex;
use bitruss::{decompose, Algorithm, BipartiteGraph, Threads};
use proptest::prelude::*;

const THREAD_COUNTS: &[usize] = &[1, 2, 3, 8];

/// Random bipartite graph strategy: up to `max_n`×`max_n` vertices with a
/// variable number of edges.
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = BipartiteGraph> {
    (2..=max_n, 2..=max_n, 0..=max_m, any::<u64>())
        .prop_map(|(nu, nl, m, seed)| bitruss::workloads::random::uniform(nu, nl, m, seed))
}

/// Skewed bipartite graph strategy (hubs present).
fn arb_skewed(max_n: u32, max_m: usize) -> impl Strategy<Value = BipartiteGraph> {
    (4..=max_n, 4..=max_n, 8..=max_m, any::<u64>(), 15..30u32).prop_map(
        |(nu, nl, m, seed, alpha10)| {
            bitruss::workloads::powerlaw::chung_lu(
                nu,
                nl,
                m,
                f64::from(alpha10) / 10.0,
                f64::from(alpha10) / 10.0,
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The parallel index build produces the identical index — same bloom
    /// numbering, same wedge order, same CSR layout — for every thread
    /// count.
    #[test]
    fn parallel_index_build_is_bit_identical(g in arb_graph(20, 120)) {
        let seq = BeIndex::build(&g);
        for &t in THREAD_COUNTS {
            let par = BeIndex::build_parallel(&g, Threads(t));
            prop_assert_eq!(&par, &seq, "threads = {}", t);
        }
    }

    /// Same property on skewed graphs, whose hub vertices stress the
    /// interleaved sharding balance.
    #[test]
    fn parallel_index_build_is_bit_identical_skewed(g in arb_skewed(32, 260)) {
        let seq = BeIndex::build(&g);
        for &t in THREAD_COUNTS {
            let par = BeIndex::build_parallel(&g, Threads(t));
            prop_assert_eq!(&par, &seq, "threads = {}", t);
            par.validate(&g).unwrap();
        }
    }

    /// BiT-BU++/P produces the identical decomposition for every thread
    /// count (min_work = 0 forces the per-batch fan-out even on tiny
    /// graphs, so the parallel code path is genuinely exercised).
    #[test]
    fn parallel_decomposition_is_bit_identical(g in arb_graph(16, 80)) {
        let (seq, _) = bit_bu_pp(&g);
        for &t in THREAD_COUNTS {
            let (par, m) = bit_bu_pp_par_tuned(&g, Threads(t), 0);
            prop_assert_eq!(&par, &seq, "threads = {}", t);
            prop_assert_eq!(m.peeling_threads, t);
        }
        validate_decomposition(&g, &seq).unwrap();
    }

    /// The aggregated update count is itself deterministic across thread
    /// counts (the written-edge set per batch is thread-independent).
    #[test]
    fn update_counts_are_thread_independent(g in arb_skewed(28, 220)) {
        let mut counts = Vec::new();
        let mut decs = Vec::new();
        for &t in THREAD_COUNTS {
            let (d, m) = bit_bu_pp_par_tuned(&g, Threads(t), 0);
            counts.push(m.support_updates);
            decs.push(d);
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{:?}", counts);
        prop_assert!(decs.windows(2).all(|w| w[0] == w[1]));
    }
}

#[test]
fn dispatcher_parallel_variant_agrees_with_sequential() {
    for seed in 0..4 {
        let g = bitruss::workloads::random::uniform(14, 14, 60, seed);
        let (seq, _) = decompose(&g, Algorithm::BuPlusPlus);
        let (par, m) = decompose(
            &g,
            Algorithm::BuPlusPlusPar {
                threads: Threads(4),
            },
        );
        assert_eq!(par, seq, "seed {seed}");
        assert_eq!(m.counting_threads, 4);
        assert_eq!(m.index_threads, 4);
        assert_eq!(m.peeling_threads, 4);
    }
}

#[test]
fn auto_threads_resolve_and_agree() {
    let g = bitruss::workloads::powerlaw::chung_lu(40, 40, 400, 2.0, 2.0, 17);
    let (seq, _) = bit_bu_pp(&g);
    let (par, m) = decompose(&g, Algorithm::parallel_auto());
    assert_eq!(par, seq);
    assert!(m.peeling_threads >= 1);
}
