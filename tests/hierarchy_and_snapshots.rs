//! Integration tests for the bitruss hierarchy index and binary
//! snapshots: randomized cross-checks that `BitrussHierarchy` answers
//! every query identically to the `Decomposition` rescans it replaces,
//! and that snapshot corruption is always detected.

use bitruss::graph::GraphBuilder;
use bitruss::{decompose, Algorithm, BitrussHierarchy, Community};
use proptest::prelude::*;

/// Sorts a community list into a canonical order: both implementations
/// sort by size descending but leave ties unspecified.
fn canon(mut cs: Vec<Community>) -> Vec<Community> {
    cs.sort_by_key(|c| c.edges[0]);
    cs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every hierarchy query agrees with the O(m) Decomposition scans,
    /// at every interesting k (each distinct level, the gaps between
    /// levels, 0, and past the maximum).
    #[test]
    fn hierarchy_matches_decomposition_scans(
        nu in 2..13u32,
        nl in 2..13u32,
        m in 0..80usize,
        extra in 0..4u32,
        seed in any::<u64>(),
    ) {
        let base = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let g = GraphBuilder::new()
            .with_upper(base.num_upper() + extra)
            .with_lower(base.num_lower() + extra)
            .add_edges(base.edge_pairs())
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let h = BitrussHierarchy::new(&g, &d).unwrap();

        prop_assert_eq!(h.max_bitruss(), d.max_bitruss());
        prop_assert_eq!(h.level_sizes(), d.level_sizes());
        prop_assert_eq!(h.levels(), &d.levels()[..]);

        let mut ks: Vec<u64> = d.levels();
        ks.extend(d.levels().iter().map(|k| k + 1));
        ks.push(0);
        ks.sort_unstable();
        ks.dedup();
        for k in ks {
            let want = d.k_bitruss_edges(k);
            prop_assert_eq!(h.k_bitruss_count(k), want.len(), "count k={}", k);
            prop_assert_eq!(h.k_bitruss_edges(k), want, "edges k={}", k);

            let scans = d.communities(&g, k);
            prop_assert_eq!(
                canon(h.communities(&g, k)),
                canon(scans.clone()),
                "communities k={}",
                k
            );
            for e in g.edges() {
                let direct = h.community_of(&g, e, k);
                let scanned = scans.iter().find(|c| c.edges.contains(&e)).cloned();
                prop_assert_eq!(direct, scanned, "community_of k={} e={}", k, e);
            }
        }

        for v in g.vertices() {
            let want = g.neighbors(v).map(|(_, e)| d.bitruss_number(e)).max();
            prop_assert_eq!(h.max_k(v), want, "max_k {}", v);
        }
        for e in g.edges() {
            prop_assert_eq!(h.phi_of(e), d.bitruss_number(e));
        }
    }

    /// A hierarchy loaded from a snapshot answers exactly like the one it
    /// was built from (the full query surface, not just field equality).
    #[test]
    fn loaded_hierarchy_serves_identically(
        nu in 2..10u32,
        nl in 2..10u32,
        m in 1..60usize,
        seed in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        let mut buf = Vec::new();
        bitruss::write_snapshot(&g, &d, Some(&h), &mut buf).unwrap();
        let snap = bitruss::read_snapshot(buf.as_slice()).unwrap();
        let h2 = snap.hierarchy.unwrap();
        for k in d.levels() {
            prop_assert_eq!(h.k_bitruss_edges(k), h2.k_bitruss_edges(k));
            prop_assert_eq!(
                canon(h.communities(&snap.graph, k)),
                canon(h2.communities(&snap.graph, k))
            );
        }
    }

    /// Randomized corruption never panics and never yields a wrong
    /// snapshot: flipping any byte or truncating anywhere must error.
    #[test]
    fn corrupted_snapshots_are_rejected(
        nu in 2..8u32,
        nl in 2..8u32,
        m in 1..40usize,
        seed in any::<u64>(),
        victim in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        let mut buf = Vec::new();
        bitruss::write_snapshot(&g, &d, Some(&h), &mut buf).unwrap();

        let mut flipped = buf.clone();
        let at = (victim % flipped.len() as u64) as usize;
        flipped[at] ^= 1 + (victim >> 32) as u8 % 255;
        prop_assert!(bitruss::read_snapshot(flipped.as_slice()).is_err());

        let cut = (victim % buf.len() as u64) as usize;
        prop_assert!(bitruss::read_snapshot(&buf[..cut]).is_err());
    }
}

/// The doc-level acceptance check: a persisted decomposition of a graph
/// with isolated vertices round-trips to an identical `(graph, φ)` pair
/// through *both* formats.
#[test]
fn both_formats_preserve_isolated_vertices() {
    let g = GraphBuilder::new()
        .with_upper(20)
        .with_lower(17)
        .add_edges([(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (5, 9)])
        .build()
        .unwrap();
    let (d, _) = decompose(&g, Algorithm::BuPlusPlus);

    let mut text = Vec::new();
    bitruss::write_decomposition(&g, &d, &mut text).unwrap();
    let (gt, dt) = bitruss::read_decomposition(text.as_slice()).unwrap();
    assert_eq!((gt.num_upper(), gt.num_lower()), (20, 17));
    assert_eq!(gt.edge_pairs(), g.edge_pairs());
    assert_eq!(dt, d);

    let mut bin = Vec::new();
    bitruss::write_snapshot(&g, &d, None, &mut bin).unwrap();
    let snap = bitruss::read_snapshot(bin.as_slice()).unwrap();
    assert_eq!((snap.graph.num_upper(), snap.graph.num_lower()), (20, 17));
    assert_eq!(snap.graph.edge_pairs(), g.edge_pairs());
    assert_eq!(snap.decomposition, d);
}

/// Cross-format agreement: text and binary readers reconstruct the same
/// pair from the same decomposition.
#[test]
fn text_and_binary_agree() {
    let g = bitruss::workloads::random::uniform(14, 11, 70, 99);
    let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
    let mut text = Vec::new();
    bitruss::write_decomposition(&g, &d, &mut text).unwrap();
    let (gt, dt) = bitruss::read_decomposition(text.as_slice()).unwrap();
    let mut bin = Vec::new();
    bitruss::write_snapshot(&g, &d, None, &mut bin).unwrap();
    let snap = bitruss::read_snapshot(bin.as_slice()).unwrap();
    assert_eq!(gt.edge_pairs(), snap.graph.edge_pairs());
    assert_eq!(dt, snap.decomposition);
}
