//! Integration tests spanning I/O, the dataset registry and the harness:
//! graphs survive round trips, registry datasets decompose consistently,
//! and the experiment harness produces its tables.

use bitruss::graph::io::{read_edge_list, write_edge_list, IndexBase};
use bitruss::graph::GraphStats;
use bitruss::{decompose, Algorithm};

#[test]
fn io_roundtrip_preserves_decomposition() {
    let g = bitruss::workloads::powerlaw::chung_lu(50, 60, 500, 2.0, 2.0, 31);
    let (d_before, _) = decompose(&g, Algorithm::BuPlusPlus);

    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let h = read_edge_list(buf.as_slice(), IndexBase::Zero).unwrap();
    assert_eq!(g.edge_pairs(), h.edge_pairs());

    let (d_after, _) = decompose(&h, Algorithm::BuPlusPlus);
    assert_eq!(d_before, d_after);
}

#[test]
fn malformed_inputs_fail_loudly() {
    assert!(read_edge_list("a b\n".as_bytes(), IndexBase::Zero).is_err());
    assert!(read_edge_list("1\n".as_bytes(), IndexBase::Zero).is_err());
    assert!(read_edge_list("0 0\n".as_bytes(), IndexBase::One).is_err());
    // Valid but empty: fine.
    let g = read_edge_list("% nothing\n".as_bytes(), IndexBase::Zero).unwrap();
    assert_eq!(g.num_edges(), 0);
}

#[test]
fn small_registry_datasets_decompose_consistently() {
    for d in bitruss::workloads::all_datasets()
        .into_iter()
        .filter(|d| d.size == bitruss::workloads::SizeClass::Small)
    {
        let g = d.generate();
        let stats = GraphStats::of(&g);
        assert!(stats.num_edges > 0, "{}", d.name);
        let (d_bu, _) = decompose(&g, Algorithm::Bu);
        let (d_pc, _) = decompose(&g, Algorithm::Pc { tau: 0.1 });
        assert_eq!(d_bu, d_pc, "{}", d.name);
        assert!(d_bu.max_bitruss() > 0, "{} has a dense core", d.name);
    }
}

#[test]
fn sampled_subgraphs_decompose() {
    let d = bitruss::workloads::dataset_by_name("Condmat").unwrap();
    let g = d.generate();
    for pct in [20, 60, 100] {
        let s = bitruss::graph::sample_vertices_percent(&g, pct, 7);
        let (dec, _) = decompose(&s, Algorithm::BuPlusPlus);
        assert_eq!(dec.phi.len(), s.num_edges() as usize);
    }
}

#[test]
fn harness_quick_run_produces_all_tables() {
    let opts = bitruss_bench::Opts {
        quick: true,
        full: false,
    };
    let mut out = Vec::new();
    let mut json = Vec::new();
    for id in ["table2", "fig10", "fig13"] {
        bitruss_bench::experiments::run(id, &mut out, &opts, &mut json).unwrap();
    }
    assert!(json.is_empty(), "these experiments emit no JSON records");
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("Table II analogue"));
    assert!(text.contains("Figure 10 analogue"));
    assert!(text.contains("Figure 13 analogue"));
    assert!(text.contains("Condmat"));
}

#[test]
fn bs_cost_estimate_reflects_structure() {
    let sparse = bitruss::workloads::random::uniform(200, 200, 400, 1);
    let dense = bitruss::workloads::powerlaw::chung_lu(200, 200, 4_000, 1.8, 1.8, 1);
    assert!(
        bitruss_bench::estimate::bs_peel_cost(&dense)
            > bitruss_bench::estimate::bs_peel_cost(&sparse)
    );
}
