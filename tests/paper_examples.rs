//! End-to-end encodings of every worked example in the paper.

use bitruss::index::BeIndex;
use bitruss::{count_per_edge, decompose, Algorithm, GraphBuilder};

/// Figure 1: the author–paper network. Blue edges have φ = 2, yellow
/// φ = 1, gray φ = 0.
#[test]
fn figure1_bitruss_numbers() {
    let g = GraphBuilder::new()
        .add_edges([
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 2),
            (3, 4),
        ])
        .build()
        .unwrap();
    let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
    let phi = |u: u32, v: u32| d.bitruss_number(g.edge_between(g.upper(u), g.lower(v)).unwrap());
    // Blue: (u0,v0),(u0,v1),(u1,v0),(u1,v1),(u2,v0),(u2,v1).
    for (u, v) in [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)] {
        assert_eq!(phi(u, v), 2, "blue edge (u{u},v{v})");
    }
    // Yellow: (u2,v2),(u3,v1),(u3,v2).
    for (u, v) in [(2, 2), (3, 1), (3, 2)] {
        assert_eq!(phi(u, v), 1, "yellow edge (u{u},v{v})");
    }
    // Gray: (u2,v3),(u3,v4).
    for (u, v) in [(2, 3), (3, 4)] {
        assert_eq!(phi(u, v), 0, "gray edge (u{u},v{v})");
    }
}

/// Figure 1's nested research groups: {v0..v2} with all authors forms the
/// loose group, {v0,v1} the most cohesive one.
#[test]
fn figure1_nested_groups() {
    let g = GraphBuilder::new()
        .add_edges([
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 2),
            (3, 4),
        ])
        .build()
        .unwrap();
    let (d, _) = decompose(&g, Algorithm::Bu);
    let loose = d.communities(&g, 1);
    assert_eq!(loose.len(), 1);
    let papers: Vec<u32> = loose[0]
        .lower_members(&g)
        .map(|v| g.layer_index(v))
        .collect();
    assert_eq!(papers, vec![0, 1, 2]);

    let tight = d.communities(&g, 2);
    assert_eq!(tight.len(), 1);
    let papers: Vec<u32> = tight[0]
        .lower_members(&g)
        .map(|v| g.layer_index(v))
        .collect();
    assert_eq!(papers, vec![0, 1]);
}

/// Figure 2(a): the pathological graph where combination-based butterfly
/// enumeration for edge (u1, v1) wastes ~10⁶ checks to find one
/// butterfly. All algorithms agree, and the BE-Index finds exactly 4
/// affected edges (Figure 2(b)).
#[test]
fn figure2_pathological_graph() {
    // u0–{v0,v1}; u1–{v0..v1000}; v1–{u0..u1000} (re-indexed);
    // u2–{v1001..v2000}; v2–{u1001..u2000}.
    let mut b = GraphBuilder::new();
    // u0 = 0, u1 = 1, u2 = 2; uppers 3.. are v1's extra neighbours.
    b.push_edge(0, 0); // (u0, v0)
    b.push_edge(0, 1); // (u0, v1)
    for v in 0..=1000 {
        b.push_edge(1, v); // u1 – v0..v1000 (includes v1)
    }
    for u in 0..=1000 {
        if u != 1 {
            b.push_edge(u, 1); // v1 – u0..u1000
        }
    }
    for v in 1001..=2000 {
        b.push_edge(2, v); // u2
    }
    for u in 1001..=2000 {
        b.push_edge(u, 2); // v2
    }
    let g = b.build().unwrap();
    let counts = count_per_edge(&g);
    let e_u1v1 = g.edge_between(g.upper(1), g.lower(1)).unwrap();
    // Exactly one butterfly contains (u1, v1): [u0, v0, u1, v1].
    assert_eq!(counts.support(e_u1v1), 1);

    // The BE-Index touches exactly the 4 edges of Figure 2(b)'s bloom
    // when (u1, v1) is removed: they are the bloom's other edges.
    let mut idx = BeIndex::build(&g);
    let mut supp = counts.per_edge.clone();
    let mut updated = 0u64;
    idx.remove_edge(e_u1v1, &mut supp, 0, &mut updated);
    assert!(updated <= 3, "only the butterfly's other edges update");

    let (d_bu, _) = decompose(&g, Algorithm::Bu);
    let (d_pc, _) = decompose(&g, Algorithm::pc_default());
    assert_eq!(d_bu, d_pc);
}

/// Figure 3(a): a 1001-bloom contains 1001·1000/2 butterflies and every
/// edge has φ = 1000 (a (2,k)-biclique is a (k−1)-bitruss).
#[test]
fn figure3_bloom() {
    let mut b = GraphBuilder::new();
    for v in 0..1001u32 {
        b.push_edge(0, v);
        b.push_edge(1, v);
    }
    let g = b.build().unwrap();
    let counts = count_per_edge(&g);
    assert_eq!(counts.total, 1001 * 1000 / 2);
    let idx = BeIndex::build(&g);
    assert_eq!(idx.num_blooms(), 1);
    assert_eq!(idx.total_butterflies(), counts.total);
    let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
    assert!(d.phi.iter().all(|&p| p == 1000));
}

/// Figure 4: H₁ (the 1-bitruss) drops the two pendant edges; H₂ is the
/// {u0,u1,u2} × {v0,v1} block.
#[test]
fn figure4_hierarchy() {
    let g = GraphBuilder::new()
        .add_edges([
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 2),
            (3, 4),
        ])
        .build()
        .unwrap();
    let (d, _) = decompose(&g, Algorithm::pc_default());
    let h1 = d.k_bitruss_subgraph(&g, 1);
    assert_eq!(h1.graph.num_edges(), 9);
    let h2 = d.k_bitruss_subgraph(&g, 2);
    assert_eq!(h2.graph.num_edges(), 6);
    // H₂'s vertices are {u0,u1,u2} and {v0,v1}.
    let stats = bitruss::graph::GraphStats::of(&h2.graph);
    assert_eq!(stats.num_edges, 6);
    let (d2, _) = decompose(&h2.graph, Algorithm::Bu);
    assert!(
        d2.phi.iter().all(|&p| p == 2),
        "H₂ is exactly the 2-bitruss"
    );
}

/// The Introduction's scale anecdote, shrunk: the decomposition of a
/// graph whose butterflies are dominated by a few fat blooms still
/// finishes quickly with every algorithm and they agree.
#[test]
fn fat_bloom_stress() {
    let mut b = GraphBuilder::new();
    // 3 fat blooms sharing one anchor vertex + noise.
    for v in 0..300u32 {
        b.push_edge(0, v);
        b.push_edge(1, v);
    }
    for v in 300..500 {
        b.push_edge(0, v);
        b.push_edge(2, v);
    }
    for v in 500..650 {
        b.push_edge(1, v);
        b.push_edge(2, v);
    }
    for i in 0..200u32 {
        b.push_edge(3 + i % 7, (i * 13) % 650);
    }
    let g = b.build().unwrap();
    let (d_bs, _) = decompose(&g, Algorithm::BsIntersection);
    let (d_pp, _) = decompose(&g, Algorithm::BuPlusPlus);
    let (d_pc, _) = decompose(&g, Algorithm::Pc { tau: 0.05 });
    assert_eq!(d_bs, d_pp);
    assert_eq!(d_bs, d_pc);
    assert!(d_bs.max_bitruss() >= 299);
}
