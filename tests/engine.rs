//! Integration tests for the [`BitrussEngine`] session API: randomized
//! equivalence against the legacy free functions for every algorithm,
//! snapshot round-trips through `Engine::from_snapshot`, and cooperative
//! cancellation surfacing `Error::Cancelled` mid-peel without panicking.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bitruss::graph::Error;
use bitruss::{
    bit_bs, bit_bu, bit_bu_hybrid, bit_bu_plus, bit_bu_pp, bit_bu_pp_par, bit_pc, Algorithm,
    BitrussEngine, EngineObserver, HierarchyMode, PeelStrategy, Phase, Threads,
};
use proptest::prelude::*;

/// A legacy free-function entry point, boxed for the equivalence lineup.
type LegacyFn = Box<dyn Fn(&bitruss::BipartiteGraph) -> (bitruss::Decomposition, bitruss::Metrics)>;

/// Every algorithm the engine dispatches, with its legacy free-function
/// counterpart.
fn lineup() -> Vec<(Algorithm, LegacyFn)> {
    vec![
        (
            Algorithm::BsIntersection,
            Box::new(|g| bit_bs(g, PeelStrategy::Intersection)),
        ),
        (
            Algorithm::BsPairEnumeration,
            Box::new(|g| bit_bs(g, PeelStrategy::PairEnumeration)),
        ),
        (Algorithm::Bu, Box::new(bit_bu)),
        (Algorithm::BuPlus, Box::new(bit_bu_plus)),
        (Algorithm::BuPlusPlus, Box::new(bit_bu_pp)),
        (
            Algorithm::BuPlusPlusPar {
                threads: Threads(3),
            },
            Box::new(|g| bit_bu_pp_par(g, Threads(3))),
        ),
        (Algorithm::BuHybrid, Box::new(bit_bu_hybrid)),
        (Algorithm::pc_default(), Box::new(|g| bit_pc(g, 0.02))),
        (Algorithm::Pc { tau: 1.0 }, Box::new(|g| bit_pc(g, 1.0))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Acceptance gate: the engine's output is bit-identical to the
    /// legacy free functions for every algorithm, including the update
    /// counts the paper's evaluation relies on.
    #[test]
    fn engine_matches_legacy_free_functions(
        nu in 3..14u32,
        nl in 3..14u32,
        m in 0..70usize,
        seed in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        for (alg, legacy) in lineup() {
            let (d, metrics) = legacy(&g);
            let session = BitrussEngine::builder()
                .algorithm(alg)
                .build_borrowed(&g)
                .expect("no observer: run cannot fail");
            prop_assert_eq!(session.phi(), &d.phi[..], "{}", alg);
            prop_assert_eq!(
                session.metrics().expect("fresh session").support_updates,
                metrics.support_updates,
                "{}", alg
            );
        }
    }

    /// The engine's hierarchy-backed queries agree with Decomposition
    /// rescans on random graphs, for every level present.
    #[test]
    fn engine_queries_match_decomposition_rescans(
        nu in 3..12u32,
        nl in 3..12u32,
        m in 0..60usize,
        seed in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let session = BitrussEngine::builder().build_borrowed(&g).unwrap();
        let d = session.decomposition().clone();
        for k in 0..=session.max_bitruss() {
            prop_assert_eq!(
                session.k_bitruss_edges(k).unwrap(),
                d.k_bitruss_edges(k)
            );
            prop_assert_eq!(
                session.k_bitruss_count(k).unwrap(),
                d.k_bitruss_edges(k).len()
            );
            prop_assert_eq!(
                session.communities(k).unwrap().len(),
                d.communities(&g, k).len()
            );
        }
        prop_assert_eq!(session.level_sizes(), d.level_sizes());
    }

    /// Snapshot round-trip through the engine: save → from_snapshot
    /// preserves φ, the graph shape, and every hierarchy answer.
    #[test]
    fn snapshot_round_trip_via_from_snapshot(
        nu in 3..12u32,
        nl in 3..12u32,
        m in 0..60usize,
        seed in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let session = BitrussEngine::builder()
            .hierarchy(HierarchyMode::Eager)
            .build_borrowed(&g)
            .unwrap();
        let mut bytes = Vec::new();
        session.save_snapshot_to(&mut bytes).unwrap();
        let resumed = BitrussEngine::from_snapshot_reader(&bytes[..]).unwrap();
        prop_assert_eq!(resumed.phi(), session.phi());
        prop_assert_eq!(resumed.graph().num_edges(), g.num_edges());
        prop_assert_eq!(resumed.graph().num_upper(), g.num_upper());
        prop_assert_eq!(resumed.graph().num_lower(), g.num_lower());
        prop_assert!(resumed.metrics().is_none());
        for k in 0..=session.max_bitruss() {
            prop_assert_eq!(
                resumed.k_bitruss_edges(k).unwrap(),
                session.k_bitruss_edges(k).unwrap()
            );
        }
    }
}

#[test]
fn snapshot_round_trip_via_file() {
    let g = bitruss::workloads::random::uniform(14, 14, 70, 77);
    let session = BitrussEngine::builder().build_borrowed(&g).unwrap();
    let path =
        std::env::temp_dir().join(format!("bitruss-engine-test-{}.snap", std::process::id()));
    session.save_snapshot(&path).unwrap();
    let resumed = BitrussEngine::from_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(resumed.phi(), session.phi());
    assert_eq!(
        resumed.k_bitruss_count(1).unwrap(),
        session.k_bitruss_count(1).unwrap()
    );
}

/// Observer that lets counting and index construction finish, then
/// requests cancellation as soon as the peeling phase has started — so
/// `Error::Cancelled` must surface *mid-peel*.
#[derive(Default)]
struct CancelMidPeel {
    peeling_started: AtomicBool,
    polls_after_peeling: AtomicU64,
}

impl EngineObserver for CancelMidPeel {
    fn on_phase_start(&self, phase: Phase, _total: u64) {
        if phase == Phase::Peeling {
            self.peeling_started.store(true, Ordering::Relaxed);
        }
    }

    fn is_cancelled(&self) -> bool {
        if self.peeling_started.load(Ordering::Relaxed) {
            self.polls_after_peeling.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

#[test]
fn cancellation_surfaces_mid_peel_without_panicking() {
    // Big enough that even the per-pop engines (BS, BU) reach their
    // CHECK_INTERVAL poll inside the peel loop.
    let g = bitruss::workloads::powerlaw::chung_lu(220, 220, 3_000, 1.9, 1.9, 4);
    for alg in [
        Algorithm::BsIntersection,
        Algorithm::Bu,
        Algorithm::BuPlus,
        Algorithm::BuPlusPlus,
        Algorithm::BuPlusPlusPar {
            threads: Threads(2),
        },
        Algorithm::BuHybrid,
        Algorithm::pc_default(),
    ] {
        let observer = Arc::new(CancelMidPeel::default());
        let err = BitrussEngine::builder()
            .algorithm(alg)
            .progress(observer.clone())
            .build_borrowed(&g)
            .expect_err("cancellation must surface as an error");
        assert!(matches!(err, Error::Cancelled), "{alg}: {err}");
        assert!(
            observer.peeling_started.load(Ordering::Relaxed),
            "{alg}: peeling never started"
        );
        assert!(
            observer.polls_after_peeling.load(Ordering::Relaxed) > 0,
            "{alg}: never polled after peeling started"
        );
    }
}

#[test]
fn cancellation_before_any_work() {
    struct Always;
    impl EngineObserver for Always {
        fn is_cancelled(&self) -> bool {
            true
        }
    }
    let g = bitruss::workloads::random::uniform(10, 10, 40, 1);
    let err = BitrussEngine::builder()
        .progress(Arc::new(Always))
        .build_borrowed(&g)
        .expect_err("pre-cancelled run must fail");
    assert!(matches!(err, Error::Cancelled));
}

#[test]
fn cancellation_covers_the_lazy_hierarchy_build() {
    // Cancel only *after* the decomposition finished: the run succeeds,
    // the first hierarchy query fails cleanly instead of panicking.
    struct CancelLater(AtomicBool);
    impl EngineObserver for CancelLater {
        fn is_cancelled(&self) -> bool {
            self.0.load(Ordering::Relaxed)
        }
    }
    let observer = Arc::new(CancelLater(AtomicBool::new(false)));
    let g = bitruss::workloads::random::uniform(10, 10, 40, 2);
    let session = BitrussEngine::builder()
        .progress(observer.clone())
        .build_borrowed(&g)
        .expect("not cancelled yet");
    observer.0.store(true, Ordering::Relaxed);
    assert!(matches!(session.k_bitruss_count(1), Err(Error::Cancelled)));
    observer.0.store(false, Ordering::Relaxed);
    assert!(session.k_bitruss_count(1).is_ok());
}

#[test]
fn observer_sees_ordered_phases() {
    // The sequential BU++ run reports Counting → IndexBuild → Peeling.
    #[derive(Default)]
    struct Recorder(std::sync::Mutex<Vec<&'static str>>, AtomicU64);
    impl EngineObserver for Recorder {
        fn on_phase_start(&self, phase: Phase, _total: u64) {
            self.0.lock().unwrap().push(phase.name());
        }
        fn on_phase_progress(&self, _phase: Phase, _done: u64, _total: u64) {
            self.1.fetch_add(1, Ordering::Relaxed);
        }
    }
    let observer = Arc::new(Recorder::default());
    let g = bitruss::workloads::powerlaw::chung_lu(150, 150, 2_500, 1.9, 1.9, 11);
    let session = BitrussEngine::builder()
        .algorithm(Algorithm::BuPlusPlus)
        .hierarchy(HierarchyMode::Eager)
        .progress(observer.clone())
        .build_borrowed(&g)
        .unwrap();
    assert!(session.max_bitruss() > 0);
    let phases = observer.0.lock().unwrap().clone();
    assert_eq!(
        phases,
        vec!["counting", "index-build", "peeling", "hierarchy-build"]
    );
    assert!(
        observer.1.load(Ordering::Relaxed) > 0,
        "expected progress ticks on a 2.5k-edge graph"
    );
}
