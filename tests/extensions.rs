//! Integration tests for the extension surface: tip decomposition,
//! (α,β)-core pruning, the BU# hybrid, direct k-bitruss queries and the
//! per-vertex counter — exercised together through the facade.

use bitruss::graph::{alpha_beta_core, butterfly_core_mask};
use bitruss::{decompose, k_bitruss, tip_decomposition, Algorithm, BitrussEngine, TipLayer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Butterflies never leave the (2,2)-core: supports inside the core
    /// equal supports in the full graph, and everything outside has 0.
    #[test]
    fn all_butterflies_live_in_the_22core(
        nu in 3..16u32,
        nl in 3..16u32,
        m in 0..90usize,
        seed in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let counts = bitruss::count_per_edge(&g);
        let mask = butterfly_core_mask(&g);
        let core = alpha_beta_core(&g, 2, 2);
        let core_counts = bitruss::count_per_edge(&core.graph);
        prop_assert_eq!(core_counts.total, counts.total);
        for (i, &old) in core.new_to_old.iter().enumerate() {
            prop_assert_eq!(core_counts.per_edge[i], counts.per_edge[old.index()]);
        }
        for e in g.edges() {
            if !mask[e.index()] {
                prop_assert_eq!(counts.support(e), 0);
            }
        }
    }

    /// Core pruning never changes φ.
    #[test]
    fn pruned_decomposition_matches(
        nu in 3..14u32,
        nl in 3..14u32,
        m in 0..70usize,
        seed in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let (plain, _) = decompose(&g, Algorithm::BuPlusPlus);
        let pruned = BitrussEngine::builder()
            .algorithm(Algorithm::BuHybrid)
            .pruned(true)
            .build_borrowed(&g)
            .unwrap();
        prop_assert_eq!(&plain.phi, &pruned.phi().to_vec());
    }

    /// The direct k-bitruss query agrees with the full decomposition at
    /// every level present in the graph.
    #[test]
    fn direct_queries_match_full_decomposition(
        nu in 3..12u32,
        nl in 3..12u32,
        m in 5..60usize,
        seed in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let (d, _) = decompose(&g, Algorithm::Bu);
        for k in d.levels() {
            let direct = k_bitruss(&g, k);
            prop_assert_eq!(direct.new_to_old, d.k_bitruss_edges(k), "k = {}", k);
        }
    }

    /// Tip numbers are monotone under the k-tip definition: the set
    /// {x : θ(x) ≥ k} induces a subgraph where every peeled-layer vertex
    /// is in ≥ k butterflies.
    #[test]
    fn tip_soundness(
        nu in 3..12u32,
        nl in 3..12u32,
        m in 5..55usize,
        seed in any::<u64>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let theta = tip_decomposition(&g, TipLayer::Upper);
        for &k in theta.iter().filter(|&&t| t > 0) {
            // Induce on upper vertices with θ ≥ k (lower layer intact).
            let keep: Vec<bool> = theta.iter().map(|&t| t >= k).collect();
            let sub = bitruss::graph::edge_subgraph(&g, |e| {
                let (u, _) = g.edge(e);
                keep[g.layer_index(u) as usize]
            });
            let counts = bitruss::counting::count_per_vertex(&sub.graph);
            for i in 0..g.num_upper() {
                if keep[i as usize] {
                    prop_assert!(
                        counts[g.upper(i).index()] >= k,
                        "vertex u{} has {} < {}",
                        i,
                        counts[g.upper(i).index()],
                        k
                    );
                }
            }
        }
    }
}

#[test]
fn hybrid_is_in_the_dispatcher_lineup() {
    let g = bitruss::workloads::dataset_by_name("Condmat")
        .unwrap()
        .generate();
    let (d_pp, _) = decompose(&g, Algorithm::BuPlusPlus);
    let (d_h, m_h) = decompose(&g, Algorithm::BuHybrid);
    assert_eq!(d_pp, d_h);
    assert_eq!(Algorithm::BuHybrid.name(), "BU#");
    assert!(m_h.support_updates > 0);
}

#[test]
fn tip_and_bitruss_coexist_on_registry_data() {
    let g = bitruss::workloads::dataset_by_name("Marvel")
        .unwrap()
        .generate();
    let theta_u = tip_decomposition(&g, TipLayer::Upper);
    let theta_l = tip_decomposition(&g, TipLayer::Lower);
    let (d, _) = decompose(&g, Algorithm::Pc { tau: 0.1 });
    // A vertex's tip number at least matches the best edge at it:
    // θ(x) counts butterflies at x, which bounds any incident φ? No —
    // but both hierarchies must be non-trivial on a core-rich graph.
    assert!(theta_u.iter().copied().max().unwrap() > 0);
    assert!(theta_l.iter().copied().max().unwrap() > 0);
    assert!(d.max_bitruss() > 0);
}
