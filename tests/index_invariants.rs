//! Property tests of the BE-Index invariants (§IV of the paper) on random
//! and skewed graphs.

use bitruss::counting::{count_per_edge, enumerate_butterflies};
use bitruss::index::{BeIndex, BloomId};
use bitruss::{BipartiteGraph, EdgeId, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (2..18u32, 2..18u32, 0..120usize, any::<u64>())
        .prop_map(|(nu, nl, m, seed)| bitruss::workloads::random::uniform(nu, nl, m, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 3: every butterfly lies in exactly one maximal
    /// priority-obeyed bloom — so Σ_B C(k_B,2) equals the enumerated
    /// butterfly count, and each enumerated butterfly maps into a unique
    /// bloom by its dominant pair.
    #[test]
    fn butterflies_partition_into_blooms(g in arb_graph()) {
        let idx = BeIndex::build(&g);
        prop_assert!(idx.validate(&g).is_ok());
        let butterflies = enumerate_butterflies(&g);
        prop_assert_eq!(idx.total_butterflies(), butterflies.len() as u64);

        // Map each butterfly to its home bloom: the anchor pair is the
        // same-layer pair containing the max-priority vertex.
        let anchors: std::collections::HashMap<(u32, u32), u32> = (0..idx.num_blooms())
            .map(|b| (idx.bloom_anchor(BloomId(b)), b))
            .collect();
        for bf in &butterflies {
            let vertices = [bf.u1, bf.u2, bf.v1, bf.v2];
            let top = *vertices
                .iter()
                .max_by_key(|&&v| g.priority(v))
                .expect("4 vertices");
            let (hi, lo) = if top == bf.u1 || top == bf.u2 {
                let (a, b) = (bf.u1, bf.u2);
                if g.priority(a) > g.priority(b) { (a, b) } else { (b, a) }
            } else {
                let (a, b) = (bf.v1, bf.v2);
                if g.priority(a) > g.priority(b) { (a, b) } else { (b, a) }
            };
            prop_assert!(
                anchors.contains_key(&(hi.0, lo.0)),
                "butterfly {bf:?} has no home bloom ({hi}, {lo})"
            );
        }
    }

    /// Lemma 2: `sup(e) = Σ_{B∋e} (k_B − 1)` — derived supports equal the
    /// counting pass.
    #[test]
    fn derived_supports_match_counting(g in arb_graph()) {
        let idx = BeIndex::build(&g);
        prop_assert_eq!(idx.derive_supports(), count_per_edge(&g).per_edge);
    }

    /// Lemma 6: the stored wedge count respects the
    /// `Σ min{d(u), d(v)}` space bound.
    #[test]
    fn index_size_bound(g in arb_graph()) {
        let idx = BeIndex::build(&g);
        prop_assert!(u64::from(idx.num_wedges()) <= g.sum_min_degree());
    }

    /// Lemma 4: each edge has exactly one twin per bloom, twin pairing is
    /// an involution, and the twin shares the non-dominant vertex.
    #[test]
    fn twins_are_involutive(g in arb_graph()) {
        let idx = BeIndex::build(&g);
        for e in g.edges() {
            for &w in idx.links(e) {
                let w = bitruss::index::WedgeId(w);
                let twin = idx.wedge_twin(w, e);
                prop_assert_ne!(twin, e);
                prop_assert_eq!(idx.wedge_twin(w, twin), e);
                // Twin shares the middle (non-dominant) vertex.
                let (u1, v1) = g.edge(e);
                let (u2, v2) = g.edge(twin);
                prop_assert!(u1 == u2 || v1 == v2);
            }
        }
    }

    /// Removing every edge in a random order keeps derived supports equal
    /// to a fresh recount of the remaining graph (Theorem 1, iterated).
    #[test]
    fn removal_sequence_stays_consistent(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let m = g.num_edges();
        if m == 0 {
            return Ok(());
        }
        let mut order: Vec<u32> = (0..m).collect();
        // Fisher-Yates with a simple LCG for determinism.
        let mut s = seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }

        let mut idx = BeIndex::build(&g);
        let mut supp = idx.derive_supports();
        let mut removed = vec![false; m as usize];
        // Check at three points along the teardown to keep it fast.
        let checkpoints = [m as usize / 3, (2 * m as usize) / 3, m as usize - 1];
        for (step, &victim) in order.iter().enumerate() {
            idx.remove_edge(EdgeId(victim), &mut supp, 0, &mut ());
            removed[victim as usize] = true;
            if checkpoints.contains(&step) {
                let sub = bitruss::graph::edge_subgraph(&g, |e| !removed[e.index()]);
                let recount = count_per_edge(&sub.graph);
                for (i, &old) in sub.new_to_old.iter().enumerate() {
                    prop_assert_eq!(supp[old.index()], recount.per_edge[i]);
                }
            }
        }
    }

    /// Compressed construction (Algorithm 6): for any assigned mask, the
    /// derived supports of unassigned edges equal their true supports in
    /// the full graph.
    #[test]
    fn compressed_supports_are_exact(g in arb_graph(), mask_seed in any::<u64>()) {
        let m = g.num_edges() as usize;
        let mut s = mask_seed;
        let assigned: Vec<bool> = (0..m)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 40) & 1 == 1
            })
            .collect();
        let idx = BeIndex::build_compressed(&g, &assigned);
        prop_assert!(idx.validate(&g).is_ok());
        let derived = idx.derive_supports();
        let truth = count_per_edge(&g).per_edge;
        for e in 0..m {
            if assigned[e] {
                prop_assert_eq!(derived[e], 0, "assigned edges carry no links");
            } else {
                prop_assert_eq!(derived[e], truth[e], "edge {}", e);
            }
        }
    }
}

/// The priority order statement of Definition 8 on a concrete graph:
/// every bloom's anchor has higher priority than all its middle vertices.
#[test]
fn anchor_dominates_bloom() {
    let g = bitruss::workloads::powerlaw::chung_lu(40, 40, 350, 1.9, 1.9, 17);
    let idx = BeIndex::build(&g);
    for b in 0..idx.num_blooms() {
        let b = BloomId(b);
        let (hi, _) = idx.bloom_anchor(b);
        for w in idx.bloom_wedges(b) {
            let (e1, e2) = idx.wedge_members(w);
            for e in [e1, e2] {
                let (u, v) = g.edge(e);
                for vertex in [u, v] {
                    if vertex.0 != hi {
                        assert!(
                            g.priority(vertex) < g.priority(VertexId(hi)),
                            "bloom member outranks anchor"
                        );
                    }
                }
            }
        }
    }
}
