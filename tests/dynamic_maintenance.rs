//! Property tests for incremental bitruss maintenance: after random
//! update batches, the maintained decomposition must be **bit-identical**
//! to a from-scratch decomposition of the updated graph — φ values,
//! hierarchy answers, and snapshot round-trips included.

use bitruss::dynamic::{apply, DynamicEngineExt, UpdateBatch};
use bitruss::graph::GraphBuilder;
use bitruss::{Algorithm, BitrussEngine};
use proptest::prelude::*;

/// Tiny deterministic generator for batch shapes (the vendored proptest
/// shim has no collection strategies; seeds drive these instead).
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Derives a deletion mask and raw insert pairs from one seed.
fn batch_shape(
    g: &bitruss::BipartiteGraph,
    shape_seed: u64,
    dels: usize,
    inserts: usize,
) -> (Vec<bool>, Vec<(u32, u32)>) {
    let mut rng = Rng::new(shape_seed);
    let m = g.num_edges() as usize;
    let mut del_sel = vec![false; m];
    if m > 0 {
        for _ in 0..dels {
            del_sel[(rng.next() as usize) % m] = true;
        }
    }
    let ins_raw: Vec<(u32, u32)> = (0..inserts)
        .map(|_| {
            (
                (rng.next() % (g.num_upper() as u64 + 3)) as u32,
                (rng.next() % (g.num_lower() as u64 + 3)) as u32,
            )
        })
        .collect();
    (del_sel, ins_raw)
}

/// Builds a valid random batch against `g`: a sample of existing edges
/// to delete, fresh pairs to insert, plus (to exercise the in-batch
/// compaction) re-insertions of deleted pairs and deletions of
/// just-inserted pairs.
fn random_batch(
    g: &bitruss::BipartiteGraph,
    del_sel: &[bool],
    ins_raw: &[(u32, u32)],
    churn: bool,
) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    let mut present: std::collections::HashSet<(u32, u32)> = g.edge_pairs().into_iter().collect();
    let mut deleted_pairs = Vec::new();
    for (i, pair) in g.edge_pairs().into_iter().enumerate() {
        if del_sel.get(i).copied().unwrap_or(false) {
            batch.delete(pair.0, pair.1);
            present.remove(&pair);
            deleted_pairs.push(pair);
        }
    }
    for &(u, v) in ins_raw {
        if present.insert((u, v)) {
            batch.insert(u, v);
        }
    }
    if churn {
        // Re-insert one deleted pair and delete it again: net no-op
        // that the resolver must cancel out. (Skip pairs the insert
        // list above already brought back.)
        if let Some(&(u, v)) = deleted_pairs.iter().find(|p| !present.contains(p)) {
            batch.insert(u, v).delete(u, v);
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental φ equals a from-scratch decomposition after a mixed
    /// random batch, and the reported stats are consistent.
    #[test]
    fn incremental_phi_matches_recompute(
        nu in 2..12u32,
        nl in 2..12u32,
        m in 0..70usize,
        seed in any::<u64>(),
        shape in any::<u64>(),
        dels in 0..24usize,
        inserts in 0..12usize,
        churn in any::<bool>(),
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let session = BitrussEngine::builder()
            .algorithm(Algorithm::BuPlusPlus)
            .build_borrowed(&g)
            .unwrap();
        let (del_sel, ins_raw) = batch_shape(&g, shape, dels, inserts);
        let batch = random_batch(&g, &del_sel, &ins_raw, churn);
        let applied = apply(&g, session.decomposition(), &batch).unwrap();

        let fresh = BitrussEngine::builder()
            .algorithm(Algorithm::BuPlusPlus)
            .build_borrowed(&applied.graph)
            .unwrap();
        prop_assert_eq!(&applied.decomposition.phi, &fresh.phi().to_vec());

        let s = &applied.stats;
        prop_assert_eq!(s.edges_after, applied.graph.num_edges() as u64);
        prop_assert_eq!(
            s.edges_after,
            s.edges_before + s.inserted_edges - s.deleted_edges
        );
        prop_assert!(s.reuse_ratio() >= 0.0 && s.reuse_ratio() <= 1.0);
        // Every real change must have been inside the re-peeled set
        // (unless the engine fell back, where affected covers all).
        prop_assert!(s.affected_edges + s.inserted_edges >= s.phi_changed || s.fell_back);
    }

    /// Deletion-only batches: the settle phase alone is exact.
    #[test]
    fn deletion_only_batches_are_exact(
        nu in 2..10u32,
        nl in 2..10u32,
        m in 1..60usize,
        seed in any::<u64>(),
        shape in any::<u64>(),
        dels in 1..24usize,
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let session = BitrussEngine::builder().build_borrowed(&g).unwrap();
        let (del_sel, _) = batch_shape(&g, shape, dels, 0);
        let batch = random_batch(&g, &del_sel, &[], false);
        let applied = apply(&g, session.decomposition(), &batch).unwrap();
        let fresh = BitrussEngine::builder().build_borrowed(&applied.graph).unwrap();
        prop_assert_eq!(&applied.decomposition.phi, &fresh.phi().to_vec());
        prop_assert_eq!(applied.stats.inserted_edges, 0);
    }

    /// Insertion-only batches: region + frozen re-peel alone is exact,
    /// including inserts that grow the vertex layers.
    #[test]
    fn insertion_only_batches_are_exact(
        nu in 2..10u32,
        nl in 2..10u32,
        m in 0..60usize,
        seed in any::<u64>(),
        shape in any::<u64>(),
        inserts in 1..14usize,
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let session = BitrussEngine::builder().build_borrowed(&g).unwrap();
        let (_, ins_raw) = batch_shape(&g, shape, 0, inserts);
        let batch = random_batch(&g, &[], &ins_raw, false);
        let applied = apply(&g, session.decomposition(), &batch).unwrap();
        let fresh = BitrussEngine::builder().build_borrowed(&applied.graph).unwrap();
        prop_assert_eq!(&applied.decomposition.phi, &fresh.phi().to_vec());
        prop_assert_eq!(applied.stats.deleted_edges, 0);
    }

    /// After an engine-level apply, hierarchy queries answer exactly as
    /// a freshly decomposed engine on the updated graph, and a snapshot
    /// round-trip of the mutated session preserves everything.
    #[test]
    fn hierarchy_and_snapshots_survive_mutation(
        nu in 2..10u32,
        nl in 2..10u32,
        m in 0..60usize,
        seed in any::<u64>(),
        shape in any::<u64>(),
        dels in 0..16usize,
        inserts in 0..8usize,
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let mut session = BitrussEngine::builder()
            .build(g.clone())
            .unwrap();
        // Force the pre-mutation hierarchy so the apply must invalidate
        // a *cached* index, not a never-built one.
        let _ = session.hierarchy().unwrap();
        let (del_sel, ins_raw) = batch_shape(&g, shape, dels, inserts);
        let batch = random_batch(&g, &del_sel, &ins_raw, false);
        session.apply(&batch).unwrap();

        let fresh = BitrussEngine::builder()
            .build(session.graph().clone())
            .unwrap();
        prop_assert_eq!(session.phi(), fresh.phi());
        prop_assert_eq!(session.level_sizes(), fresh.level_sizes());
        let mut ks: Vec<u64> = fresh.level_sizes().into_keys().collect();
        ks.push(fresh.max_bitruss() + 1);
        for k in ks {
            prop_assert_eq!(
                session.k_bitruss_edges(k).unwrap(),
                fresh.k_bitruss_edges(k).unwrap(),
                "k = {}",
                k
            );
            prop_assert_eq!(
                session.communities(k).unwrap().len(),
                fresh.communities(k).unwrap().len(),
                "k = {}",
                k
            );
        }

        // Snapshot round-trip of the mutated session.
        let mut bytes = Vec::new();
        session.save_snapshot_to(&mut bytes).unwrap();
        let resumed = BitrussEngine::from_snapshot_reader(&bytes[..]).unwrap();
        prop_assert_eq!(resumed.phi(), session.phi());
        prop_assert_eq!(
            resumed.graph().edge_pairs(),
            session.graph().edge_pairs()
        );
        for k in resumed.hierarchy().unwrap().levels().to_vec() {
            prop_assert_eq!(
                resumed.k_bitruss_count(k).unwrap(),
                session.k_bitruss_count(k).unwrap()
            );
        }
    }

    /// Sequences of batches compose: maintaining through two generations
    /// equals decomposing the final graph, and the stream generator's
    /// interleaved schedules replay cleanly through the engine.
    #[test]
    fn batch_sequences_and_streams_compose(
        nu in 3..10u32,
        nl in 3..10u32,
        m in 5..60usize,
        seed in any::<u64>(),
        ops in 1..24usize,
    ) {
        let g = bitruss::workloads::random::uniform(nu, nl, m, seed);
        let mut session = BitrussEngine::builder().build(g.clone()).unwrap();
        let stream = bitruss::workloads::edge_stream(&g, ops, seed ^ 0xABCD);
        // Split the stream into two consecutive batches applied in order.
        let half = stream.len() / 2;
        for chunk in [&stream[..half], &stream[half..]] {
            let mut batch = UpdateBatch::new();
            for op in chunk {
                if op.insert {
                    batch.insert(op.upper, op.lower);
                } else {
                    batch.delete(op.upper, op.lower);
                }
            }
            session.apply(&batch).unwrap();
        }
        let fresh = BitrussEngine::builder()
            .build(session.graph().clone())
            .unwrap();
        prop_assert_eq!(session.phi(), fresh.phi());
        prop_assert_eq!(session.max_bitruss(), fresh.max_bitruss());
    }
}

/// The paper's Figure 1 graph mutated edge by edge in both directions —
/// a deterministic, human-checkable anchor next to the random suites.
#[test]
fn figure1_single_edge_updates_are_exact() {
    let g = GraphBuilder::new()
        .add_edges([
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 2),
            (3, 4),
        ])
        .build()
        .unwrap();
    let session = BitrussEngine::builder().build_borrowed(&g).unwrap();
    // Delete each edge in turn.
    for e in g.edges() {
        let (u, v) = g.edge(e);
        let mut batch = UpdateBatch::new();
        batch.delete(g.layer_index(u), g.layer_index(v));
        let applied = apply(&g, session.decomposition(), &batch).unwrap();
        let fresh = BitrussEngine::builder()
            .build_borrowed(&applied.graph)
            .unwrap();
        assert_eq!(applied.decomposition.phi, fresh.phi(), "deleting {e}");
    }
    // Insert each absent pair in turn.
    for u in 0..g.num_upper() {
        for v in 0..g.num_lower() {
            if g.has_edge(g.upper(u), g.lower(v)) {
                continue;
            }
            let mut batch = UpdateBatch::new();
            batch.insert(u, v);
            let applied = apply(&g, session.decomposition(), &batch).unwrap();
            let fresh = BitrussEngine::builder()
                .build_borrowed(&applied.graph)
                .unwrap();
            assert_eq!(
                applied.decomposition.phi,
                fresh.phi(),
                "inserting ({u},{v})"
            );
        }
    }
}
