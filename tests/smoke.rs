//! Fast cross-algorithm smoke test: the oracle CI leans on.
//!
//! Builds a handful of tiny deterministic graphs with `datagen` and asserts
//! that all five algorithm families of the paper — BiT-BS, BiT-BU, BiT-BU+,
//! BiT-BU++ and BiT-PC — plus the parallel engines BiT-BU++/P and
//! BiT-BU++2P assign the *identical* bitruss number to every edge. Unlike `cross_algorithm.rs`
//! (hundreds of property cases) this runs in well under a second, so a
//! broken algorithm fails CI almost instantly.

use bitruss::{decompose, Algorithm, BipartiteGraph, Threads};

const ORACLE_ALGORITHMS: &[Algorithm] = &[
    Algorithm::BsIntersection,
    Algorithm::Bu,
    Algorithm::BuPlus,
    Algorithm::BuPlusPlus,
    Algorithm::BuPlusPlusPar {
        threads: Threads(3),
    },
    Algorithm::BuPlusPlusTwoPhase {
        threads: Threads(3),
    },
    Algorithm::Pc { tau: 0.25 },
];

fn assert_all_agree(g: &BipartiteGraph, label: &str) {
    // The first entry is the BiT-BS baseline; comparing it against itself
    // would just double the cost of the slowest algorithm.
    let (baseline, _) = decompose(g, ORACLE_ALGORITHMS[0]);
    for &alg in &ORACLE_ALGORITHMS[1..] {
        let (d, _) = decompose(g, alg);
        for e in g.edges() {
            assert_eq!(
                d.bitruss_number(e),
                baseline.bitruss_number(e),
                "{} disagrees with BiT-BS on edge {:?} of {label}",
                alg.name(),
                e,
            );
        }
    }
}

#[test]
fn five_algorithms_agree_on_random_graphs() {
    for seed in 0..4 {
        let g = bitruss::workloads::random::uniform(12, 12, 55, seed);
        assert_all_agree(&g, &format!("uniform(12, 12, 55, {seed})"));
    }
}

#[test]
fn five_algorithms_agree_on_skewed_graphs() {
    for seed in 0..2 {
        let g = bitruss::workloads::powerlaw::chung_lu(20, 20, 120, 1.9, 1.9, seed);
        assert_all_agree(&g, &format!("chung_lu(20, 20, 120, 1.9, 1.9, {seed})"));
    }
}

#[test]
fn five_algorithms_agree_on_figure_1() {
    let g = bitruss::GraphBuilder::new()
        .add_edges([
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 2),
            (3, 4),
        ])
        .build()
        .unwrap();
    assert_all_agree(&g, "Figure 1 author–paper graph");
    let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
    assert_eq!(d.max_bitruss(), 2);
}
