//! Server tests: generation-snapshot isolation under concurrent
//! readers, exact acked-prefix recovery after a mid-stream kill
//! (the PR 7 crash model), graceful shutdown drain, and the per-line
//! flush contract of the protocol session.
//!
//! The isolation invariant under test: every answer a reader produces
//! must be consistent with **one single committed generation** — no
//! torn reads mixing two states, and the generation numbers one reader
//! observes never go backwards.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use bitruss::graph::GraphBuilder;
use bitruss::server::{BitrussServer, ServerConfig, SubmitError, UpdateOutcome};
use bitruss::{BipartiteGraph, BitrussEngine, DurableEngine, Fault, MemVfs, UpdateBatch};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Deterministic xorshift generator (the vendored proptest shim has no
/// collection strategies; seeds drive the shapes instead).
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A deterministic sparse base graph on the 16×16 vertex universe
/// (~one third of the pairs present), leaving plenty of absent pairs
/// for in-range insertions.
fn base_graph() -> BipartiteGraph {
    GraphBuilder::new()
        .add_edges(base_pairs())
        .build()
        .expect("base graph")
}

fn base_pairs() -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for u in 0..16u32 {
        for v in 0..16u32 {
            if (u * 31 + v * 17) % 3 == 0 {
                pairs.push((u, v));
            }
        }
    }
    pairs
}

/// Absent pairs of the same universe, a deterministic insertion menu.
fn absent_pairs() -> Vec<(u32, u32)> {
    let present: BTreeSet<(u32, u32)> = base_pairs().into_iter().collect();
    let mut out = Vec::new();
    for u in 0..16u32 {
        for v in 0..16u32 {
            if !present.contains(&(u, v)) {
                out.push((u, v));
            }
        }
    }
    out
}

fn store_dir() -> PathBuf {
    PathBuf::from("/store")
}

/// A server over a fresh MemVfs store on the base graph, with admission
/// control opened wide so tests exercise isolation, not shedding.
fn start_server(readers_hint: usize) -> bitruss::server::ServerHandle {
    let engine = BitrussEngine::builder()
        .build(base_graph())
        .expect("base engine");
    let durable = DurableEngine::create_with(Arc::new(MemVfs::new()), &store_dir(), engine)
        .expect("create store");
    let config = ServerConfig {
        readers: readers_hint,
        queue_capacity: 64,
        work_budget: 1 << 30,
        work_leak_per_sec: u64::MAX,
    };
    BitrussServer::start(durable, config)
}

/// Submits with bounded retries across transient admission shedding
/// (a fallback-settled batch charges the whole work budget; the huge
/// test leak rate drains it within microseconds).
fn submit_with_retry(
    handle: &bitruss::server::ServerHandle,
    batch: UpdateBatch,
) -> Result<UpdateOutcome, SubmitError> {
    for _ in 0..1000 {
        match handle.submit_update(batch.clone()) {
            Err(SubmitError::Overloaded) | Err(SubmitError::QueueFull) => {
                thread::sleep(std::time::Duration::from_millis(1));
            }
            other => return other,
        }
    }
    handle.submit_update(batch)
}

/// The tentpole invariant, for reader thread counts 1, 2, 4 and 8:
/// a writer streams single-insert batches while `n` readers hammer
/// `current()`; every pinned generation must be internally consistent
/// (edge count matches the generation number exactly) and per-reader
/// generation numbers must be monotone.
#[test]
fn isolation_stress_across_reader_counts() {
    for readers in [1usize, 2, 4, 8] {
        let violations = run_isolation_stress(readers, 24);
        assert!(
            violations.is_empty(),
            "{readers} readers: isolation violations: {violations:?}"
        );
    }
}

fn run_isolation_stress(readers: usize, batches: usize) -> Vec<String> {
    let handle = Arc::new(start_server(readers));
    let inserts: Vec<(u32, u32)> = absent_pairs().into_iter().take(batches).collect();
    assert_eq!(inserts.len(), batches, "universe too small for the plan");
    // Generation g is the base plus the first g inserts, so its edge
    // count is `base + g` — a torn or stale read cannot satisfy this
    // for any single g while also matching the pinned number.
    let base_edges = base_graph().num_edges() as usize;
    let expected_edges: Vec<usize> = (0..=batches).map(|g| base_edges + g).collect();

    let done = Arc::new(AtomicBool::new(false));
    let mut reader_threads = Vec::new();
    for reader_id in 0..readers {
        let handle = Arc::clone(&handle);
        let done = Arc::clone(&done);
        let expected_edges = expected_edges.clone();
        reader_threads.push(thread::spawn(move || -> Vec<String> {
            let mut violations = Vec::new();
            let mut last_seen = 0u64;
            let mut observed = 0u64;
            while !done.load(Ordering::Acquire) || observed == 0 {
                let generation = handle.current();
                observed += 1;
                let number = generation.number;
                if number < last_seen {
                    violations.push(format!(
                        "reader {reader_id}: generation went backwards: {number} < {last_seen}"
                    ));
                }
                last_seen = number;
                let engine = &generation.engine;
                let num_edges = engine.graph().num_edges() as usize;
                if num_edges != expected_edges[number as usize] {
                    violations.push(format!(
                        "reader {reader_id}: generation {number} has {num_edges} edges, \
                         expected {} — torn or mispublished state",
                        expected_edges[number as usize]
                    ));
                }
                // Intra-generation consistency: φ and the (lazily built,
                // generation-pinned) hierarchy must describe the same
                // edge set the graph holds.
                if engine.phi().len() != num_edges {
                    violations.push(format!(
                        "reader {reader_id}: generation {number}: phi len {} vs {num_edges} edges",
                        engine.phi().len()
                    ));
                }
                match engine.k_bitruss_count(0) {
                    Ok(n) if n == num_edges => {}
                    Ok(n) => violations.push(format!(
                        "reader {reader_id}: generation {number}: 0-bitruss {n} vs {num_edges}"
                    )),
                    Err(e) => violations.push(format!(
                        "reader {reader_id}: generation {number}: hierarchy: {e}"
                    )),
                }
                if violations.len() > 8 {
                    break; // enough evidence; don't flood the report
                }
            }
            violations
        }));
    }

    let mut violations = Vec::new();
    for (i, &(u, v)) in inserts.iter().enumerate() {
        let mut batch = UpdateBatch::new();
        batch.insert(u, v);
        match submit_with_retry(&handle, batch) {
            Ok(UpdateOutcome::Acked { generation, .. }) => {
                if generation != (i + 1) as u64 {
                    violations.push(format!(
                        "batch {i} acked into generation {generation}, expected {}",
                        i + 1
                    ));
                }
            }
            other => violations.push(format!("batch {i}: unexpected outcome {other:?}")),
        }
    }
    done.store(true, Ordering::Release);
    for t in reader_threads {
        violations.extend(t.join().expect("reader thread"));
    }
    let final_number = handle.generation_number();
    if final_number != batches as u64 {
        violations.push(format!(
            "final generation {final_number}, expected {batches}"
        ));
    }
    let handle = Arc::into_inner(handle).expect("all clones joined");
    let (durable, stats) = handle.shutdown().expect("shutdown");
    if stats.updates_acked != batches as u64 {
        violations.push(format!(
            "{} acks counted, expected {batches}",
            stats.updates_acked
        ));
    }
    // Shutdown checkpoints: the journal is folded into a snapshot.
    if durable.journal_batches() != 0 {
        violations.push(format!(
            "{} journaled batches left after shutdown checkpoint",
            durable.journal_batches()
        ));
    }
    violations
}

/// Mid-stream kill: a `Fault::Kill` fires inside the journaling path
/// while batches stream in. Every batch acked before the kill must
/// survive recovery byte-for-byte; nothing after the kill may appear —
/// and the read path must keep serving the last published generation
/// even after the store has failed.
#[test]
fn kill_mid_stream_recovers_exactly_the_acked_prefix() {
    for kill_after in [3u64, 17, 41] {
        let vfs = MemVfs::new();
        let engine = BitrussEngine::builder()
            .build(base_graph())
            .expect("base engine");
        let durable = DurableEngine::create_with(Arc::new(vfs.clone()), &store_dir(), engine)
            .expect("create store");
        let config = ServerConfig {
            readers: 1,
            queue_capacity: 16,
            work_budget: 1 << 30,
            work_leak_per_sec: u64::MAX,
        };
        let handle = BitrussServer::start(durable, config);

        let inserts: Vec<(u32, u32)> = absent_pairs().into_iter().take(40).collect();
        vfs.fail_at(vfs.ops() + kill_after, Fault::Kill);

        let mut acked = 0usize;
        let mut first_failure = None;
        for (i, &(u, v)) in inserts.iter().enumerate() {
            let mut batch = UpdateBatch::new();
            batch.insert(u, v);
            match submit_with_retry(&handle, batch) {
                Ok(UpdateOutcome::Acked { .. }) => {
                    assert!(
                        first_failure.is_none(),
                        "ack after a store failure — the write fence leaked"
                    );
                    acked += 1;
                }
                Ok(UpdateOutcome::Rejected(reason)) => {
                    assert!(reason.contains("store fail"), "unexpected reason: {reason}");
                    first_failure.get_or_insert(i);
                }
                other => panic!("batch {i}: unexpected outcome {other:?}"),
            }
        }
        assert!(
            first_failure.is_some(),
            "kill at +{kill_after} never fired (acked all {acked})"
        );

        // The read path survives the store failure: the last published
        // generation still answers, at the acked edge count.
        assert_eq!(handle.generation_number(), acked as u64);
        let answer = handle.query("levels").expect("query after store failure");
        assert!(answer.is_some());
        assert_eq!(
            handle.current().engine.graph().num_edges() as usize,
            base_graph().num_edges() as usize + acked
        );

        drop(handle); // drains the writer; checkpoint skipped (store failed)

        // Reboot: only fsynced bytes survive. Recovery must land on
        // exactly the acknowledged prefix.
        vfs.crash();
        let recovered =
            DurableEngine::open_with(Arc::new(vfs.clone()), &store_dir()).expect("recovery");
        let got: BTreeSet<(u32, u32)> = recovered
            .engine()
            .graph()
            .edge_pairs()
            .into_iter()
            .collect();
        let mut want: BTreeSet<(u32, u32)> = base_pairs().into_iter().collect();
        want.extend(inserts.iter().take(acked).copied());
        assert_eq!(
            got, want,
            "kill at +{kill_after}: recovered state is not the acked prefix ({acked} acks)"
        );

        // And the recovered store serves a fresh server run.
        let handle = BitrussServer::start(recovered, config);
        assert_eq!(handle.generation_number(), 0);
        let mut batch = UpdateBatch::new();
        let (u, v) = inserts[acked]; // the first pair the kill swallowed
        batch.insert(u, v);
        match submit_with_retry(&handle, batch) {
            Ok(UpdateOutcome::Acked { generation, .. }) => assert_eq!(generation, 1),
            other => panic!("post-recovery update: unexpected outcome {other:?}"),
        }
        handle.shutdown().expect("post-recovery shutdown");
    }
}

/// Graceful shutdown drains: batches queued by concurrent submitters
/// before `shutdown()` all resolve (acked or refused — never hung), the
/// acked ones are in the final store, and the journal is checkpointed
/// away.
#[test]
fn shutdown_drains_concurrent_submitters() {
    let handle = Arc::new(start_server(2));
    let inserts: Vec<(u32, u32)> = absent_pairs().into_iter().take(8).collect();
    let mut submitters = Vec::new();
    for (u, v) in inserts {
        let handle = Arc::clone(&handle);
        submitters.push(thread::spawn(move || {
            let mut batch = UpdateBatch::new();
            batch.insert(u, v);
            match submit_with_retry(&handle, batch) {
                Ok(UpdateOutcome::Acked { .. }) => (1u64, 0u64),
                Ok(_) | Err(SubmitError::ShuttingDown) => (0, 1),
                Err(e) => panic!("unexpected submit error {e:?}"),
            }
        }));
    }
    let mut acked = 0u64;
    let mut refused = 0u64;
    for t in submitters {
        let (a, r) = t.join().expect("submitter");
        acked += a;
        refused += r;
    }
    assert_eq!(acked + refused, 8, "every submitter got an outcome");
    let handle = Arc::into_inner(handle).expect("all clones joined");
    let (durable, stats) = handle.shutdown().expect("shutdown");
    assert_eq!(stats.updates_acked, acked);
    assert_eq!(
        durable.engine().graph().num_edges() as u64,
        base_graph().num_edges() as u64 + acked,
        "exactly the acked inserts reached the store"
    );
    assert_eq!(
        durable.journal_batches(),
        0,
        "shutdown checkpoint folded the journal"
    );
}

/// A `Write` sink that counts flushes, to pin the per-line flush
/// contract of interactive sessions.
struct FlushCounting {
    bytes: Vec<u8>,
    flushes: usize,
}

impl Write for FlushCounting {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.flushes += 1;
        Ok(())
    }
}

/// One protocol session end to end: engine queries, update acks,
/// stats, generation, `shutdown` → `bye` — each response flushed as it
/// is written, so a socket peer sees every answer immediately.
#[test]
fn protocol_session_flushes_every_response() {
    let handle = start_server(1);
    let (u, v) = absent_pairs()[0];
    let session = format!(
        "% warm-up comment\nlevels\nedges 0\nupdate +{u} {v}\ngeneration\nstats\nnope\nshutdown\n"
    );
    let mut out = FlushCounting {
        bytes: Vec::new(),
        flushes: 0,
    };
    let responses = handle
        .serve_connection(session.as_bytes(), &mut out)
        .expect("session");
    let text = String::from_utf8(out.bytes).expect("utf8");
    // 7 responses for 8 lines: the comment is silent. (`levels` renders
    // one multi-line answer, so response count ≠ output line count.)
    assert_eq!(responses, 7, "comment produces no response:\n{text}");
    assert!(text.contains("acked seq=1 ops=1 generation=1"), "{text}");
    assert!(text.contains("\ngeneration 1\n"), "{text}");
    assert!(
        text.contains("\nstats ") && text.contains("acked=1"),
        "{text}"
    );
    // The stats verb surfaces the generation's memory accounting.
    assert!(text.contains(" graph_bytes="), "{text}");
    assert!(!text.contains("graph_bytes=0 "), "{text}");
    assert!(text.contains(" index_peak_bytes="), "{text}");
    assert!(text.contains("\nerror: unknown query"), "{text}");
    assert_eq!(text.lines().next_back(), Some("bye"), "{text}");
    assert!(
        out.flushes >= responses as usize,
        "{} flushes for {responses} responses — answers are sitting in a buffer",
        out.flushes
    );
    let (_durable, stats) = handle.shutdown().expect("shutdown");
    assert_eq!(stats.updates_acked, 1);
    // `levels`, `edges 0`, and the error-rendered `nope` line: every
    // answered query line counts, error replies included.
    assert_eq!(stats.queries_served, 3);
}

/// `BitrussEngine::run_queries` (the CLI `query` loop) has the same
/// per-answer flush contract.
#[test]
fn run_queries_flushes_per_answer() {
    let engine = BitrussEngine::builder()
        .build(base_graph())
        .expect("engine");
    let mut out = FlushCounting {
        bytes: Vec::new(),
        flushes: 0,
    };
    let answered = engine
        .run_queries("levels\n% note\nedges 0\n".as_bytes(), &mut out)
        .expect("queries");
    assert_eq!(answered, 2);
    assert!(
        out.flushes >= 2,
        "{} flushes for {answered} answers",
        out.flushes
    );
}

/// Random valid batch streams (inserts and deletes, occasionally empty)
/// against two racing readers: every pinned generation must equal the
/// precomputed mirror state for its number, exactly.
fn isolation_holds_for_random_streams(seed: u64) -> Result<(), TestCaseError> {
    let base = base_graph();
    let mut rng = Rng::new(seed);
    let mut present: BTreeSet<(u32, u32)> = base_pairs().into_iter().collect();
    let mut batches = Vec::new();
    // Mirror states per generation: generation 0 is the base; only a
    // batch with a net effect publishes the next one.
    let mut expected: Vec<BTreeSet<(u32, u32)>> = vec![present.clone()];
    for _ in 0..12 {
        let mut batch = UpdateBatch::new();
        let before = present.clone();
        for _ in 0..(1 + rng.next() % 3) {
            if !present.is_empty() && rng.next().is_multiple_of(2) {
                let idx = rng.next() as usize % present.len();
                let &(u, v) = present.iter().nth(idx).expect("mirror edge");
                batch.delete(u, v);
                present.remove(&(u, v));
            } else {
                let pair = ((rng.next() % 16) as u32, (rng.next() % 16) as u32);
                if present.insert(pair) {
                    batch.insert(pair.0, pair.1);
                }
            }
        }
        if present != before {
            expected.push(present.clone());
        }
        batches.push(batch);
    }

    let engine = BitrussEngine::builder().build(base).expect("engine");
    let durable = DurableEngine::create_with(Arc::new(MemVfs::new()), &store_dir(), engine)
        .expect("create store");
    let config = ServerConfig {
        readers: 2,
        queue_capacity: 16,
        work_budget: 1 << 30,
        work_leak_per_sec: u64::MAX,
    };
    let handle = Arc::new(BitrussServer::start(durable, config));

    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..2 {
        let handle = Arc::clone(&handle);
        let done = Arc::clone(&done);
        let expected = expected.clone();
        readers.push(thread::spawn(move || -> Result<(), String> {
            let mut last_seen = 0u64;
            while !done.load(Ordering::Acquire) {
                let generation = handle.current();
                let number = generation.number as usize;
                if (generation.number) < last_seen {
                    return Err(format!("generation went backwards: {number} < {last_seen}"));
                }
                last_seen = generation.number;
                let got: BTreeSet<(u32, u32)> =
                    generation.engine.graph().edge_pairs().into_iter().collect();
                let want = expected
                    .get(number)
                    .ok_or_else(|| format!("generation {number} beyond the plan"))?;
                if got != *want {
                    return Err(format!(
                        "generation {number}: edge set diverges from the mirror \
                         ({} vs {} edges)",
                        got.len(),
                        want.len()
                    ));
                }
            }
            Ok(())
        }));
    }

    let mut published = 0u64;
    for batch in &batches {
        match submit_with_retry(&handle, batch.clone()) {
            Ok(UpdateOutcome::Acked {
                generation, ops, ..
            }) => {
                if ops > 0 {
                    published += 1;
                }
                prop_assert_eq!(generation, published, "acks must track publications");
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }
    prop_assert_eq!(published as usize + 1, expected.len());
    done.store(true, Ordering::Release);
    for t in readers {
        let verdict = t.join().expect("reader thread");
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
    let handle = Arc::into_inner(handle).expect("all clones joined");
    handle.shutdown().expect("shutdown");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_streams_preserve_isolation(seed in any::<u64>()) {
        isolation_holds_for_random_streams(seed)?;
    }
}
