//! Out-of-core engine tests through the public facade: budget-sweep
//! bit-identity and fault injection on the scratch filesystem.
//!
//! The contract under test (see `docs/STORAGE.md`):
//!
//! * **Exactness** — for EVERY memory budget, `memory_budget(b)` yields
//!   the same φ, the same support-update count and the same hierarchy
//!   answers as the fully-resident engine; the budget moves bytes, never
//!   results.
//! * **Faults are loud, never lethal** — any I/O failure (ENOSPC, a
//!   killed process) on the scratch Vfs surfaces as `Err` from
//!   `build()`, never a panic, and a later run on healthy storage
//!   succeeds from scratch.

use std::path::PathBuf;
use std::sync::Arc;

use bitruss::{Algorithm, BitrussEngine, Fault, MemVfs};
use proptest::prelude::*;

/// A session under an explicit byte budget, spilling to `vfs`.
fn budgeted(
    g: bitruss::BipartiteGraph,
    budget: usize,
    vfs: Arc<MemVfs>,
) -> bitruss::graph::Result<BitrussEngine<'static>> {
    BitrussEngine::builder()
        .algorithm(Algorithm::BuPlusPlus)
        .memory_budget(budget)
        .scratch(vfs, PathBuf::from("scratch"))
        .build(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-identity across the whole budget axis: unconstrained,
    /// comfortable, tight and pathological (0 bytes) budgets all
    /// reproduce the in-memory decomposition exactly.
    #[test]
    fn every_budget_reproduces_the_in_memory_decomposition(seed in any::<u64>()) {
        let g = bitruss::workloads::powerlaw::chung_lu(24, 20, 160, 2.0, 2.0, seed);
        let base = BitrussEngine::builder()
            .algorithm(Algorithm::BuPlusPlus)
            .build(g.clone())
            .expect("in-memory run");
        let ks: Vec<u64> = (0..=base.max_bitruss()).collect();

        for budget in [0usize, 512, 64 * 1024, usize::MAX] {
            let session = budgeted(g.clone(), budget, Arc::new(MemVfs::new()))
                .expect("budgeted run");
            prop_assert_eq!(session.phi(), base.phi(), "phi diverged at budget {}", budget);
            prop_assert_eq!(
                session.metrics().unwrap().support_updates,
                base.metrics().unwrap().support_updates,
                "update counts diverged at budget {}", budget
            );
            for &k in &ks {
                prop_assert_eq!(
                    session.k_bitruss_count(k).unwrap(),
                    base.k_bitruss_count(k).unwrap(),
                    "{}-bitruss answer diverged at budget {}", k, budget
                );
            }
            // The report always reflects the path taken: a budget of 0
            // must actually have gone out of core.
            let report = session.metrics().unwrap().memory.expect("report");
            prop_assert_eq!(report.budget_bytes, budget);
            if budget == 0 {
                prop_assert!(report.spill_bytes_written > 0, "budget 0 never spilled");
            }
        }
    }
}

/// Runs the budgeted decomposition against a scratch filesystem that
/// injects `fault` at every operation number in turn, asserting each
/// faulted run fails with an error (never a panic, never a wrong
/// result) and that healthy storage still succeeds afterwards.
fn fault_sweep(fault: Fault) {
    let g = bitruss::workloads::powerlaw::chung_lu(16, 14, 90, 2.0, 2.0, 7);
    let clean = Arc::new(MemVfs::new());
    let base = budgeted(g.clone(), 0, Arc::clone(&clean)).expect("fault-free run");
    let total_ops = clean.ops();
    assert!(
        total_ops > 0,
        "the budgeted path must touch the scratch Vfs"
    );

    for op in 0..total_ops {
        let vfs = Arc::new(MemVfs::new());
        vfs.fail_at(op, fault);
        let result = budgeted(g.clone(), 0, Arc::clone(&vfs));
        match result {
            Err(_) => {}
            // A fault on the very last few operations (e.g. removing the
            // consumed paged file after everything was read back) may
            // still leave a complete run — then the answer must be the
            // fault-free one.
            Ok(session) => assert_eq!(
                session.phi(),
                base.phi(),
                "{fault:?}@{op} survived with a wrong decomposition"
            ),
        }
    }

    // Healthy storage afterwards: the failure left nothing sticky
    // behind in the engine or the graph.
    let retry = budgeted(g, 0, Arc::new(MemVfs::new())).expect("healthy retry");
    assert_eq!(retry.phi(), base.phi());
}

#[test]
fn enospc_at_every_operation_is_an_error_not_a_panic() {
    fault_sweep(Fault::Enospc);
}

#[test]
fn kill_at_every_operation_is_an_error_not_a_panic() {
    fault_sweep(Fault::Kill);
}
