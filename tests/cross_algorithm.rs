//! Cross-algorithm integration properties: every decomposition algorithm
//! in the suite must produce the *identical* φ array, and that array must
//! satisfy the defining properties of bitruss decomposition.

use bitruss::decomposition::{reference_decomposition, validate_decomposition};
use bitruss::{count_per_edge, decompose, Algorithm, BipartiteGraph, EdgeId};
use proptest::prelude::*;

/// Random bipartite graph strategy: up to `max_n`×`max_n` vertices with a
/// variable number of edges.
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = BipartiteGraph> {
    (2..=max_n, 2..=max_n, 0..=max_m, any::<u64>())
        .prop_map(|(nu, nl, m, seed)| bitruss::workloads::random::uniform(nu, nl, m, seed))
}

/// Skewed bipartite graph strategy (hubs present).
fn arb_skewed(max_n: u32, max_m: usize) -> impl Strategy<Value = BipartiteGraph> {
    (4..=max_n, 4..=max_n, 8..=max_m, any::<u64>(), 15..30u32).prop_map(
        |(nu, nl, m, seed, alpha10)| {
            bitruss::workloads::powerlaw::chung_lu(
                nu,
                nl,
                m,
                f64::from(alpha10) / 10.0,
                f64::from(alpha10) / 10.0,
                seed,
            )
        },
    )
}

const ALL_ALGORITHMS: &[Algorithm] = &[
    Algorithm::BsIntersection,
    Algorithm::BsPairEnumeration,
    Algorithm::Bu,
    Algorithm::BuPlus,
    Algorithm::BuPlusPlus,
    Algorithm::Pc { tau: 0.02 },
    Algorithm::Pc { tau: 0.25 },
    Algorithm::Pc { tau: 1.0 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_agree_with_reference(g in arb_graph(16, 70)) {
        let expect = reference_decomposition(&g);
        for &alg in ALL_ALGORITHMS {
            let (d, _) = decompose(&g, alg);
            prop_assert_eq!(&d, &expect, "{} diverged", alg.name());
        }
    }

    #[test]
    fn all_algorithms_agree_on_skewed_graphs(g in arb_skewed(40, 300)) {
        let (expect, _) = decompose(&g, Algorithm::Bu);
        for &alg in ALL_ALGORITHMS {
            let (d, _) = decompose(&g, alg);
            prop_assert_eq!(&d, &expect, "{} diverged", alg.name());
        }
    }

    #[test]
    fn phi_is_bounded_by_support(g in arb_graph(16, 70)) {
        let counts = count_per_edge(&g);
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        for e in g.edges() {
            prop_assert!(d.bitruss_number(e) <= counts.support(e));
        }
    }

    #[test]
    fn bitrusses_are_nested(g in arb_graph(14, 60)) {
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let mut prev: Option<Vec<EdgeId>> = None;
        for k in d.levels() {
            let edges = d.k_bitruss_edges(k);
            if let Some(p) = prev {
                prop_assert!(edges.iter().all(|e| p.contains(e)), "H_k not nested");
            }
            prev = Some(edges);
        }
    }

    #[test]
    fn decomposition_satisfies_definitions(g in arb_graph(12, 45)) {
        let (d, _) = decompose(&g, Algorithm::pc_default());
        prop_assert!(validate_decomposition(&g, &d).is_ok());
    }

    #[test]
    fn support_sum_is_four_times_butterflies(g in arb_graph(20, 120)) {
        let counts = count_per_edge(&g);
        let sum: u64 = counts.per_edge.iter().sum();
        prop_assert_eq!(sum, 4 * counts.total);
    }
}

#[test]
fn metrics_phases_are_populated() {
    let g = bitruss::workloads::powerlaw::chung_lu(60, 60, 600, 2.0, 2.0, 5);
    let (_, m) = decompose(&g, Algorithm::Bu);
    assert!(m.peak_index_bytes > 0);
    assert_eq!(m.iterations, 1);
    let (_, m) = decompose(&g, Algorithm::pc_default());
    assert!(m.iterations >= 1);
    assert!(m.total_time() >= m.peeling_time);
}
