//! Property suite for the two-phase partition-parallel engine
//! (BiT-BU++2P, `bitruss_core::partition`).
//!
//! Three contracts, each a theorem the implementation must uphold:
//!
//! 1. **Bit-identity** — φ from the two-phase engine equals sequential
//!    BiT-BU++ for threads ∈ {1, 2, 4, 8} and several band counts, on
//!    both uniform and skewed (hub-heavy) random graphs.
//! 2. **Band-assignment soundness** — every edge's final φ lies inside
//!    the band the coarse scan assigned it, or the stitch log records
//!    its migration (which a correct build never needs).
//! 3. **Cancellation** — cancelling mid-phase-2 surfaces
//!    `Err(Cancelled)` out of every concurrently peeling band worker,
//!    never a partial result, at whatever point the poll lands.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bitruss::decomposition::{
    bit_bu_pp_2p_tuned, bit_bu_pp_2p_with_outcome, validate_decomposition, NoopObserver,
};
use bitruss::{decompose, Algorithm, BipartiteGraph, EngineObserver, Phase, Threads};
use proptest::prelude::*;

/// Random bipartite graph strategy: up to `max_n`×`max_n` vertices with a
/// variable number of edges.
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = BipartiteGraph> {
    (2..=max_n, 2..=max_n, 0..=max_m, any::<u64>())
        .prop_map(|(nu, nl, m, seed)| bitruss::workloads::random::uniform(nu, nl, m, seed))
}

/// Skewed bipartite graph strategy (hubs present) — the regime band
/// partitioning exists for.
fn arb_skewed(max_n: u32, max_m: usize) -> impl Strategy<Value = BipartiteGraph> {
    (4..=max_n, 4..=max_n, 8..=max_m, any::<u64>(), 15..30u32).prop_map(
        |(nu, nl, m, seed, alpha10)| {
            bitruss::workloads::powerlaw::chung_lu(
                nu,
                nl,
                m,
                f64::from(alpha10) / 10.0,
                f64::from(alpha10) / 10.0,
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn two_phase_is_bit_identical_to_sequential(g in arb_graph(16, 70)) {
        let (seq, _) = decompose(&g, Algorithm::BuPlusPlus);
        for threads in [1usize, 2, 4, 8] {
            let (d, m) = bit_bu_pp_2p_tuned(&g, Threads(threads), 8);
            prop_assert_eq!(&d, &seq, "threads {}", threads);
            prop_assert!(m.bands >= 1);
        }
        validate_decomposition(&g, &seq).unwrap();
    }

    #[test]
    fn two_phase_is_bit_identical_on_skewed_graphs(g in arb_skewed(32, 250)) {
        let (seq, _) = decompose(&g, Algorithm::BuPlusPlus);
        for (threads, bands) in [(1usize, 16usize), (2, 4), (4, 16), (8, 3)] {
            let (d, _) = bit_bu_pp_2p_tuned(&g, Threads(threads), bands);
            prop_assert_eq!(&d, &seq, "threads {} bands {}", threads, bands);
        }
    }

    #[test]
    fn band_assignment_is_sound(g in arb_skewed(28, 200)) {
        let (d, _, outcome) =
            bit_bu_pp_2p_with_outcome(&g, Threads(4), 8, &NoopObserver).unwrap();
        // The stitch log must stay empty (exactness is a theorem, not a
        // repair loop), and with it empty, every φ must sit in its band.
        prop_assert!(outcome.stitch.migrations.is_empty());
        prop_assert_eq!(outcome.band_of_edge.len(), g.num_edges() as usize);
        for e in 0..g.num_edges() as usize {
            let p = outcome.band_of_edge[e];
            prop_assert!(
                outcome.in_band(p, d.phi[e]),
                "edge {} φ={} escaped band {} {:?}",
                e, d.phi[e], p, outcome.band_range(p)
            );
        }
        // Band ranges tile the φ axis: bounds strictly ascend.
        prop_assert!(outcome.bounds.windows(2).all(|w| w[0] < w[1]));
    }
}

/// Observer that flips to cancelled on the `poll`-th `is_cancelled` call
/// at or after the peeling phase starts — landing the cancellation at an
/// arbitrary point inside the concurrently running band workers.
struct CancelInPeel {
    peeling: AtomicBool,
    polls: AtomicU64,
    after: u64,
}

impl EngineObserver for CancelInPeel {
    fn on_phase_start(&self, phase: Phase, _total: u64) {
        if phase == Phase::Peeling {
            self.peeling.store(true, Ordering::SeqCst);
        }
    }

    fn is_cancelled(&self) -> bool {
        self.peeling.load(Ordering::SeqCst)
            && self.polls.fetch_add(1, Ordering::SeqCst) >= self.after
    }
}

#[test]
fn cancellation_mid_phase_2_errors_from_every_band() {
    let g = bitruss::workloads::powerlaw::chung_lu(70, 70, 900, 1.9, 1.9, 42);
    // The graph is big enough that every band has at least one batch, so
    // a cancellation at poll 0 hits whichever band worker checks first —
    // and later polls hit workers mid-band. All must surface Cancelled.
    let mut cancelled = 0;
    for after in [0u64, 1, 3, 9, 27] {
        let obs = CancelInPeel {
            peeling: AtomicBool::new(false),
            polls: AtomicU64::new(0),
            after,
        };
        // A very late poll can miss the run entirely; that's fine as
        // long as early polls do cancel.
        if let Err(e) = bit_bu_pp_2p_with_outcome(&g, Threads(4), 8, &obs) {
            assert!(
                matches!(e, bitruss::graph::Error::Cancelled),
                "unexpected error: {e}"
            );
            cancelled += 1;
        }
    }
    assert!(
        cancelled >= 3,
        "only {cancelled}/5 cancellation points fired"
    );
}

#[test]
fn observer_sees_partition_and_stitch_phases() {
    use std::sync::Mutex;
    #[derive(Default)]
    struct PhaseRecorder(Mutex<Vec<(Phase, bool)>>);
    impl EngineObserver for PhaseRecorder {
        fn on_phase_start(&self, phase: Phase, _total: u64) {
            self.0.lock().unwrap().push((phase, true));
        }
        fn on_phase_end(&self, phase: Phase) {
            self.0.lock().unwrap().push((phase, false));
        }
    }
    let g = bitruss::workloads::random::uniform(14, 14, 60, 5);
    let obs = PhaseRecorder::default();
    bit_bu_pp_2p_with_outcome(&g, Threads(2), 4, &obs).unwrap();
    let events = obs.0.into_inner().unwrap();
    for phase in [Phase::Partition, Phase::Peeling, Phase::Stitch] {
        assert!(events.contains(&(phase, true)), "{phase:?} never started");
        assert!(events.contains(&(phase, false)), "{phase:?} never ended");
    }
    // Partition strictly precedes peeling, peeling precedes stitch.
    let pos = |p| events.iter().position(|&(ph, s)| ph == p && s).unwrap();
    assert!(pos(Phase::Partition) < pos(Phase::Peeling));
    assert!(pos(Phase::Peeling) < pos(Phase::Stitch));
}
