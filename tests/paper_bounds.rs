//! Property tests for the paper's stated bounds and lemmas, checked on
//! random and skewed graphs through the public API.

use bitruss::decomposition::kmax_bound;
use bitruss::{count_per_edge, decompose, Algorithm, BipartiteGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    prop_oneof![
        (2..18u32, 2..18u32, 0..110usize, any::<u64>())
            .prop_map(|(nu, nl, m, s)| bitruss::workloads::random::uniform(nu, nl, m, s)),
        (4..30u32, 4..30u32, 10..220usize, any::<u64>()).prop_map(|(nu, nl, m, s)| {
            bitruss::workloads::powerlaw::chung_lu(nu, nl, m, 1.9, 2.1, s)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 8, first bound: `onG ≤ m²`.
    #[test]
    fn total_butterflies_bounded_by_m_squared(g in arb_graph()) {
        let c = count_per_edge(&g);
        let m = g.num_edges() as u64;
        prop_assert!(c.total <= m * m);
    }

    /// The per-edge bound inside Lemma 8's proof:
    /// `sup(u,v) ≤ (d(u)−1)·(d(v)−1)`.
    #[test]
    fn support_bounded_by_degree_product(g in arb_graph()) {
        let c = count_per_edge(&g);
        for e in g.edges() {
            let (u, v) = g.edge(e);
            let bound = (g.degree(u) as u64 - 1) * (g.degree(v) as u64 - 1);
            prop_assert!(c.support(e) <= bound, "{e:?}");
        }
    }

    /// Algorithm 7 step 1: the h-index `kmax` really upper-bounds the
    /// maximum bitruss number.
    #[test]
    fn kmax_upper_bounds_phi_max(g in arb_graph()) {
        let c = count_per_edge(&g);
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        prop_assert!(kmax_bound(&c.per_edge) >= d.max_bitruss());
    }

    /// Lemma 6's space bound through the public index: stored wedges
    /// never exceed `Σ min{d(u), d(v)}`.
    #[test]
    fn index_within_space_bound(g in arb_graph()) {
        let idx = bitruss::index::BeIndex::build(&g);
        prop_assert!(u64::from(idx.num_wedges()) <= g.sum_min_degree());
    }

    /// Metrics sanity across algorithms: BiT-BU performs at most 4·onG
    /// support updates (each update destroys at least one butterfly-edge
    /// incidence), and batching only reduces that.
    #[test]
    fn update_counts_within_peeling_bound(g in arb_graph()) {
        let c = count_per_edge(&g);
        let (_, m_bu) = decompose(&g, Algorithm::Bu);
        let (_, m_plus) = decompose(&g, Algorithm::BuPlus);
        prop_assert!(m_bu.support_updates <= 4 * c.total);
        prop_assert!(m_plus.support_updates <= m_bu.support_updates);
    }

    /// The decomposition's level structure is internally consistent:
    /// level sizes sum to m, and every level is inhabited.
    #[test]
    fn level_bookkeeping(g in arb_graph()) {
        let (d, _) = decompose(&g, Algorithm::pc_default());
        let sizes = d.level_sizes();
        prop_assert_eq!(
            sizes.values().sum::<usize>(),
            g.num_edges() as usize
        );
        for (&k, &n) in &sizes {
            prop_assert!(n > 0);
            prop_assert_eq!(
                d.k_bitruss_edges(k).len(),
                sizes.range(k..).map(|(_, &n)| n).sum::<usize>()
            );
        }
    }
}
