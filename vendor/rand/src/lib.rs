//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides exactly the surface the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the workload generators require. Swap this for the
//! real `rand = "0.8"` by deleting `vendor/rand` and the `path` key in the
//! workspace manifest once a registry is reachable.

#![warn(missing_docs)]

/// A source of raw random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Rejection sampling over the largest multiple of `span`
                // below 2^64 removes modulo bias.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // `start + unit * span` can round up to `end` even though
        // `unit < 1`, which would violate the half-open contract (and e.g.
        // push datagen's CDF sampling one past its last bucket) — resample.
        loop {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = self.start + unit * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, as the real rand crate does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..14u32);
            assert!((3..14).contains(&v));
            let w = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
