//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements the slice of proptest the test suites use:
//! range and tuple strategies, [`Strategy::prop_map`], `any::<u64>()`,
//! `prop_oneof!`, the `proptest!` macro with `#![proptest_config(..)]`,
//! and the `prop_assert*` macros. Cases are generated deterministically —
//! the RNG is seeded from the test name and case index — so failures
//! reproduce exactly across runs and machines. No shrinking is performed:
//! a failing case reports its case number and panics with the original
//! assertion message.
//!
//! Swap this for the real `proptest = "1"` by deleting `vendor/proptest`
//! and the `path` key in the workspace manifest once a registry is
//! reachable.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// The RNG handed to strategies while generating a case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The strategy built by [`prop_oneof!`]: picks one arm uniformly.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union from boxed arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Error type for early `return Ok(())` / `Err(..)` exits from proptest
/// bodies. The shim's `prop_assert*` macros panic instead of returning
/// `Err`, so this only ever carries a user-constructed rejection.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Runs `body` against `config.cases` deterministically generated cases.
///
/// Used by the expansion of [`proptest!`]; not part of the public
/// proptest API but harmless to expose.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: ProptestConfig, test_name: &str, mut body: F) {
    for case in 0..config.cases {
        // FNV-1a over the test name, mixed with the case index: stable
        // across runs, machines and test-ordering.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        seed = seed.wrapping_add(case as u64);
        let mut rng = TestRng(SmallRng::seed_from_u64(seed));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest case {case}/{} of `{test_name}` failed (deterministic seed {seed:#x})",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Defines property tests: `fn name(binding in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |rng| {
                $(let $binding = $crate::Strategy::generate(&($strategy), rng);)+
                // Wrap the body so `return Ok(())` early-exits work the way
                // they do under real proptest.
                #[allow(clippy::redundant_closure_call)]
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!("test case rejected: {:?}", e);
                }
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The glob-import surface test files pull in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(v in (2..=9u32, 0..5usize, any::<u64>()).prop_map(|(a, b, _s)| (a, b))) {
            prop_assert!((2..=9).contains(&v.0));
            prop_assert!(v.1 < 5);
        }

        #[test]
        fn multiple_bindings(a in 1..4u32, b in 10..=12usize) {
            prop_assert!((1..4).contains(&a));
            prop_assert!((10..=12).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![Just(1u32), Just(2u32), 5..7u32]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }

    #[test]
    fn deterministic_generation() {
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut values = Vec::new();
            crate::run_cases(ProptestConfig::with_cases(10), "det", |rng| {
                values.push((0..100u64).generate(rng));
            });
            seen.push(values);
        }
        assert_eq!(seen[0], seen[1]);
    }
}
