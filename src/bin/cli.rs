//! `bitruss-cli` — command-line front end for the bitruss suite.
//!
//! ```text
//! bitruss-cli stats      <edges.txt>
//! bitruss-cli count      <edges.txt> [--threads N]
//! bitruss-cli decompose  <edges.txt> [--algorithm bs|bu|bu+|bu++|bu++p|pc] [--tau T] [--threads N] [--output phi.txt] [--snapshot snap.bin]
//! bitruss-cli kbitruss   <edges.txt> <k> [--output sub.txt]
//! bitruss-cli communities <edges.txt> <k>
//! bitruss-cli query      <snap.bin> [--queries q.txt]
//! bitruss-cli generate   <dataset-name> <edges.txt>
//! ```
//!
//! `--threads N` selects the parallel engine with `N` workers (`0` =
//! auto-detect from the hardware); for `decompose` it upgrades the
//! default `bu++` algorithm to the parallel `bu++p`, whose result is
//! bit-identical to the sequential run. Edge files are whitespace-
//! separated `upper lower` pairs, one per line, `%`/`#` comments allowed;
//! pass `--one-based` for KONECT-style 1-based indices.
//!
//! `decompose --snapshot` saves a versioned, checksummed binary image of
//! the graph, its bitruss numbers, and the prebuilt hierarchy index;
//! `query` loads such a snapshot once and then serves batch queries from
//! `--queries <file>` or stdin, one per line:
//!
//! ```text
//! levels              # edge count per bitruss number
//! edges <k>           # size of the k-bitruss
//! community <u> <v> <k>   # the k-bitruss community around edge (u, v)
//! ```

use std::io::BufRead;
use std::process::ExitCode;

use bitruss::graph::io::{read_edge_list_file, write_edge_list_file, IndexBase};
use bitruss::graph::GraphStats;
use bitruss::{decompose, Algorithm, BipartiteGraph, BitrussHierarchy, Threads};

struct Args {
    positional: Vec<String>,
    algorithm: Algorithm,
    tau: f64,
    threads: Option<Threads>,
    output: Option<String>,
    snapshot: Option<String>,
    queries: Option<String>,
    base: IndexBase,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        algorithm: Algorithm::BuPlusPlus,
        tau: bitruss::DEFAULT_TAU,
        threads: None,
        output: None,
        snapshot: None,
        queries: None,
        base: IndexBase::Zero,
    };
    let mut it = std::env::args().skip(1);
    let mut algorithm_name: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algorithm" | "-a" => {
                algorithm_name = Some(it.next().ok_or("--algorithm needs a value")?);
            }
            "--tau" | "-t" => {
                let v = it.next().ok_or("--tau needs a value")?;
                args.tau = v.parse().map_err(|_| format!("bad τ {v:?}"))?;
            }
            "--threads" | "-j" => {
                let v = it.next().ok_or("--threads needs a value (0 = auto)")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                args.threads = Some(Threads(n));
            }
            "--output" | "-o" => {
                args.output = Some(it.next().ok_or("--output needs a value")?);
            }
            "--snapshot" | "-s" => {
                args.snapshot = Some(it.next().ok_or("--snapshot needs a value")?);
            }
            "--queries" | "-q" => {
                args.queries = Some(it.next().ok_or("--queries needs a value")?);
            }
            "--one-based" => args.base = IndexBase::One,
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => args.positional.push(other.to_string()),
        }
    }
    if let Some(name) = algorithm_name {
        args.algorithm = match name.as_str() {
            "bs" => Algorithm::BsIntersection,
            "bs-pair" => Algorithm::BsPairEnumeration,
            "bu" => Algorithm::Bu,
            "bu+" => Algorithm::BuPlus,
            "bu++" => Algorithm::BuPlusPlus,
            "bu++p" | "bu++/p" => Algorithm::BuPlusPlusPar {
                threads: args.threads.unwrap_or(Threads::AUTO),
            },
            "pc" => Algorithm::Pc { tau: args.tau },
            other => return Err(format!("unknown algorithm {other:?}")),
        };
    }
    // `--threads` without an explicit parallel algorithm upgrades the
    // default BU++ to its parallel engine (bit-identical results).
    if let Some(threads) = args.threads {
        if args.algorithm == Algorithm::BuPlusPlus {
            args.algorithm = Algorithm::BuPlusPlusPar { threads };
        }
    }
    Ok(args)
}

fn load(path: &str, base: IndexBase) -> Result<BipartiteGraph, String> {
    read_edge_list_file(path, base).map_err(|e| format!("reading {path}: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let Some(command) = args.positional.first() else {
        return Err(
            "usage: bitruss-cli <stats|count|decompose|kbitruss|communities|query|generate> …"
                .to_string(),
        );
    };
    match command.as_str() {
        "stats" => {
            let path = args.positional.get(1).ok_or("stats needs a file")?;
            let g = load(path, args.base)?;
            let s = GraphStats::of(&g);
            println!("vertices: {} upper + {} lower", s.num_upper, s.num_lower);
            println!("edges:    {}", s.num_edges);
            println!(
                "max degree: {} (upper), {} (lower)",
                s.max_degree_upper, s.max_degree_lower
            );
            println!(
                "avg degree: {:.2} (upper), {:.2} (lower)",
                s.avg_degree_upper, s.avg_degree_lower
            );
            println!("sum min-degree (index bound): {}", s.sum_min_degree);
        }
        "count" => {
            let path = args.positional.get(1).ok_or("count needs a file")?;
            let g = load(path, args.base)?;
            let c = match args.threads {
                Some(t) => bitruss::count_per_edge_parallel(&g, t.0),
                None => bitruss::count_per_edge(&g),
            };
            println!("butterflies: {}", c.total);
            println!("max support: {}", c.max_support());
            println!(
                "kmax (h-index bound on φ_max): {}",
                bitruss::decomposition::kmax_bound(&c.per_edge)
            );
        }
        "decompose" => {
            let path = args.positional.get(1).ok_or("decompose needs a file")?;
            if args.threads.is_some() && !matches!(args.algorithm, Algorithm::BuPlusPlusPar { .. })
            {
                return Err(format!(
                    "--threads only applies to the parallel engine (bu++ or bu++p), not {}",
                    args.algorithm.name()
                ));
            }
            let g = load(path, args.base)?;
            let (d, m) = decompose(&g, args.algorithm);
            println!(
                "algorithm {} finished in {:.3}s ({} support updates, {} iterations)",
                args.algorithm.name(),
                m.total_time().as_secs_f64(),
                m.support_updates,
                m.iterations
            );
            if m.peeling_threads > 0 {
                println!(
                    "threads (configured): {} counting, {} index, {} peeling",
                    m.counting_threads, m.index_threads, m.peeling_threads
                );
            }
            println!("max bitruss number: {}", d.max_bitruss());
            for (k, n) in d.level_sizes() {
                println!("  φ = {k}: {n} edges");
            }
            if let Some(out_path) = &args.output {
                let f = std::fs::File::create(out_path)
                    .map_err(|e| format!("creating {out_path}: {e}"))?;
                bitruss::write_decomposition(&g, &d, f)
                    .map_err(|e| format!("writing {out_path}: {e}"))?;
                println!("φ written to {out_path}");
            }
            if let Some(snap_path) = &args.snapshot {
                let h = BitrussHierarchy::new(&g, &d)
                    .map_err(|e| format!("building hierarchy: {e}"))?;
                bitruss::write_snapshot_file(&g, &d, Some(&h), snap_path)
                    .map_err(|e| format!("writing {snap_path}: {e}"))?;
                println!(
                    "snapshot written to {snap_path} (graph + φ + hierarchy, {} forest nodes)",
                    h.num_forest_nodes()
                );
            }
        }
        "kbitruss" => {
            let path = args.positional.get(1).ok_or("kbitruss needs a file")?;
            let k: u64 = args
                .positional
                .get(2)
                .ok_or("kbitruss needs k")?
                .parse()
                .map_err(|_| "k must be an integer")?;
            let g = load(path, args.base)?;
            // Direct extraction with early stop — no full decomposition.
            let sub = bitruss::k_bitruss(&g, k);
            println!(
                "{k}-bitruss: {} of {} edges",
                sub.graph.num_edges(),
                g.num_edges()
            );
            if let Some(out_path) = &args.output {
                write_edge_list_file(&sub.graph, out_path)
                    .map_err(|e| format!("writing {out_path}: {e}"))?;
                println!("subgraph written to {out_path}");
            }
        }
        "communities" => {
            let path = args.positional.get(1).ok_or("communities needs a file")?;
            let k: u64 = args
                .positional
                .get(2)
                .ok_or("communities needs k")?
                .parse()
                .map_err(|_| "k must be an integer")?;
            let g = load(path, args.base)?;
            let (d, _) = decompose(&g, args.algorithm);
            let communities = d.communities(&g, k);
            println!("{} communities at k = {k}", communities.len());
            for (i, c) in communities.iter().enumerate().take(20) {
                println!(
                    "  #{i}: {} upper + {} lower vertices, {} edges",
                    c.upper_members(&g).count(),
                    c.lower_members(&g).count(),
                    c.edges.len()
                );
            }
        }
        "query" => {
            let path = args
                .positional
                .get(1)
                .ok_or("query needs a snapshot file")?;
            let snap = bitruss::read_snapshot_file(path).map_err(|e| format!("{path}: {e}"))?;
            let g = snap.graph;
            let h = match snap.hierarchy {
                Some(h) => h,
                // Old snapshots without a hierarchy section: build once.
                None => BitrussHierarchy::new(&g, &snap.decomposition)
                    .map_err(|e| format!("building hierarchy: {e}"))?,
            };
            eprintln!(
                "serving {} edges, φ_max {}, {} levels, {} forest nodes",
                g.num_edges(),
                h.max_bitruss(),
                h.levels().len(),
                h.num_forest_nodes()
            );
            let reader: Box<dyn BufRead> = match &args.queries {
                Some(qpath) => Box::new(std::io::BufReader::new(
                    std::fs::File::open(qpath).map_err(|e| format!("opening {qpath}: {e}"))?,
                )),
                None => Box::new(std::io::stdin().lock()),
            };
            for line in reader.lines() {
                let line = line.map_err(|e| format!("reading queries: {e}"))?;
                serve_query(&g, &h, line.trim());
            }
        }
        "generate" => {
            let name = args.positional.get(1).ok_or("generate needs a dataset")?;
            let path = args.positional.get(2).ok_or("generate needs a file")?;
            let d = bitruss::workloads::dataset_by_name(name)
                .ok_or_else(|| format!("unknown dataset {name:?}"))?;
            let g = d.generate();
            write_edge_list_file(&g, path).map_err(|e| format!("writing {path}: {e}"))?;
            println!("{}: {} edges written to {path}", d.name, g.num_edges());
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

/// Answers one query line against the loaded hierarchy. Malformed lines
/// print an `error:` answer and the batch continues — a bad query must
/// not kill a server loop.
fn serve_query(g: &BipartiteGraph, h: &BitrussHierarchy, line: &str) {
    if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
        return;
    }
    let mut it = line.split_whitespace();
    let verb = it.next().unwrap_or_default();
    let mut num = |what: &str| -> Result<u64, String> {
        it.next()
            .ok_or_else(|| format!("missing {what}"))?
            .parse::<u64>()
            .map_err(|_| format!("invalid {what}"))
    };
    match verb {
        "levels" => {
            for (k, n) in h.level_sizes() {
                println!("phi = {k}: {n} edges");
            }
        }
        "edges" => match num("k") {
            Ok(k) => println!("{} edges with phi >= {k}", h.k_bitruss_count(k)),
            Err(e) => println!("error: edges: {e}"),
        },
        "community" => {
            let parsed =
                (|| Ok::<_, String>((num("upper index")?, num("lower index")?, num("k")?)))();
            let (u, v, k) = match parsed {
                Ok(t) => t,
                Err(e) => {
                    println!("error: community: {e}");
                    return;
                }
            };
            if u >= g.num_upper() as u64 || v >= g.num_lower() as u64 {
                println!("error: community: vertex ({u}, {v}) out of range");
                return;
            }
            let Some(e) = g.edge_between(g.upper(u as u32), g.lower(v as u32)) else {
                println!("community ({u}, {v}) k={k}: no such edge");
                return;
            };
            match h.community_of(g, e, k) {
                None => println!(
                    "community ({u}, {v}) k={k}: edge not in the {k}-bitruss (phi = {})",
                    h.phi_of(e)
                ),
                Some(c) => println!(
                    "community ({u}, {v}) k={k}: {} upper + {} lower vertices, {} edges",
                    c.upper_members(g).count(),
                    c.lower_members(g).count(),
                    c.edges.len()
                ),
            }
        }
        other => println!("error: unknown query {other:?} (expected levels | edges | community)"),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
