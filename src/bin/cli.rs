//! `bitruss-cli` — command-line front end for the bitruss suite.
//!
//! ```text
//! bitruss-cli stats      <edges.txt>
//! bitruss-cli count      <edges.txt> [--threads N]
//! bitruss-cli decompose  <edges.txt> [--algorithm bs|bu|bu+|bu++|bu++p|bu++2p|pc] [--tau T] [--threads N] [--memory-budget MB] [--output phi.txt] [--snapshot snap.bin]
//! bitruss-cli kbitruss   <edges.txt> <k> [--output sub.txt]
//! bitruss-cli communities <edges.txt> <k>
//! bitruss-cli query      <snap.bin> [--queries q.txt]
//! bitruss-cli update     <snap.bin> [--updates u.txt] [--snapshot out.bin]
//! bitruss-cli generate   <dataset-name|xl> <edges.txt> [--quick]
//!
//! # crash-safe store mode (durable journal + committed generations)
//! bitruss-cli decompose  <edges.txt> --store <dir>
//! bitruss-cli update     --store <dir> [--updates u.txt] [--checkpoint]
//! bitruss-cli query      --store <dir> [--queries q.txt]
//!
//! # concurrent serving mode (generation-snapshot isolation)
//! bitruss-cli serve      --store <dir> [--listen HOST:PORT] [--readers N] [--queue-cap N] [--work-budget W]
//! ```
//!
//! Every decomposition-backed subcommand runs through the
//! [`BitrussEngine`] session API: `decompose` builds a session, prints
//! its metrics, and optionally persists φ (`--output`) or a binary
//! snapshot with the prebuilt hierarchy (`--snapshot`); `query` resumes a
//! session from such a snapshot with [`BitrussEngine::from_snapshot`] and
//! serves batch queries from `--queries <file>` or stdin, one per line:
//!
//! ```text
//! levels              # edge count per bitruss number
//! edges <k>           # size of the k-bitruss
//! community <u> <v> <k>   # the k-bitruss community around edge (u, v)
//! ```
//!
//! `update` maintains a snapshot *incrementally*: it loads the session,
//! applies a `+u v` / `-u v` edge-update stream from `--updates <file>`
//! or stdin (comments and blank lines allowed; malformed lines are
//! rejected with their line number), re-peels only the affected region,
//! and writes the refreshed snapshot to `--snapshot <out>` (default:
//! back over the input; the write is atomic + fsynced, so a crash never
//! leaves a torn file). Recomputing from scratch after every edit is
//! the deprecated path — `update` produces bit-identical φ.
//!
//! `--store <dir>` switches `update`/`query` to a **crash-safe snapshot
//! store** (created with `decompose … --store <dir>`): applied batches
//! are journaled and fsynced *before* they mutate state, so a crash at
//! any instant loses at most the batch that was never acknowledged —
//! recovery replays the journal on the last committed generation
//! snapshot. `--checkpoint` folds the journal into a fresh generation
//! after applying (do this periodically to bound recovery time). See
//! `docs/DURABILITY.md` for the layout and guarantees.
//!
//! `serve` turns a store into a long-running service: queries and
//! `update`/`stats`/`generation`/`shutdown` verbs arrive one per line
//! (stdin by default, TCP with `--listen`), reads are answered against
//! immutable published generations while a single writer journals and
//! applies updates, and shutdown drains the queue and checkpoints the
//! store. See `docs/SERVER.md` for the protocol and guarantees.
//!
//! `--threads N` selects a parallel engine with `N` workers (`0` =
//! auto-detect from the hardware); for `decompose` it upgrades the
//! default `bu++` algorithm to the parallel `bu++p`, or sets the worker
//! count of an explicit `-a bu++2p` (the two-phase partition engine) —
//! either way the result is bit-identical to the sequential run.
//!
//! `--memory-budget MB` caps `decompose`'s working set: when the graph
//! plus the BE-Index would not fit, the run streams the graph from a
//! paged on-disk file and spills index construction to disk, producing
//! bit-identical φ (sequential `bu++` only; see `docs/STORAGE.md`).
//! `generate xl <file>` streams the companion workload — a synthetic
//! power-law graph far beyond memory scale (`--quick` for the small CI
//! variant of the same shape).
//!
//! Edge files are whitespace-
//! separated `upper lower` pairs, one per line, `%`/`#` comments allowed;
//! pass `--one-based` for KONECT-style 1-based indices. Unknown flags are
//! rejected with the list of known ones — typos never parse as file
//! names.

use std::io::BufRead;
use std::path::Path;
use std::process::ExitCode;

use bitruss::graph::io::{read_edge_list_file, write_edge_list_file, IndexBase};
use bitruss::graph::GraphStats;
use bitruss::{
    Algorithm, BipartiteGraph, BitrussEngine, BitrussServer, DurableEngine, DynamicEngineExt,
    MaintenanceStats, ServerConfig, Threads, UpdateBatch,
};

/// Flags every subcommand understands, printed when an unknown flag is
/// rejected.
const KNOWN_FLAGS: &str = "--algorithm/-a, --tau/-t, --threads/-j, --memory-budget, \
     --output/-o, --snapshot/-s, --queries/-q, --updates/-u, --store, --checkpoint, \
     --one-based, --listen, --readers, --queue-cap, --work-budget, --quick";

#[derive(Debug)]
struct Args {
    positional: Vec<String>,
    algorithm: Algorithm,
    threads: Option<Threads>,
    output: Option<String>,
    snapshot: Option<String>,
    queries: Option<String>,
    updates: Option<String>,
    store: Option<String>,
    checkpoint: bool,
    base: IndexBase,
    listen: Option<String>,
    readers: Option<usize>,
    queue_cap: Option<usize>,
    work_budget: Option<u64>,
    memory_budget_mb: Option<usize>,
    quick: bool,
}

fn parse_args(raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        algorithm: Algorithm::BuPlusPlus,
        threads: None,
        output: None,
        snapshot: None,
        queries: None,
        updates: None,
        store: None,
        checkpoint: false,
        base: IndexBase::Zero,
        listen: None,
        readers: None,
        queue_cap: None,
        work_budget: None,
        memory_budget_mb: None,
        quick: false,
    };
    let mut tau: Option<f64> = None;
    let mut it = raw;
    let mut algorithm_name: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algorithm" | "-a" => {
                algorithm_name = Some(it.next().ok_or("--algorithm needs a value")?);
            }
            "--tau" | "-t" => {
                let v = it.next().ok_or("--tau needs a value")?;
                tau = Some(v.parse().map_err(|_| format!("bad τ {v:?}"))?);
            }
            "--threads" | "-j" => {
                let v = it.next().ok_or("--threads needs a value (0 = auto)")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                args.threads = Some(Threads(n));
            }
            "--output" | "-o" => {
                args.output = Some(it.next().ok_or("--output needs a value")?);
            }
            "--snapshot" | "-s" => {
                args.snapshot = Some(it.next().ok_or("--snapshot needs a value")?);
            }
            "--queries" | "-q" => {
                args.queries = Some(it.next().ok_or("--queries needs a value")?);
            }
            "--updates" | "-u" => {
                args.updates = Some(it.next().ok_or("--updates needs a value")?);
            }
            "--store" => {
                args.store = Some(it.next().ok_or("--store needs a directory")?);
            }
            "--checkpoint" => args.checkpoint = true,
            "--one-based" => args.base = IndexBase::One,
            "--listen" => {
                args.listen = Some(it.next().ok_or("--listen needs HOST:PORT")?);
            }
            "--readers" => {
                let v = it.next().ok_or("--readers needs a value")?;
                args.readers = Some(v.parse().map_err(|_| format!("bad reader count {v:?}"))?);
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                args.queue_cap = Some(v.parse().map_err(|_| format!("bad queue capacity {v:?}"))?);
            }
            "--work-budget" => {
                let v = it.next().ok_or("--work-budget needs a value")?;
                args.work_budget = Some(v.parse().map_err(|_| format!("bad work budget {v:?}"))?);
            }
            "--memory-budget" => {
                let v = it.next().ok_or("--memory-budget needs a value in MB")?;
                args.memory_budget_mb =
                    Some(v.parse().map_err(|_| format!("bad memory budget {v:?}"))?);
            }
            "--quick" => args.quick = true,
            other if other.starts_with('-') => {
                return Err(format!(
                    "unknown flag {other:?} (known flags: {KNOWN_FLAGS})"
                ))
            }
            other => args.positional.push(other.to_string()),
        }
    }
    if let Some(name) = algorithm_name {
        // One shared name→variant map for the whole suite: core's FromStr.
        args.algorithm = name.parse::<Algorithm>().map_err(|e| e.to_string())?;
    }
    // `--tau` refines the PC default. `--threads` is left for
    // EngineBuilder::threads, which owns the upgrade/validation rule
    // (BU++ → BU++/P, rejected for non-parallel algorithms).
    if let Algorithm::Pc { tau: ref mut t } = args.algorithm {
        if let Some(v) = tau {
            *t = v;
        }
    }
    Ok(args)
}

fn load(path: &str, base: IndexBase) -> Result<BipartiteGraph, String> {
    read_edge_list_file(path, base).map_err(|e| format!("reading {path}: {e}"))
}

/// Builds the engine session for subcommands that decompose. The
/// `--threads` upgrade/validation rule and the `--memory-budget`
/// routing/validation both live in `EngineBuilder` alone.
fn build_session(g: BipartiteGraph, args: &Args) -> Result<BitrussEngine<'static>, String> {
    let mut builder = BitrussEngine::builder().algorithm(args.algorithm);
    if let Some(threads) = args.threads {
        builder = builder.threads(threads);
    }
    if let Some(mb) = args.memory_budget_mb {
        builder = builder.memory_budget(mb.saturating_mul(1024 * 1024));
    }
    builder.build(g).map_err(|e| e.to_string())
}

/// Shared `update` reporting for the snapshot and store paths.
fn print_update_stats(ops: usize, stats: &MaintenanceStats) {
    println!(
        "{ops} ops applied in {:.3}s: {} deleted, {} inserted ({} -> {} edges)",
        stats.total_time().as_secs_f64(),
        stats.deleted_edges,
        stats.inserted_edges,
        stats.edges_before,
        stats.edges_after
    );
    println!(
        "affected {} edges (+{} frozen boundary), reused {} ({:.1}% reuse), {} phi changed, {} support updates{}",
        stats.affected_edges,
        stats.boundary_edges,
        stats.reused_edges,
        stats.reuse_ratio() * 100.0,
        stats.phi_changed,
        stats.support_updates,
        if stats.fell_back {
            " [work budget hit: settled by full recompute]"
        } else {
            ""
        }
    );
}

/// Surfaces anything unusual a store recovery did (fallback, torn-tail
/// truncation) on stderr, so operators see it even in piped pipelines.
fn print_recovery(durable: &DurableEngine) {
    if let Some(r) = durable.recovery() {
        if r.fell_back || r.truncated_journal || r.possibly_lost_tail {
            eprintln!(
                "recovery: loaded generation {} (manifest named {}), replayed {} journaled \
                 batch(es){}",
                r.loaded_generation,
                r.manifest_generation,
                r.replayed_batches,
                r.note
                    .as_deref()
                    .map(|n| format!(" — {n}"))
                    .unwrap_or_default()
            );
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args(std::env::args().skip(1))?;
    let Some(command) = args.positional.first() else {
        return Err(
            "usage: bitruss-cli <stats|count|decompose|kbitruss|communities|query|update|serve|generate> …"
                .to_string(),
        );
    };
    match command.as_str() {
        "stats" => {
            let path = args.positional.get(1).ok_or("stats needs a file")?;
            let g = load(path, args.base)?;
            let s = GraphStats::of(&g);
            println!("vertices: {} upper + {} lower", s.num_upper, s.num_lower);
            println!("edges:    {}", s.num_edges);
            println!(
                "max degree: {} (upper), {} (lower)",
                s.max_degree_upper, s.max_degree_lower
            );
            println!(
                "avg degree: {:.2} (upper), {:.2} (lower)",
                s.avg_degree_upper, s.avg_degree_lower
            );
            println!("sum min-degree (index bound): {}", s.sum_min_degree);
        }
        "count" => {
            let path = args.positional.get(1).ok_or("count needs a file")?;
            let g = load(path, args.base)?;
            let c = match args.threads {
                Some(t) => bitruss::count_per_edge_parallel(&g, t.0),
                None => bitruss::count_per_edge(&g),
            };
            println!("butterflies: {}", c.total);
            println!("max support: {}", c.max_support());
            println!(
                "kmax (h-index bound on φ_max): {}",
                bitruss::decomposition::kmax_bound(&c.per_edge)
            );
        }
        "decompose" => {
            let path = args.positional.get(1).ok_or("decompose needs a file")?;
            let g = load(path, args.base)?;
            let session = build_session(g, &args)?;
            let m = session.metrics().expect("fresh session has metrics");
            println!(
                "algorithm {} finished in {:.3}s ({} support updates, {} iterations)",
                session.algorithm().expect("fresh session has an algorithm"),
                m.total_time().as_secs_f64(),
                m.support_updates,
                m.iterations
            );
            if m.peeling_threads > 0 {
                println!(
                    "threads (configured): {} counting, {} index, {} peeling",
                    m.counting_threads, m.index_threads, m.peeling_threads
                );
            }
            if let Some(report) = m.memory {
                if report.budget_bytes > 0 {
                    println!(
                        "memory: {} peak resident ({} graph, {} index, {} cache), \
                         {} spilled, budget {}",
                        report.peak_resident(),
                        report.graph_bytes,
                        report.index_peak_bytes,
                        report.page_cache_bytes,
                        report.spill_bytes_written,
                        report.budget_bytes
                    );
                }
            }
            println!("max bitruss number: {}", session.max_bitruss());
            for (k, n) in session.level_sizes() {
                println!("  φ = {k}: {n} edges");
            }
            if let Some(out_path) = &args.output {
                let f = std::fs::File::create(out_path)
                    .map_err(|e| format!("creating {out_path}: {e}"))?;
                bitruss::write_decomposition(session.graph(), session.decomposition(), f)
                    .map_err(|e| format!("writing {out_path}: {e}"))?;
                println!("φ written to {out_path}");
            }
            if let Some(snap_path) = &args.snapshot {
                session
                    .save_snapshot(snap_path)
                    .map_err(|e| format!("writing {snap_path}: {e}"))?;
                println!(
                    "snapshot written to {snap_path} (graph + φ + hierarchy, {} forest nodes)",
                    session
                        .hierarchy()
                        .map_err(|e| format!("building hierarchy: {e}"))?
                        .num_forest_nodes()
                );
            }
            if let Some(dir) = &args.store {
                let durable = DurableEngine::create(Path::new(dir), session)
                    .map_err(|e| format!("creating store {dir}: {e}"))?;
                println!(
                    "crash-safe store created at {dir} (generation {}, journal open)",
                    durable.generation()
                );
            }
        }
        "kbitruss" => {
            let path = args.positional.get(1).ok_or("kbitruss needs a file")?;
            let k: u64 = args
                .positional
                .get(2)
                .ok_or("kbitruss needs k")?
                .parse()
                .map_err(|_| "k must be an integer")?;
            let g = load(path, args.base)?;
            // Direct extraction with early stop — no full decomposition.
            let sub = bitruss::k_bitruss(&g, k);
            println!(
                "{k}-bitruss: {} of {} edges",
                sub.graph.num_edges(),
                g.num_edges()
            );
            if let Some(out_path) = &args.output {
                write_edge_list_file(&sub.graph, out_path)
                    .map_err(|e| format!("writing {out_path}: {e}"))?;
                println!("subgraph written to {out_path}");
            }
        }
        "communities" => {
            let path = args.positional.get(1).ok_or("communities needs a file")?;
            let k: u64 = args
                .positional
                .get(2)
                .ok_or("communities needs k")?
                .parse()
                .map_err(|_| "k must be an integer")?;
            let g = load(path, args.base)?;
            let session = build_session(g, &args)?;
            let communities = session
                .communities(k)
                .map_err(|e| format!("building hierarchy: {e}"))?;
            println!("{} communities at k = {k}", communities.len());
            let g = session.graph();
            for (i, c) in communities.iter().enumerate().take(20) {
                println!(
                    "  #{i}: {} upper + {} lower vertices, {} edges",
                    c.upper_members(g).count(),
                    c.lower_members(g).count(),
                    c.edges.len()
                );
            }
        }
        "query" => {
            let durable;
            let resumed;
            let session = match &args.store {
                Some(dir) => {
                    durable = DurableEngine::open(Path::new(dir))
                        .map_err(|e| format!("opening store {dir}: {e}"))?;
                    print_recovery(&durable);
                    durable.engine()
                }
                None => {
                    let path = args
                        .positional
                        .get(1)
                        .ok_or("query needs a snapshot file (or --store <dir>)")?;
                    resumed = BitrussEngine::from_snapshot(path).map_err(|e| e.to_string())?;
                    &resumed
                }
            };
            let h = session
                .hierarchy()
                .map_err(|e| format!("building hierarchy: {e}"))?;
            eprintln!(
                "serving {} edges, φ_max {}, {} levels, {} forest nodes",
                session.graph().num_edges(),
                h.max_bitruss(),
                h.levels().len(),
                h.num_forest_nodes()
            );
            let reader: Box<dyn BufRead> = match &args.queries {
                Some(qpath) => Box::new(std::io::BufReader::new(
                    std::fs::File::open(qpath).map_err(|e| format!("opening {qpath}: {e}"))?,
                )),
                None => Box::new(std::io::stdin().lock()),
            };
            session
                .run_queries(reader, std::io::stdout().lock())
                .map_err(|e| format!("serving queries: {e}"))?;
        }
        "update" => {
            let reader: Box<dyn BufRead> = match &args.updates {
                Some(upath) => Box::new(std::io::BufReader::new(
                    std::fs::File::open(upath).map_err(|e| format!("opening {upath}: {e}"))?,
                )),
                None => Box::new(std::io::stdin().lock()),
            };
            let batch = UpdateBatch::from_reader(reader).map_err(|e| format!("updates: {e}"))?;
            let ops = batch.len();
            if let Some(dir) = &args.store {
                // Store mode: the batch is journaled + fsynced before it
                // mutates state — a crash after this command completes
                // can never lose it.
                let mut durable = DurableEngine::open(Path::new(dir))
                    .map_err(|e| format!("opening store {dir}: {e}"))?;
                print_recovery(&durable);
                let stats = durable
                    .apply(&batch)
                    .map_err(|e| format!("applying updates: {e}"))?;
                print_update_stats(ops, &stats);
                println!("max bitruss number: {}", durable.engine().max_bitruss());
                if args.checkpoint {
                    let generation = durable
                        .checkpoint()
                        .map_err(|e| format!("checkpointing {dir}: {e}"))?;
                    println!("journal folded into committed generation {generation}");
                } else {
                    println!(
                        "durable at generation {} + {} journaled batch(es)",
                        durable.generation(),
                        durable.journal_batches()
                    );
                }
            } else {
                let path = args
                    .positional
                    .get(1)
                    .ok_or("update needs a snapshot file (or --store <dir>)")?;
                let mut session = BitrussEngine::from_snapshot(path).map_err(|e| e.to_string())?;
                let stats = session
                    .apply(&batch)
                    .map_err(|e| format!("applying updates: {e}"))?;
                print_update_stats(ops, &stats);
                println!("max bitruss number: {}", session.max_bitruss());
                let out = args.snapshot.as_deref().unwrap_or(path);
                // save_snapshot commits atomically (unique temp name +
                // fsync + rename), so a failed write never truncates the
                // only copy of an in-place-refreshed snapshot.
                session
                    .save_snapshot(out)
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!("refreshed snapshot written to {out}");
            }
        }
        "serve" => {
            let dir = args
                .store
                .as_deref()
                .ok_or("serve needs --store <dir> (create one with decompose … --store)")?;
            let durable = DurableEngine::open(Path::new(dir))
                .map_err(|e| format!("opening store {dir}: {e}"))?;
            print_recovery(&durable);
            let mut config = ServerConfig::default();
            if let Some(n) = args.readers {
                config.readers = n;
            }
            if let Some(n) = args.queue_cap {
                config.queue_capacity = n;
            }
            if let Some(w) = args.work_budget {
                config.work_budget = w;
            }
            eprintln!(
                "serving {} edges from store {dir} ({} readers, queue {}, work budget {})",
                durable.engine().graph().num_edges(),
                config.readers,
                config.queue_capacity,
                config.work_budget
            );
            let handle = BitrussServer::start(durable, config);
            match &args.listen {
                Some(addr) => {
                    let listener = std::net::TcpListener::bind(addr)
                        .map_err(|e| format!("binding {addr}: {e}"))?;
                    eprintln!("listening on {addr} — send `shutdown` on any connection to stop");
                    handle
                        .serve_tcp(listener)
                        .map_err(|e| format!("serving {addr}: {e}"))?;
                }
                None => {
                    // Stdin mode: one session on the calling thread; EOF
                    // or the `shutdown` verb ends it.
                    handle
                        .serve_connection(std::io::stdin().lock(), std::io::stdout().lock())
                        .map_err(|e| format!("serving stdin: {e}"))?;
                }
            }
            let (durable, stats) = handle
                .shutdown()
                .map_err(|e| format!("shutting down: {e}"))?;
            eprintln!("{stats}");
            eprintln!(
                "store checkpointed at generation {} ({} journaled batch(es) pending)",
                durable.generation(),
                durable.journal_batches()
            );
        }
        "generate" => {
            let name = args.positional.get(1).ok_or("generate needs a dataset")?;
            let path = args.positional.get(2).ok_or("generate needs a file")?;
            if name == "xl" {
                // The streaming generator: edges go straight to the
                // file, never through a materialized graph.
                let cfg = if args.quick {
                    bitruss::workloads::XlConfig::quick()
                } else {
                    bitruss::workloads::XlConfig::xl()
                };
                let f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
                cfg.write_edge_list(f)
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!(
                    "xl{}: {} edges streamed to {path}",
                    if args.quick { " (quick)" } else { "" },
                    cfg.count_edges()
                );
            } else {
                let d = bitruss::workloads::dataset_by_name(name)
                    .ok_or_else(|| format!("unknown dataset {name:?}"))?;
                let g = d.generate();
                write_edge_list_file(&g, path).map_err(|e| format!("writing {path}: {e}"))?;
                println!("{}: {} edges written to {path}", d.name, g.num_edges());
            }
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        parse_args(words.iter().map(|w| w.to_string()))
    }

    #[test]
    fn unknown_flags_are_rejected_with_help() {
        // The historical bug: `--thread 4` (a typo for --threads) must
        // not be swallowed as a positional argument.
        let err = parse(&["decompose", "g.txt", "--thread", "4"]).unwrap_err();
        assert!(err.contains("unknown flag \"--thread\""), "{err}");
        assert!(err.contains("--threads/-j"), "{err}");
        assert!(parse(&["decompose", "--bogus"]).is_err());
    }

    #[test]
    fn algorithm_names_parse_through_core_fromstr() {
        let args = parse(&["decompose", "g.txt", "-a", "pc", "--tau", "0.5"]).unwrap();
        assert_eq!(args.algorithm, Algorithm::Pc { tau: 0.5 });
        // `--threads` stays separate: EngineBuilder::threads owns the
        // override/upgrade rule, so parse_args records both as given.
        let args = parse(&["decompose", "g.txt", "-a", "bu++p", "-j", "3"]).unwrap();
        assert_eq!(args.algorithm, Algorithm::parallel_auto());
        assert_eq!(args.threads, Some(Threads(3)));
        let args = parse(&["decompose", "g.txt", "-a", "bu++2p", "-j", "2"]).unwrap();
        assert_eq!(args.algorithm, Algorithm::two_phase_auto());
        assert_eq!(args.threads, Some(Threads(2)));
        let err = parse(&["decompose", "g.txt", "-a", "nope"]).unwrap_err();
        assert!(err.contains("unknown algorithm"), "{err}");
    }

    #[test]
    fn threads_are_recorded_for_the_builder() {
        let args = parse(&["decompose", "g.txt", "--threads", "4"]).unwrap();
        assert_eq!(args.algorithm, Algorithm::BuPlusPlus);
        assert_eq!(args.threads, Some(Threads(4)));
        // An explicitly sequential algorithm keeps its threads too —
        // EngineBuilder::build rejects the combination.
        let args = parse(&["decompose", "g.txt", "-a", "bu", "-j", "4"]).unwrap();
        assert_eq!(args.algorithm, Algorithm::Bu);
        assert_eq!(args.threads, Some(Threads(4)));
    }

    #[test]
    fn memory_budget_and_quick_are_collected() {
        let args = parse(&["decompose", "g.txt", "--memory-budget", "512"]).unwrap();
        assert_eq!(args.memory_budget_mb, Some(512));
        assert_eq!(args.algorithm, Algorithm::BuPlusPlus);
        let args = parse(&["decompose", "g.txt"]).unwrap();
        assert_eq!(args.memory_budget_mb, None);
        assert!(parse(&["decompose", "g.txt", "--memory-budget"]).is_err());
        assert!(parse(&["decompose", "g.txt", "--memory-budget", "big"]).is_err());
        let args = parse(&["generate", "xl", "g.txt", "--quick"]).unwrap();
        assert!(args.quick);
        assert_eq!(args.positional, vec!["generate", "xl", "g.txt"]);
    }

    #[test]
    fn positionals_and_options_are_collected() {
        let args = parse(&[
            "query",
            "snap.bin",
            "--queries",
            "q.txt",
            "--one-based",
            "-o",
            "out.txt",
            "-s",
            "snap2.bin",
        ])
        .unwrap();
        assert_eq!(args.positional, vec!["query", "snap.bin"]);
        assert_eq!(args.queries.as_deref(), Some("q.txt"));
        assert_eq!(args.output.as_deref(), Some("out.txt"));
        assert_eq!(args.snapshot.as_deref(), Some("snap2.bin"));
        assert!(matches!(args.base, IndexBase::One));
    }

    #[test]
    fn update_flags_are_collected() {
        let args = parse(&["update", "snap.bin", "--updates", "u.txt", "-s", "out.bin"]).unwrap();
        assert_eq!(args.positional, vec!["update", "snap.bin"]);
        assert_eq!(args.updates.as_deref(), Some("u.txt"));
        assert_eq!(args.snapshot.as_deref(), Some("out.bin"));
        let args = parse(&["update", "snap.bin", "-u", "u.txt"]).unwrap();
        assert_eq!(args.updates.as_deref(), Some("u.txt"));
    }

    #[test]
    fn flag_values_are_required() {
        assert!(parse(&["decompose", "-a"]).is_err());
        assert!(parse(&["update", "--updates"]).is_err());
        assert!(parse(&["decompose", "--tau"]).is_err());
        assert!(parse(&["decompose", "--threads"]).is_err());
        assert!(parse(&["decompose", "--threads", "x"]).is_err());
        assert!(parse(&["decompose", "--tau", "x"]).is_err());
        assert!(parse(&["update", "--store"]).is_err());
    }

    #[test]
    fn serve_flags_are_collected() {
        let args = parse(&[
            "serve",
            "--store",
            "/data/s",
            "--listen",
            "127.0.0.1:7878",
            "--readers",
            "8",
            "--queue-cap",
            "64",
            "--work-budget",
            "1048576",
        ])
        .unwrap();
        assert_eq!(args.positional, vec!["serve"]);
        assert_eq!(args.store.as_deref(), Some("/data/s"));
        assert_eq!(args.listen.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(args.readers, Some(8));
        assert_eq!(args.queue_cap, Some(64));
        assert_eq!(args.work_budget, Some(1_048_576));
        // All serve flags default to off / engine defaults.
        let args = parse(&["serve", "--store", "dir"]).unwrap();
        assert!(args.listen.is_none());
        assert!(args.readers.is_none());
        assert!(args.queue_cap.is_none());
        assert!(args.work_budget.is_none());
        // Values are required and validated.
        assert!(parse(&["serve", "--listen"]).is_err());
        assert!(parse(&["serve", "--readers", "x"]).is_err());
        assert!(parse(&["serve", "--queue-cap", "-1"]).is_err());
        assert!(parse(&["serve", "--work-budget"]).is_err());
    }

    #[test]
    fn store_flags_are_collected() {
        let args = parse(&[
            "update",
            "--store",
            "/data/s",
            "-u",
            "u.txt",
            "--checkpoint",
        ])
        .unwrap();
        assert_eq!(args.store.as_deref(), Some("/data/s"));
        assert!(args.checkpoint);
        assert_eq!(args.updates.as_deref(), Some("u.txt"));
        // --checkpoint is a bare flag; --store defaults to off.
        let args = parse(&["decompose", "g.txt", "--store", "dir"]).unwrap();
        assert_eq!(args.store.as_deref(), Some("dir"));
        assert!(!args.checkpoint);
    }
}
