//! # bitruss — Efficient Bitruss Decomposition for Large-scale Bipartite Graphs
//!
//! A Rust implementation of the ICDE 2020 paper by Wang, Lin, Qin, Zhang
//! and Zhang: the **BE-Index** (an online index compressing butterflies
//! into maximal priority-obeyed blooms) and the decomposition algorithms
//! **BiT-BS**, **BiT-BU**, **BiT-BU++** and **BiT-PC** built on it, plus
//! every substrate they need — bipartite CSR graphs, butterfly counting,
//! workload generators and the full experiment harness.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`graph`] — bipartite graph substrate ([`graph::BipartiteGraph`],
//!   [`graph::GraphBuilder`], subgraphs, sampling, I/O);
//! * [`counting`] — butterfly counting ([`counting::count_per_edge`]);
//! * [`index`] — the BE-Index ([`index::BeIndex`]);
//! * [`decomposition`] — the engine, algorithms and result types
//!   ([`BitrussEngine`], [`decompose`], [`Algorithm`], [`Decomposition`]);
//! * [`dynamic`] — incremental maintenance under edge insertions and
//!   deletions ([`DynamicEngineExt`], [`UpdateBatch`]);
//! * [`server`] — the concurrent bitruss-as-a-service query server
//!   ([`BitrussServer`], [`ServerHandle`]);
//! * [`storage`] — the out-of-core tier: compressed paged graphs,
//!   page-cached reads, spill-to-disk index construction (engaged via
//!   [`EngineBuilder::memory_budget`], see `docs/STORAGE.md`);
//! * [`workloads`] — synthetic generators (including the streaming
//!   [`workloads::XlConfig`] beyond-memory workload) and the Table II
//!   dataset registry.
//!
//! ## Quickstart
//!
//! The headline API is the [`BitrussEngine`] session: one typed entry
//! point owning the full lifecycle **decompose → hierarchy → query →
//! snapshot** — build once, serve many.
//!
//! ```
//! use bitruss::{Algorithm, BitrussEngine, GraphBuilder};
//!
//! // The author–paper network of the paper's Figure 1.
//! let g = GraphBuilder::new()
//!     .add_edges([
//!         (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
//!         (2, 2), (2, 3), (3, 1), (3, 2), (3, 4),
//!     ])
//!     .build()
//!     .unwrap();
//!
//! let session = BitrussEngine::builder()
//!     .algorithm(Algorithm::pc_default())
//!     .build(g)
//!     .unwrap();
//! assert_eq!(session.max_bitruss(), 2);
//! // Query the k-bitruss hierarchy (index built lazily, cached).
//! assert_eq!(session.k_bitruss_count(2).unwrap(), 6);
//! println!(
//!     "φ_max = {}, {} support updates",
//!     session.max_bitruss(),
//!     session.metrics().unwrap().support_updates
//! );
//! ```
//!
//! Attach an [`EngineObserver`] via `builder().progress(..)` for phase
//! progress and cooperative cancellation on long runs, persist sessions
//! with `save_snapshot`, and resume them with
//! [`BitrussEngine::from_snapshot`]. One-shot callers that only need φ
//! can still use [`decompose`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Bipartite graph substrate (re-export of the `bigraph` crate).
pub mod graph {
    pub use bigraph::*;
}

/// Butterfly counting (re-export of the `butterfly` crate).
pub mod counting {
    pub use butterfly::*;
}

/// The BE-Index (re-export of the `beindex` crate).
pub mod index {
    pub use beindex::*;
}

/// Decomposition algorithms and results (re-export of `bitruss-core`).
pub mod decomposition {
    pub use bitruss_core::*;
}

/// Incremental maintenance under edge insertions/deletions (re-export
/// of the `bitruss-dynamic` crate).
pub mod dynamic {
    pub use bitruss_dynamic::*;
}

/// The bitruss-as-a-service query server: generation-snapshot isolated
/// reads over a durable single-writer update path (re-export of the
/// `bitruss-server` crate).
pub mod server {
    pub use bitruss_server::*;
}

/// The out-of-core storage tier: delta-compressed adjacency, paged
/// graph files behind a clock page cache, and spill-to-disk BE-Index
/// construction (re-export of the `bitruss-storage` crate).
pub mod storage {
    pub use bitruss_storage::*;
}

/// Workload generators and the dataset registry (re-export of `datagen`).
pub mod workloads {
    pub use datagen::*;
}

pub use bigraph::{BipartiteGraph, EdgeId, GraphBuilder, VertexId};
#[allow(deprecated)]
pub use bitruss_core::{
    bit_bs, bit_bu, bit_bu_hybrid, bit_bu_plus, bit_bu_pp, bit_bu_pp_2p, bit_bu_pp_par, bit_pc,
    decompose, decompose_observed, decompose_pruned, k_bitruss, read_decomposition, read_snapshot,
    read_snapshot_file, tip_decomposition, write_decomposition, write_snapshot,
    write_snapshot_file, Algorithm, BandPartition, BitrussEngine, BitrussHierarchy, Community,
    Decomposition, EngineBuilder, EngineObserver, HierarchyMode, MemoryReport, Metrics,
    NoopObserver, ParseAlgorithmError, PeelStrategy, Phase, Query, QueryAnswer, Snapshot,
    StitchLog, Threads, TipLayer, DEFAULT_TAU,
};
pub use bitruss_core::{
    write_bytes_atomic, write_bytes_atomic_std, Fault, JournalBatch, JournalOp, MemVfs,
    RecoveredState, RecoveryReport, SnapshotStore, StdVfs, Vfs, VfsFile,
};
pub use bitruss_dynamic::{
    DurableEngine, DynamicEngineExt, MaintenanceStats, UpdateBatch, UpdateOp,
};
pub use bitruss_server::{BitrussServer, ServerConfig, ServerHandle, StatsSnapshot};
pub use butterfly::{count_per_edge, count_per_edge_parallel, count_total, ButterflyCounts};
