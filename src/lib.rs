//! # bitruss — Efficient Bitruss Decomposition for Large-scale Bipartite Graphs
//!
//! A Rust implementation of the ICDE 2020 paper by Wang, Lin, Qin, Zhang
//! and Zhang: the **BE-Index** (an online index compressing butterflies
//! into maximal priority-obeyed blooms) and the decomposition algorithms
//! **BiT-BS**, **BiT-BU**, **BiT-BU++** and **BiT-PC** built on it, plus
//! every substrate they need — bipartite CSR graphs, butterfly counting,
//! workload generators and the full experiment harness.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`graph`] — bipartite graph substrate ([`graph::BipartiteGraph`],
//!   [`graph::GraphBuilder`], subgraphs, sampling, I/O);
//! * [`counting`] — butterfly counting ([`counting::count_per_edge`]);
//! * [`index`] — the BE-Index ([`index::BeIndex`]);
//! * [`decomposition`] — the algorithms and result types
//!   ([`decompose`], [`Algorithm`], [`Decomposition`]);
//! * [`workloads`] — synthetic generators and the Table II dataset
//!   registry.
//!
//! ## Quickstart
//!
//! ```
//! use bitruss::{decompose, Algorithm, GraphBuilder};
//!
//! // The author–paper network of the paper's Figure 1.
//! let g = GraphBuilder::new()
//!     .add_edges([
//!         (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
//!         (2, 2), (2, 3), (3, 1), (3, 2), (3, 4),
//!     ])
//!     .build()
//!     .unwrap();
//!
//! let (d, metrics) = decompose(&g, Algorithm::pc_default());
//! assert_eq!(d.max_bitruss(), 2);
//! println!(
//!     "φ_max = {}, {} support updates",
//!     d.max_bitruss(),
//!     metrics.support_updates
//! );
//! ```

#![warn(missing_docs)]

/// Bipartite graph substrate (re-export of the `bigraph` crate).
pub mod graph {
    pub use bigraph::*;
}

/// Butterfly counting (re-export of the `butterfly` crate).
pub mod counting {
    pub use butterfly::*;
}

/// The BE-Index (re-export of the `beindex` crate).
pub mod index {
    pub use beindex::*;
}

/// Decomposition algorithms and results (re-export of `bitruss-core`).
pub mod decomposition {
    pub use bitruss_core::*;
}

/// Workload generators and the dataset registry (re-export of `datagen`).
pub mod workloads {
    pub use datagen::*;
}

pub use bigraph::{BipartiteGraph, EdgeId, GraphBuilder, VertexId};
pub use bitruss_core::{
    bit_bs, bit_bu, bit_bu_hybrid, bit_bu_plus, bit_bu_pp, bit_bu_pp_par, bit_pc, decompose,
    decompose_pruned, k_bitruss, read_decomposition, read_snapshot, read_snapshot_file,
    tip_decomposition, write_decomposition, write_snapshot, write_snapshot_file, Algorithm,
    BitrussHierarchy, Community, Decomposition, Metrics, PeelStrategy, Snapshot, Threads, TipLayer,
    DEFAULT_TAU,
};
pub use butterfly::{count_per_edge, count_per_edge_parallel, count_total, ButterflyCounts};
