//! Fixture twin: the same import, justified with a whole-line directive.

// xtask:allow(vfs-only-io) fixture twin: read-once dataset input, not store state
use std::fs;

/// Reads a file without going through a Vfs.
pub fn slurp(p: &str) -> std::io::Result<Vec<u8>> {
    fs::read(p)
}
