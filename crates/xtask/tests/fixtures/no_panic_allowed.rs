//! Fixture twin: the same call, justified.

/// Returns the first element.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap() // xtask:allow(no-panic-lib) fixture twin: callers guarantee non-empty input
}
