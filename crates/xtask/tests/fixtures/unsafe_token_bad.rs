//! Fixture: an `unsafe` block in library code.

/// Reads a value through a raw pointer.
pub fn deref(p: *const u32) -> u32 {
    unsafe { *p }
}
