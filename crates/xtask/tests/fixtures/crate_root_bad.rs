//! Fixture: a crate root missing both hygiene attributes.

/// Does nothing.
pub fn nothing() {}
