//! Fixture twin: a compliant crate root.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Does nothing.
pub fn nothing() {}
