//! Fixture: a hand-rolled commit in the persist layer.

use crate::persist::vfs::Vfs;

/// Publishes a temp file without the atomic-write helper.
pub fn commit(vfs: &dyn Vfs, tmp: &str, dst: &str) -> std::io::Result<()> {
    vfs.rename(tmp, dst)
}
