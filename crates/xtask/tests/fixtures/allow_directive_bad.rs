//! Fixture: malformed and stale allow directives.

// xtask:allow(no-panic-lib)
/// Documented, but the directive above lacks a reason.
pub fn missing_reason() {}

// xtask:allow(not-a-real-lint) the lint name does not exist
/// Documented.
pub fn unknown_lint() {}

// xtask:allow(no-panic-lib) nothing on the next line ever fires
/// Documented.
pub fn stale() {}
