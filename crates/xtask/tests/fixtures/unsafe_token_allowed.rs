//! Fixture twin: the same block, justified.

/// Reads a value through a raw pointer.
pub fn deref(p: *const u32) -> u32 {
    unsafe { *p } // xtask:allow(forbid-unsafe) fixture twin: exercises the allow path for the token scan
}
