//! Fixture: an unexplained `Ordering::Relaxed`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bumps a counter.
pub fn bump(c: &AtomicU64) -> u64 {
    let step = 1u64;
    let doubled = step * 2;
    let halved = doubled / 2;
    c.fetch_add(halved, Ordering::Relaxed)
}
