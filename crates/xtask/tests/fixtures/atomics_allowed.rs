//! Fixture twin: the ordering choice is justified in a comment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bumps a counter.
pub fn bump(c: &AtomicU64) -> u64 {
    let step = 1u64;
    let doubled = step * 2;
    let halved = doubled / 2;
    // Relaxed: the counter is advisory telemetry; no memory is
    // published through it.
    c.fetch_add(halved, Ordering::Relaxed)
}
