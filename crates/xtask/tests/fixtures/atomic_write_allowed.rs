//! Fixture twin: the same rename, justified.

use crate::persist::vfs::Vfs;

/// Publishes a temp file with a documented protocol.
pub fn commit(vfs: &dyn Vfs, tmp: &str, dst: &str) -> std::io::Result<()> {
    vfs.rename(tmp, dst) // xtask:allow(atomic-write-discipline) fixture twin: the commit protocol is documented elsewhere
}
