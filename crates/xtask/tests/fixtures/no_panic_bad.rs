//! Fixture: library code calling `unwrap` outside tests.

/// Returns the first element.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
