//! Fixture: panics inside test code are fair game.

/// Adds one.
pub fn inc(x: u32) -> u32 {
    x + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_here() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
