//! Fixture: raw `std::fs` in library code.

use std::fs;

/// Reads a file without going through a Vfs.
pub fn slurp(p: &str) -> std::io::Result<Vec<u8>> {
    fs::read(p)
}
