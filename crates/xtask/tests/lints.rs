//! Fixture-driven integration tests for the static-analysis suite, plus
//! the self-check that the committed tree is clean.
//!
//! Each `*_bad.rs` fixture must fire exactly its lint; the `*_allowed.rs`
//! (or `*_ok.rs`) twin must be silent. The fixtures live under
//! `tests/fixtures/`, which the tree walker skips, so they never leak
//! into the self-check.

use xtask::analyze_source;

/// Runs the suite over a fixture as if it lived at `rel`, returning
/// `(line, lint)` pairs.
fn diags(rel: &str, src: &str) -> Vec<(usize, String)> {
    analyze_source(rel, src)
        .into_iter()
        .map(|d| (d.line, d.lint.to_string()))
        .collect()
}

const LIB_REL: &str = "crates/fake/src/peel.rs";

#[test]
fn no_panic_bad_fires_exactly_once() {
    let d = diags(LIB_REL, include_str!("fixtures/no_panic_bad.rs"));
    assert_eq!(d, vec![(5, "no-panic-lib".to_string())]);
}

#[test]
fn no_panic_allowed_twin_is_silent() {
    let d = diags(LIB_REL, include_str!("fixtures/no_panic_allowed.rs"));
    assert_eq!(d, vec![]);
}

#[test]
fn no_panic_ignores_test_code() {
    let d = diags(LIB_REL, include_str!("fixtures/no_panic_test_code.rs"));
    assert_eq!(d, vec![]);
}

#[test]
fn no_panic_ignores_binaries_tools_and_tests() {
    let src = include_str!("fixtures/no_panic_bad.rs");
    assert_eq!(diags("crates/fake/src/main.rs", src), vec![]);
    assert_eq!(diags("crates/bench/src/lib.rs", src), vec![]);
    assert_eq!(diags("crates/fake/tests/smoke.rs", src), vec![]);
}

#[test]
fn vfs_only_io_bad_fires_exactly_once() {
    let d = diags(LIB_REL, include_str!("fixtures/vfs_only_io_bad.rs"));
    assert_eq!(d, vec![(3, "vfs-only-io".to_string())]);
}

#[test]
fn vfs_only_io_whole_line_allow_covers_next_line() {
    let d = diags(LIB_REL, include_str!("fixtures/vfs_only_io_allowed.rs"));
    assert_eq!(d, vec![]);
}

#[test]
fn vfs_only_io_exempts_the_vfs_module_itself() {
    let src = include_str!("fixtures/vfs_only_io_bad.rs");
    assert_eq!(diags("crates/fake/src/persist/vfs.rs", src), vec![]);
}

#[test]
fn atomics_bad_fires_exactly_once() {
    let d = diags(LIB_REL, include_str!("fixtures/atomics_bad.rs"));
    assert_eq!(d, vec![(10, "atomics-ordering-audit".to_string())]);
}

#[test]
fn atomics_justification_comment_satisfies_the_audit() {
    let d = diags(LIB_REL, include_str!("fixtures/atomics_allowed.rs"));
    assert_eq!(d, vec![]);
}

#[test]
fn bare_crate_root_fires_both_parity_lints() {
    let d = diags(
        "crates/fake/src/lib.rs",
        include_str!("fixtures/crate_root_bad.rs"),
    );
    assert_eq!(
        d,
        vec![
            (1, "forbid-unsafe".to_string()),
            (1, "missing-docs-parity".to_string()),
        ]
    );
}

#[test]
fn compliant_crate_root_is_silent() {
    let d = diags(
        "crates/fake/src/lib.rs",
        include_str!("fixtures/crate_root_ok.rs"),
    );
    assert_eq!(d, vec![]);
}

#[test]
fn crate_root_lints_skip_non_root_files() {
    // The same attribute-free file deeper in the tree is fine.
    let d = diags(LIB_REL, include_str!("fixtures/crate_root_bad.rs"));
    assert_eq!(d, vec![]);
}

#[test]
fn unsafe_token_fires_exactly_once() {
    let d = diags(LIB_REL, include_str!("fixtures/unsafe_token_bad.rs"));
    assert_eq!(d, vec![(5, "forbid-unsafe".to_string())]);
}

#[test]
fn unsafe_token_allowed_twin_is_silent() {
    let d = diags(LIB_REL, include_str!("fixtures/unsafe_token_allowed.rs"));
    assert_eq!(d, vec![]);
}

#[test]
fn atomic_write_bad_fires_exactly_once() {
    let d = diags(
        "crates/fake/src/persist/store.rs",
        include_str!("fixtures/atomic_write_bad.rs"),
    );
    assert_eq!(d, vec![(7, "atomic-write-discipline".to_string())]);
}

#[test]
fn atomic_write_allowed_twin_is_silent() {
    let d = diags(
        "crates/fake/src/persist/store.rs",
        include_str!("fixtures/atomic_write_allowed.rs"),
    );
    assert_eq!(d, vec![]);
}

#[test]
fn atomic_write_only_patrols_the_persist_layer() {
    // The same rename outside persist/ is none of this lint's business.
    let d = diags(LIB_REL, include_str!("fixtures/atomic_write_bad.rs"));
    assert_eq!(d, vec![]);
}

#[test]
fn directive_hygiene_reports_missing_reason_unknown_lint_and_stale() {
    let d = diags(LIB_REL, include_str!("fixtures/allow_directive_bad.rs"));
    assert_eq!(
        d,
        vec![
            (3, "allow-directive".to_string()),
            (7, "allow-directive".to_string()),
            (11, "allow-directive".to_string()),
        ]
    );
}

#[test]
fn diagnostics_render_as_file_line_lint() {
    let d = analyze_source(LIB_REL, include_str!("fixtures/no_panic_bad.rs"));
    assert_eq!(d.len(), 1);
    let rendered = d[0].to_string();
    assert!(
        rendered.starts_with("crates/fake/src/peel.rs:5: [no-panic-lib]"),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn committed_tree_is_clean() {
    let root = xtask::workspace_root();
    let diags = xtask::analyze_tree(&root).expect("walk the workspace");
    let listing: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "the committed tree must pass `cargo run -p xtask -- analyze`:\n{}",
        listing.join("\n")
    );
}
