//! Per-file source model: classification, test-region masking, function
//! spans, and `xtask:allow` directives — the shared substrate every lint
//! pass reads instead of re-parsing text.

use crate::lexer::{self, LexedLine};

/// Workspace role of a source file, derived from its path. Lints choose
/// their scope in terms of these kinds (library invariants do not apply
/// to tests, benches, examples, binaries, or tool crates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library-crate source: `crates/<lib>/src/**` and the root facade
    /// `src/**` (minus `src/bin/`).
    Library,
    /// Binary targets: `src/bin/**` and any crate `src/main.rs`.
    Binary,
    /// Tool crates exempt from library invariants: `crates/bench` and
    /// `crates/xtask` themselves.
    Tool,
    /// Test, bench, example, and fixture code.
    Test,
}

/// Crate directory names under `crates/` that are tools, not libraries.
const TOOL_CRATES: &[&str] = &["bench", "xtask"];

/// An `// xtask:allow(<lint>) <reason>` directive parsed from a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive appears on.
    pub line: usize,
    /// The lint name inside the parentheses.
    pub lint: String,
    /// The justification after the closing parenthesis, trimmed.
    pub reason: String,
    /// 1-based line the directive suppresses in addition to its own:
    /// for a whole-line comment, the next line carrying code.
    pub target: usize,
}

/// A `fn` item's name and body extent, for lints that reason about the
/// enclosing function (atomic-write-discipline).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start: usize,
    /// 1-based line of the body's closing brace (or the `;` of a
    /// bodyless declaration).
    pub end: usize,
}

/// A lexed, classified source file ready for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Role of the file (see [`FileKind`]).
    pub kind: FileKind,
    /// `true` for a library crate root (`lib.rs`).
    pub is_crate_root: bool,
    /// Per-line code/comment views from the lexer.
    pub lines: Vec<LexedLine>,
    /// `test_mask[i]` is `true` when 0-based line `i` is inside a
    /// `#[cfg(test)]` or `#[test]` region.
    pub test_mask: Vec<bool>,
    /// Parsed `xtask:allow` directives.
    pub allows: Vec<Allow>,
    /// Function spans, in source order (inner functions appear after
    /// the outer ones that contain them).
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes and classifies `text` as the file at workspace-relative
    /// `rel` (forward-slash separated).
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let lines = lexer::lex(text);
        let test_mask = compute_test_mask(&lines);
        let allows = parse_allows(&lines);
        let fns = compute_fn_spans(&lines);
        SourceFile {
            rel: rel.to_string(),
            kind: classify(rel),
            is_crate_root: is_crate_root(rel),
            lines,
            test_mask,
            allows,
            fns,
        }
    }

    /// `true` when 1-based `line` is inside a test region.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// The innermost function containing 1-based `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start <= line && line <= f.end)
            .max_by_key(|f| f.start)
    }
}

/// Classifies a workspace-relative path (see [`FileKind`]).
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        let krate = parts[1];
        if TOOL_CRATES.contains(&krate) {
            return FileKind::Tool;
        }
        if parts.get(2) == Some(&"src") {
            if parts.last() == Some(&"main.rs") {
                return FileKind::Binary;
            }
            return FileKind::Library;
        }
        return FileKind::Test; // crates/*/tests, crates/*/benches
    }
    if parts.first() == Some(&"src") {
        if parts.get(1) == Some(&"bin") {
            return FileKind::Binary;
        }
        return FileKind::Library;
    }
    FileKind::Test // tests/, examples/, benches/
}

/// `true` when `rel` is a library crate root (`lib.rs` of a library
/// crate, including the root facade's `src/lib.rs`).
pub fn is_crate_root(rel: &str) -> bool {
    classify(rel) == FileKind::Library && rel.ends_with("/lib.rs") && {
        let parts: Vec<&str> = rel.split('/').collect();
        parts == ["src", "lib.rs"] || (parts.len() == 4 && parts[2] == "src")
    }
}

/// Marks every line inside a `#[cfg(test)]`/`#[test]` item. The region
/// runs from the attribute to the matching close brace of the item's
/// body (or its terminating `;` for bodyless items like `use`).
fn compute_test_mask(lines: &[LexedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let is_test_attr = attr_is_test(code);
        if !is_test_attr {
            continue;
        }
        // Find the item body: the first `{` at-or-after this line, or a
        // `;` for a bodyless item — whichever comes first (skipping the
        // attribute's own parentheses).
        let attr_end = code.find("]").map(|p| p + 1).unwrap_or(code.len());
        let (mut l, mut col) = (i, attr_end);
        let mut end = None;
        'scan: while l < lines.len() {
            let lc = &lines[l].code;
            for (ci, ch) in lc.char_indices().skip_while(|(ci, _)| *ci < col) {
                match ch {
                    '{' => {
                        end = Some(match_braces(lines, l, ci));
                        break 'scan;
                    }
                    ';' => {
                        end = Some(l);
                        break 'scan;
                    }
                    _ => {}
                }
            }
            l += 1;
            col = 0;
        }
        let end = end.unwrap_or(lines.len() - 1);
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
    }
    mask
}

/// `true` when the line's code holds a `#[cfg(test)]`-like or `#[test]`
/// attribute. `#[cfg(not(test))]` and `#[cfg_attr(test, ...)]` do not
/// count: they gate production code.
fn attr_is_test(code: &str) -> bool {
    if lexer::find_token(code, "#[test]").is_some() {
        return true;
    }
    let Some(start) = code.find("#[cfg(") else {
        return false;
    };
    let args = &code[start + "#[cfg(".len()..];
    let args = args.split(")]").next().unwrap_or(args);
    if args.contains("not(") {
        return false;
    }
    args.split(|c: char| !lexer::is_ident_char(c))
        .any(|tok| tok == "test")
}

/// Returns the 0-based line of the brace matching the `{` at
/// `(line, col)` in the code views. Falls back to the last line on
/// imbalance (truncated input).
fn match_braces(lines: &[LexedLine], line: usize, col: usize) -> usize {
    let mut depth = 0i64;
    for (l, lx) in lines.iter().enumerate().skip(line) {
        for (ci, ch) in lx.code.char_indices() {
            if l == line && ci < col {
                continue;
            }
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return l;
                    }
                }
                _ => {}
            }
        }
    }
    lines.len().saturating_sub(1)
}

/// Parses every `xtask:allow(<lint>) <reason>` comment directive.
fn parse_allows(lines: &[LexedLine]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(pos) = line.comment.find("xtask:allow(") else {
            continue;
        };
        let rest = &line.comment[pos + "xtask:allow(".len()..];
        let (lint, reason) = match rest.find(')') {
            Some(close) => (rest[..close].trim(), rest[close + 1..].trim()),
            None => (rest.trim(), ""),
        };
        // Prose *about* the syntax (`xtask:allow(<lint>) <reason>` in
        // docs) is not a directive: a real one names its lint in
        // kebab-case.
        if lint.is_empty()
            || !lint
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
        {
            continue;
        }
        // A whole-line comment suppresses the next line carrying code;
        // a trailing comment suppresses its own line.
        let own_line_code = !line.code.trim().is_empty();
        let target = if own_line_code {
            i + 1
        } else {
            lines
                .iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(j, _)| j + 1)
                .unwrap_or(i + 1)
        };
        out.push(Allow {
            line: i + 1,
            lint: lint.to_string(),
            reason: reason
                .trim_start_matches(['-', '—', ':', ' '])
                .trim()
                .to_string(),
            target,
        });
    }
    out
}

/// Collects `fn` item name/extent spans from the code views.
fn compute_fn_spans(lines: &[LexedLine]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(pos) = lexer::find_token(&code[from..], "fn") {
            let at = from + pos;
            let after = &code[at + 2..];
            let name: String = after
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| lexer::is_ident_char(*c))
                .collect();
            from = at + 2;
            if name.is_empty() {
                continue; // `fn` in a type position: `Fn(...)`, `fn()`
            }
            // Find the body `{` or declaration `;`, skipping the
            // signature (parens, generics, where clause).
            let (mut l, mut col) = (i, at + 2);
            let mut paren = 0i64;
            let mut bracket = 0i64;
            'scan: while l < lines.len() {
                let lc = &lines[l].code;
                for (ci, ch) in lc.char_indices() {
                    if l == i && ci < col {
                        continue;
                    }
                    match ch {
                        '(' => paren += 1,
                        ')' => paren -= 1,
                        '[' => bracket += 1,
                        ']' => bracket -= 1,
                        '{' if paren == 0 && bracket == 0 => {
                            out.push(FnSpan {
                                name,
                                start: i + 1,
                                end: match_braces(lines, l, ci) + 1,
                            });
                            break 'scan;
                        }
                        ';' if paren == 0 && bracket == 0 => {
                            out.push(FnSpan {
                                name,
                                start: i + 1,
                                end: l + 1,
                            });
                            break 'scan;
                        }
                        _ => {}
                    }
                }
                l += 1;
                col = 0;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/engine.rs"), FileKind::Library);
        assert_eq!(classify("crates/server/src/server.rs"), FileKind::Library);
        // The out-of-core tier is a library crate: its sources carry the
        // full lint battery (Vfs-only I/O, no-panic, missing-docs).
        assert_eq!(classify("crates/storage/src/lib.rs"), FileKind::Library);
        assert_eq!(
            classify("crates/storage/src/page_cache.rs"),
            FileKind::Library
        );
        assert_eq!(classify("crates/storage/tests/x.rs"), FileKind::Test);
        assert!(is_crate_root("crates/storage/src/lib.rs"));
        assert!(is_crate_root("crates/server/src/lib.rs"));
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
        assert_eq!(classify("src/bin/cli.rs"), FileKind::Binary);
        assert_eq!(classify("crates/bench/src/lib.rs"), FileKind::Tool);
        assert_eq!(classify("crates/xtask/src/main.rs"), FileKind::Tool);
        assert_eq!(classify("tests/smoke.rs"), FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Test);
        assert_eq!(classify("crates/core/tests/x.rs"), FileKind::Test);
        assert!(is_crate_root("crates/bigraph/src/lib.rs"));
        assert!(is_crate_root("src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/persist/lib.rs"));
        assert!(!is_crate_root("crates/core/src/engine.rs"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n",
        );
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(4));
        assert!(f.in_test(5));
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "#[cfg(not(test))]\nfn prod() {}\n");
        assert!(!f.in_test(2));
    }

    #[test]
    fn cfg_test_use_item_is_bounded_by_semicolon() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n",
        );
        assert!(f.in_test(2));
        assert!(!f.in_test(3));
    }

    #[test]
    fn allow_directives_and_targets() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "// xtask:allow(no-panic-lib) infallible by construction\nx.unwrap();\ny.unwrap(); // xtask:allow(no-panic-lib) same-line\n",
        );
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].lint, "no-panic-lib");
        assert_eq!(f.allows[0].reason, "infallible by construction");
        assert_eq!(f.allows[0].target, 2);
        assert_eq!(f.allows[1].line, 3);
        assert_eq!(f.allows[1].target, 3);
    }

    #[test]
    fn fn_spans_and_enclosing() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn outer() {\n    inner_call();\n    fn inner() {\n        x();\n    }\n}\nfn next() {}\n",
        );
        assert_eq!(f.enclosing_fn(2).map(|s| s.name.as_str()), Some("outer"));
        assert_eq!(f.enclosing_fn(4).map(|s| s.name.as_str()), Some("inner"));
        assert_eq!(f.enclosing_fn(7).map(|s| s.name.as_str()), Some("next"));
    }
}
