//! `cargo run -p xtask -- analyze` — run the workspace invariant lints.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- analyze [--root <dir>]");
            eprintln!();
            eprintln!("Runs the tidy-style invariant lints over the workspace source");
            eprintln!("(see docs/LINTS.md) and exits nonzero on any finding.");
            ExitCode::from(2)
        }
    }
}

fn analyze(args: &[String]) -> ExitCode {
    let mut root = xtask::workspace_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}` (known: --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }

    let diags = match xtask::analyze_tree(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask analyze: failed to read {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if diags.is_empty() {
        println!("xtask analyze: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("xtask analyze: {} finding(s)", diags.len());
    ExitCode::FAILURE
}
