//! **missing-docs-parity** — every library crate denies missing docs,
//! not just the modules whose authors remembered.
//!
//! Before this lint, `core::partition` carried a module-level
//! `#![deny(missing_docs)]` while the other crates relied on review to
//! catch undocumented public items. Parity means the guarantee is
//! uniform: each library crate root must declare the deny, so rustc
//! itself fails the build on the first undocumented public item
//! anywhere in the workspace's API surface.

use crate::lints::{Diagnostic, Lint};
use crate::source::SourceFile;

/// See the [module docs](self).
pub struct MissingDocsParity;

impl Lint for MissingDocsParity {
    fn name(&self) -> &'static str {
        "missing-docs-parity"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file.is_crate_root {
            return;
        }
        let has_attr = file
            .lines
            .iter()
            .any(|l| l.code.contains("#![deny(missing_docs)]"));
        if !has_attr {
            out.push(Diagnostic {
                rel: file.rel.clone(),
                line: 1,
                lint: self.name(),
                msg: "library crate root is missing `#![deny(missing_docs)]`".into(),
            });
        }
    }
}
