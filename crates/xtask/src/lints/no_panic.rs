//! **no-panic-lib** — library code returns `Error`, it does not abort.
//!
//! A panic mid-peel poisons shared state and kills the whole process; a
//! panic mid-recovery turns a survivable torn journal tail into an
//! outage. Every fallible path in the library crates must surface as a
//! typed [`Err`] the caller can handle (the engine already threads
//! `Result` through every long pass for cancellation). `debug_assert!`
//! remains available for invariant checks that vanish in release
//! builds, and test code may panic freely.

use crate::lexer::find_token;
use crate::lints::{Diagnostic, Lint};
use crate::source::{FileKind, SourceFile};

/// Panicking constructs forbidden in non-test library code.
const NEEDLES: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "return a typed Error (or justify with xtask:allow)",
    ),
    (
        ".expect(",
        "return a typed Error (or justify with xtask:allow)",
    ),
    (
        "panic!",
        "return a typed Error (or justify with xtask:allow)",
    ),
    ("assert!", "use debug_assert! or return Error::Invariant"),
    (
        "assert_eq!",
        "use debug_assert_eq! or return Error::Invariant",
    ),
    (
        "assert_ne!",
        "use debug_assert_ne! or return Error::Invariant",
    ),
    ("unimplemented!", "implement it or return a typed Error"),
    ("todo!", "implement it or return a typed Error"),
];

/// See the [module docs](self).
pub struct NoPanicLib;

impl Lint for NoPanicLib {
    fn name(&self) -> &'static str {
        "no-panic-lib"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Library {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if file.in_test(i + 1) {
                continue;
            }
            for (needle, hint) in NEEDLES {
                if find_token(&line.code, needle).is_some() {
                    out.push(Diagnostic {
                        rel: file.rel.clone(),
                        line: i + 1,
                        lint: self.name(),
                        msg: format!("`{needle}` can abort mid-operation — {hint}"),
                    });
                    break;
                }
            }
        }
    }
}
