//! **forbid-unsafe** — the workspace is 100% safe Rust, and stays so.
//!
//! No crate needs `unsafe` today: parallelism is scoped threads over
//! disjoint slices, I/O is buffered streams, and the bitsets are plain
//! `u64` words. Locking that in at the crate root (`#![forbid(...)]`
//! cannot be overridden by an inner `allow`) means a future
//! "optimization" must argue its case in a PR that visibly relaxes the
//! attribute, not slip a raw pointer into a hot loop. The token scan
//! covers every file (tests and tools included); the attribute
//! requirement applies to library crate roots.

use crate::lexer::find_token;
use crate::lints::{Diagnostic, Lint};
use crate::source::SourceFile;

/// See the [module docs](self).
pub struct ForbidUnsafe;

impl Lint for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_crate_root {
            let has_attr = file
                .lines
                .iter()
                .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
            if !has_attr {
                out.push(Diagnostic {
                    rel: file.rel.clone(),
                    line: 1,
                    lint: self.name(),
                    msg: "library crate root is missing `#![forbid(unsafe_code)]`".into(),
                });
            }
        }
        for (i, line) in file.lines.iter().enumerate() {
            // `unsafe_code` (the attribute argument) does not match the
            // bare `unsafe` token thanks to the identifier-boundary rule.
            if find_token(&line.code, "unsafe").is_some() {
                out.push(Diagnostic {
                    rel: file.rel.clone(),
                    line: i + 1,
                    lint: self.name(),
                    msg: "`unsafe` token — this workspace is 100% safe Rust".into(),
                });
            }
        }
    }
}
