//! **atomics-ordering-audit** — `Ordering::Relaxed` and
//! `Ordering::SeqCst` need a written justification.
//!
//! The partition engine's band counter and the observers' progress
//! counters are correct with `Relaxed` only because of arguments that
//! live outside the type system (values are self-contained, or a later
//! synchronization point orders them). When such an argument is missing
//! the reader cannot tell a deliberate choice from a guess — and
//! `SeqCst` is just as suspect in the other direction: it usually means
//! "I didn't think about it". The audit requires a comment on the same
//! line or within the three lines above each use. `Acquire`/`Release`
//! pairs encode their intent in the type of access and are not audited.

use crate::lexer::find_token;
use crate::lints::{Diagnostic, Lint};
use crate::source::{FileKind, SourceFile};

/// How many lines above the use a justification comment may sit.
const LOOKBACK: usize = 3;

/// See the [module docs](self).
pub struct AtomicsOrderingAudit;

impl Lint for AtomicsOrderingAudit {
    fn name(&self) -> &'static str {
        "atomics-ordering-audit"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Library {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if file.in_test(i + 1) {
                continue;
            }
            for ordering in ["Ordering::Relaxed", "Ordering::SeqCst"] {
                if find_token(&line.code, ordering).is_none() {
                    continue;
                }
                let justified = !line.comment.trim().is_empty()
                    || file.lines[i.saturating_sub(LOOKBACK)..i]
                        .iter()
                        .any(|l| !l.comment.trim().is_empty());
                if !justified {
                    out.push(Diagnostic {
                        rel: file.rel.clone(),
                        line: i + 1,
                        lint: self.name(),
                        msg: format!(
                            "`{ordering}` without a justification comment on this line or \
                             the {LOOKBACK} lines above — say why this ordering is sufficient"
                        ),
                    });
                }
            }
        }
    }
}
