//! The lint framework: diagnostics, the [`Lint`] trait, the registry of
//! passes, and allow-directive filtering.
//!
//! Each pass walks a [`SourceFile`] and reports [`Diagnostic`]s. The
//! driver then filters out findings covered by an inline
//! `// xtask:allow(<lint>) <reason>` directive (same line, or the next
//! code line for a whole-line comment) and reports directive hygiene
//! problems of its own: a missing reason, an unknown lint name, or a
//! directive that suppresses nothing.

mod atomic_write;
mod atomics_ordering;
mod forbid_unsafe;
mod missing_docs;
mod no_panic;
mod vfs_only_io;

use std::fmt;

use crate::source::SourceFile;

/// One finding, printed as `file:line: [lint-name] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub rel: String,
    /// 1-based line number.
    pub line: usize,
    /// Name of the lint that fired.
    pub lint: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.lint, self.msg
        )
    }
}

/// A single analysis pass over one source file.
pub trait Lint {
    /// The lint's kebab-case name, used in diagnostics and
    /// `xtask:allow(...)` directives.
    fn name(&self) -> &'static str;
    /// Reports findings for `file` into `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Name of the pseudo-lint reporting allow-directive hygiene problems.
pub const ALLOW_DIRECTIVE: &str = "allow-directive";

/// All registered passes, in reporting order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(vfs_only_io::VfsOnlyIo),
        Box::new(no_panic::NoPanicLib),
        Box::new(atomics_ordering::AtomicsOrderingAudit),
        Box::new(forbid_unsafe::ForbidUnsafe),
        Box::new(missing_docs::MissingDocsParity),
        Box::new(atomic_write::AtomicWriteDiscipline),
    ]
}

/// Runs every pass over `file`, applies its allow directives, and
/// appends the surviving diagnostics (plus directive hygiene findings)
/// to `out`.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let lints = all_lints();
    let mut raw = Vec::new();
    for lint in &lints {
        lint.check(file, &mut raw);
    }

    let known: Vec<&'static str> = lints.iter().map(|l| l.name()).collect();
    let mut used = vec![false; file.allows.len()];
    raw.retain(|d| {
        let mut suppressed = false;
        for (i, a) in file.allows.iter().enumerate() {
            if a.lint == d.lint && !a.reason.is_empty() && (a.line == d.line || a.target == d.line)
            {
                used[i] = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    out.append(&mut raw);

    for (i, a) in file.allows.iter().enumerate() {
        if !known.contains(&a.lint.as_str()) {
            out.push(Diagnostic {
                rel: file.rel.clone(),
                line: a.line,
                lint: ALLOW_DIRECTIVE,
                msg: format!(
                    "unknown lint `{}` in xtask:allow (known: {})",
                    a.lint,
                    known.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            out.push(Diagnostic {
                rel: file.rel.clone(),
                line: a.line,
                lint: ALLOW_DIRECTIVE,
                msg: format!(
                    "xtask:allow({}) requires a justification after the closing parenthesis",
                    a.lint
                ),
            });
        } else if !used[i] {
            out.push(Diagnostic {
                rel: file.rel.clone(),
                line: a.line,
                lint: ALLOW_DIRECTIVE,
                msg: format!(
                    "xtask:allow({}) suppresses nothing on line {} — remove the stale directive",
                    a.lint, a.target
                ),
            });
        }
    }
}
