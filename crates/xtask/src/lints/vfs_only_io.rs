//! **vfs-only-io** — library code must not touch the filesystem behind
//! the `persist::vfs::Vfs` layer's back.
//!
//! The crash-safety guarantee of the snapshot store (docs/DURABILITY.md)
//! is proved by fault-injection sweeps over a `Vfs`: every kill point of
//! every store operation is exercised because every store byte flows
//! through that one interface. A direct `std::fs` call in library code
//! is invisible to the sweep — it reintroduces exactly the class of
//! untested crash window the store was built to eliminate. Binaries,
//! benches, tools, and tests read real files legitimately and are out of
//! scope, as is `bigraph/src/vfs.rs` itself (it *is* the I/O layer; the
//! `persist/vfs.rs` shim that re-exports it inherits the exemption).

use crate::lexer::find_token;
use crate::lints::{Diagnostic, Lint};
use crate::source::{FileKind, SourceFile};

/// Tokens that reach the real filesystem directly.
const NEEDLES: &[&str] = &["std::fs", "File::", "OpenOptions"];

/// See the [module docs](self).
pub struct VfsOnlyIo;

impl Lint for VfsOnlyIo {
    fn name(&self) -> &'static str {
        "vfs-only-io"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Library
            || file.rel.ends_with("persist/vfs.rs")
            || file.rel.ends_with("bigraph/src/vfs.rs")
        {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if file.in_test(i + 1) {
                continue;
            }
            for needle in NEEDLES {
                if find_token(&line.code, needle).is_some() {
                    out.push(Diagnostic {
                        rel: file.rel.clone(),
                        line: i + 1,
                        lint: self.name(),
                        msg: format!(
                            "`{needle}` in library code bypasses persist::vfs::Vfs — \
                             route I/O through a Vfs so crash-injection sweeps cover it \
                             (see docs/DURABILITY.md)"
                        ),
                    });
                    break; // one diagnostic per line is enough
                }
            }
        }
    }
}
