//! **atomic-write-discipline** — `persist/` commits files through
//! `write_bytes_atomic*`, nowhere else.
//!
//! The store's crash model (docs/DURABILITY.md) has exactly two
//! sanctioned durable-write paths: the atomic whole-file commit
//! (temp → fsync → rename → dir-fsync, implemented once in
//! `write_bytes_atomic*`) and the append-only journal (length-prefixed,
//! checksummed, fsynced before acknowledgement). A hand-rolled
//! write-then-rename elsewhere in `persist/` is a commit protocol that
//! the kill-point sweeps do not know about — PR 7 deleted one such
//! hand-rolled tmp+rename from the CLI for exactly this reason.
//!
//! Concretely: inside `persist/` (minus `vfs.rs`, which implements the
//! primitives), any `rename(` outside a `write_bytes_atomic*` function
//! is flagged, and so is a `write_all(` in a function that also
//! syncs or renames — i.e. a function running its own commit sequence
//! rather than serializing into a caller-supplied writer. The journal
//! append carries a standing `xtask:allow` documenting why it is safe.

use crate::lexer::find_token;
use crate::lints::{Diagnostic, Lint};
use crate::source::{FileKind, SourceFile};

/// See the [module docs](self).
pub struct AtomicWriteDiscipline;

impl Lint for AtomicWriteDiscipline {
    fn name(&self) -> &'static str {
        "atomic-write-discipline"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Library
            || !file.rel.contains("persist/")
            || file.rel.ends_with("persist/vfs.rs")
        {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            let lineno = i + 1;
            if file.in_test(lineno) {
                continue;
            }
            let in_sanctioned = file
                .enclosing_fn(lineno)
                .is_some_and(|f| f.name.starts_with("write_bytes_atomic"));
            if in_sanctioned {
                continue;
            }
            if find_token(&line.code, "rename(").is_some() {
                out.push(Diagnostic {
                    rel: file.rel.clone(),
                    line: lineno,
                    lint: self.name(),
                    msg: "`rename(` outside write_bytes_atomic* — commits in persist/ \
                          must go through the one audited atomic-commit helper"
                        .into(),
                });
                continue;
            }
            if find_token(&line.code, "write_all(").is_some() {
                // Only flag when the enclosing function runs its own
                // commit sequence (sync/rename nearby); pure serializers
                // into a caller's writer are fine.
                let commits = file.enclosing_fn(lineno).is_some_and(|f| {
                    file.lines[f.start - 1..f.end].iter().any(|l| {
                        find_token(&l.code, "sync_data(").is_some()
                            || find_token(&l.code, "sync_dir(").is_some()
                            || find_token(&l.code, "rename(").is_some()
                    })
                });
                if commits {
                    out.push(Diagnostic {
                        rel: file.rel.clone(),
                        line: lineno,
                        lint: self.name(),
                        msg: "`write_all(` in a function that also syncs/renames — this is \
                              a hand-rolled commit; use write_bytes_atomic* or justify the \
                              append protocol with xtask:allow"
                            .into(),
                    });
                }
            }
        }
    }
}
