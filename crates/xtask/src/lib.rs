//! In-repo static analysis for the bitruss workspace — tidy-style
//! invariant lints, run as `cargo run -p xtask -- analyze`.
//!
//! The workspace's two headline guarantees — bit-identical parallel
//! peeling and crash-safe persistence — rest on source-level conventions
//! no compiler pass checks: all store I/O flows through
//! `persist::vfs::Vfs`, library code returns `Error` instead of
//! panicking, every `Relaxed`/`SeqCst` atomic carries a written
//! argument, and `persist/` commits through one audited helper. This
//! crate machine-checks those conventions on every push, the way
//! rust-lang/rust's `tidy` pass guards its own invariants.
//!
//! The suite is deliberately dependency-free: a small comment/string-
//! aware lexer ([`lexer`]), a per-file source model ([`source`]), and a
//! set of passes ([`lints`]) that print `file:line: [lint-name] message`
//! and exit nonzero on any finding. Findings are suppressed inline with
//! `// xtask:allow(<lint>) <reason>` — the reason is mandatory, and a
//! stale directive that suppresses nothing is itself a finding.
//!
//! See `docs/LINTS.md` for each lint's rationale and how to add a pass.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod source;

use std::io;
use std::path::{Path, PathBuf};

pub use lints::{check_file, Diagnostic};
pub use source::SourceFile;

/// Directory names never descended into during the workspace walk.
/// `fixtures` holds deliberate violations for the lint engine's own
/// tests; `vendor` is third-party shim code outside our conventions.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "fixtures"];

/// Lints a single file's `text` as if it lived at workspace-relative
/// `rel`, returning the surviving diagnostics. This is the entry point
/// the fixture tests use.
pub fn analyze_source(rel: &str, text: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel, text);
    let mut out = Vec::new();
    check_file(&file, &mut out);
    out
}

/// Walks every `.rs` file under `root` (skipping `.git`, `target`,
/// `vendor`, and `fixtures` directories) and
/// returns all diagnostics, sorted by file then line.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or file reads.
pub fn analyze_tree(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = SourceFile::parse(&rel, &text);
        check_file(&file, &mut out);
    }
    out.sort_by(|a, b| (&a.rel, a.line).cmp(&(&b.rel, b.line)));
    Ok(out)
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root, resolved from this crate's own manifest
/// directory (`crates/xtask` → two levels up), so `cargo run -p xtask`
/// works from any working directory.
pub fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}
