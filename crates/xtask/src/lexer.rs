//! A small comment/string-aware Rust lexer.
//!
//! The lint passes must never fire on text inside a string literal or a
//! comment (`"call unwrap()"` in a test-name string, `unsafe` in prose),
//! and conversely the allow/justification machinery must only read real
//! comments. This lexer splits every source line into exactly those two
//! views:
//!
//! * **code** — the source with comments removed and the *contents* of
//!   string/char literals blanked (the delimiting quotes remain, so
//!   `File::open("x")` lexes to `File::open("")` and token searches
//!   still see the call).
//! * **comment** — the concatenated text of every comment on the line
//!   (line, block, and doc comments alike), without the delimiters.
//!
//! It is not a full Rust lexer — no token tree, no keywords — but it
//! handles the constructs that matter for line classification: nested
//! block comments, raw strings with arbitrary hash fences, byte/raw
//! identifiers, char literals vs. lifetimes, and escapes.

/// One source line split into its code and comment views.
#[derive(Debug, Default, Clone)]
pub struct LexedLine {
    /// Code with literal contents blanked and comments removed.
    pub code: String,
    /// Concatenated comment text (line + block + doc) on this line.
    pub comment: String,
}

/// Lexer state carried across lines.
enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    Str,
    /// Raw string terminated by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Splits `src` into per-line code/comment views (see module docs).
pub fn lex(src: &str) -> Vec<LexedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = vec![LexedLine::default()];
    let mut state = State::Code;
    let mut i = 0;

    // Appends to the current line's code/comment view.
    macro_rules! cur {
        () => {
            lines.last_mut().expect("lines starts non-empty")
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(LexedLine::default());
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur!().code.push('"');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw string `r"`/`r#"`/`br#"` or byte string
                    // prefix. `r#ident` (raw identifier) must fall through
                    // to plain code.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (j > i + 1 || c == 'r') && chars.get(j) == Some(&'"');
                    if is_raw {
                        cur!().code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        cur!().code.push('"');
                        state = State::Str;
                        i += 2;
                    } else {
                        cur!().code.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_ident {
                    // Char literal or lifetime. `'x'` / `'\n'` are
                    // literals; `'a` (no closing quote) is a lifetime.
                    // The prev_ident guard keeps `Foo::<'a>` working when
                    // written without spaces after an identifier.
                    if next == Some('\\') {
                        // Escaped char literal: scan to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        cur!().code.push_str("''");
                        i = (j + 1).min(chars.len());
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        cur!().code.push_str("''");
                        i += 3;
                    } else {
                        cur!().code.push('\'');
                        i += 1;
                    }
                } else {
                    cur!().code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur!().comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur!().comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (contents are blanked)
                } else if c == '"' {
                    cur!().code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur!().code.push('"');
                        state = State::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    lines
}

/// `true` for characters that can continue a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `needle` in `code` as a token. When the needle starts (ends)
/// with an identifier character, the character before (after) the match
/// must not be one — so `assert!` does not match inside `debug_assert!`
/// and `unsafe` does not match inside `unsafe_name`. Returns the byte
/// offset of the first match.
pub fn find_token(code: &str, needle: &str) -> Option<usize> {
    let first_is_ident = needle.chars().next().is_some_and(is_ident_char);
    let last_is_ident = needle.chars().next_back().is_some_and(is_ident_char);
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let ok_before =
            !first_is_ident || !code[..at].chars().next_back().is_some_and(is_ident_char);
        let ok_after = !last_is_ident
            || !code[at + needle.len()..]
                .chars()
                .next()
                .is_some_and(is_ident_char);
        if ok_before && ok_after {
            return Some(at);
        }
        from = at + needle.len().max(1);
    }
    None
}

/// All token occurrences of `needle` in `code` (see [`find_token`]).
pub fn token_positions(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_token(&code[from..], needle) {
        out.push(from + pos);
        from += pos + needle.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked_comments_removed() {
        let lines = lex("let x = \"unwrap()\"; // call unwrap() here\nunsafe_name();");
        assert_eq!(lines[0].code, "let x = \"\"; ");
        assert_eq!(lines[0].comment, " call unwrap() here");
        assert_eq!(lines[1].code, "unsafe_name();");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let c = code_of("let s = r#\"has \"quotes\" and unwrap()\"#; f();");
        assert_eq!(c[0], "let s = \"\"; f();");
        let c = code_of("let s = br##\"x\"# y\"##;");
        assert_eq!(c[0], "let s = \"\";");
    }

    #[test]
    fn raw_identifiers_are_code() {
        let c = code_of("let r#fn = 1;");
        assert_eq!(c[0], "let r#fn = 1;");
    }

    #[test]
    fn nested_block_comments() {
        let lines = lex("a /* one /* two */ still */ b");
        assert_eq!(lines[0].code, "a  b");
        // Nested delimiters are consumed, not echoed into the text.
        assert_eq!(lines[0].comment, " one  two  still ");
    }

    #[test]
    fn multi_line_strings_and_comments() {
        let c = code_of("let s = \"line one\nline two with unsafe\";\nnext();");
        assert_eq!(c[0], "let s = \"");
        assert_eq!(c[1], "\";");
        assert_eq!(c[2], "next();");
        let c = code_of("/* spans\nlines */ code();");
        assert_eq!(c[0], "");
        assert_eq!(c[1], " code();");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let c = code_of("let c = '\\n'; let q = '\"'; fn f<'a>(x: &'a str) {}");
        assert_eq!(c[0], "let c = ''; let q = ''; fn f<'a>(x: &'a str) {}");
    }

    #[test]
    fn escaped_quote_in_string() {
        let c = code_of("let s = \"a\\\"b\"; g();");
        assert_eq!(c[0], "let s = \"\"; g();");
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(find_token("debug_assert!(x)", "assert!").is_none());
        assert!(find_token("assert!(x)", "assert!").is_some());
        assert!(find_token("x.unwrap();", ".unwrap()").is_some());
        assert!(find_token("x.unwrap_or(1);", ".unwrap()").is_none());
        assert!(find_token("self.my_unsafe_flag", "unsafe").is_none());
        assert!(find_token("unsafe { }", "unsafe").is_some());
    }
}
