//! The affected-region machinery: bound (insertions) or settle exactly
//! (deletions) which edges a batch of updates can re-assign.
//!
//! Everything here builds on two properties of the bitruss fixpoint
//! (`H_k` = maximal subgraph in which every edge lies in ≥ k
//! butterflies of the subgraph):
//!
//! 1. **Locality** — φ is the *greatest* fixpoint of the per-edge
//!    h-operator `H(x)(f) = max{k : f has ≥ k butterflies whose other
//!    members all have x ≥ k}`. Any pointwise upper bound of φ,
//!    iterated downward through `x ← min(x, H(x))` until quiescent,
//!    converges to φ exactly: the invariant `x ≥ φ` is preserved
//!    (`H` is monotone and `H(φ) ≥ φ` by the fixpoint), and a quiescent
//!    `x ≤ H(x)` makes every level set `{x ≥ k}` a valid k-subgraph,
//!    hence `x ≤ φ`.
//! 2. **Monotonicity** — deleting edges can only lower φ, inserting
//!    can only raise it.
//!
//! # Deletions ([`settle_deletions`])
//!
//! After a deletion the *old* φ is a pointwise upper bound, so the
//! downward h-iteration applies directly: seed the worklist with the
//! butterfly mates of the deleted edges (the only edges whose
//! h-value the edit touches), recompute h-values locally, and
//! propagate each drop to the butterfly mates it can affect (those
//! with x above the new value). The result is **exact** — the affected
//! "region" of the deletion phase is precisely the set of edges whose
//! φ really changed, at a cost proportional to that set's butterfly
//! neighbourhood.
//!
//! # Insertions ([`insertion_region`])
//!
//! For insertions the old φ is a *lower* bound, so a sound
//! over-approximation of the risers is computed instead (the localized
//! re-peel then assigns exact values). If `φ(f)` rises, `f` joins
//! `H_k` for `k = φ_old(f) + 1`, which requires `k` butterflies whose
//! other members all *could* be in the new `H_k` — old φ at least `k`,
//! or (for fellow joiners) new support at least `k`. The member
//! potential `cap(h) = max(φ_old(h), sup_new(h))` soundly bounds
//! `φ_new(h)`, so the **rise ceiling** of an edge — the largest `k`
//! with at least `k` butterflies whose other members all have
//! `cap ≥ k`, an h-index over butterfly levels — soundly bounds its
//! new φ. Moreover, the set of new `H_k` members is
//! butterfly-connected to an inserted edge (a joiner chunk with no
//! inserted edge would contradict the old fixpoint's maximality), so
//! the region is the BFS closure from the inserted edges where each
//! step must fit a common level: above both endpoints' old φ, at or
//! below both rise ceilings and the connecting butterfly's member
//! caps.

use bigraph::{BipartiteGraph, EdgeId};
use butterfly::{count_through_edge_metered, for_each_butterfly_through_metered};

/// Sentinel in cached per-edge arrays for "not computed yet".
const UNKNOWN: u64 = u64::MAX;

/// In `phi` arrays handled by [`settle_deletions`], a [`u64::MAX`]
/// entry marks an edge that is *absent* for this phase (e.g. an edge
/// inserted by the same batch, handled by the insertion phase): its
/// butterflies are skipped entirely.
pub const MASKED: u64 = u64::MAX;

/// The h-operator of the module docs, evaluated against a drop check:
/// returns `None` as soon as `f` provably keeps ≥ `phi[f]` butterflies
/// whose other (unmasked) members reach `phi[f]` — the common case,
/// detected with an early-exit scan — and otherwise the h-value capped
/// at `phi[f]` (all the caller needs: values are clamped downward).
///
/// One single pass, bucket-counted with levels clamped to `phi[f]`:
/// no level vector is materialized, so hub edges with millions of
/// butterflies cost one enumeration, not an allocation plus a sort.
fn h_drop(g: &BipartiteGraph, phi: &[u64], f: EdgeId, visits: &mut u64) -> Option<u64> {
    let k = phi[f.index()];
    debug_assert!(k > 0 && k != MASKED);
    let mut counts = vec![0u64; k as usize + 1];
    let (completed, work) = for_each_butterfly_through_metered(g, f, |a, b, c| {
        if phi[a.index()] != MASKED && phi[b.index()] != MASKED && phi[c.index()] != MASKED {
            let level = phi[a.index()]
                .min(phi[b.index()])
                .min(phi[c.index()])
                .min(k);
            counts[level as usize] += 1;
        }
        counts[k as usize] < k
    });
    *visits += work;
    let enough = !completed;
    if enough {
        return None;
    }
    // Fell short of k: the largest j ≤ k with ≥ j butterflies at
    // level ≥ j, off the clamped histogram's suffix sums.
    let mut suffix = 0u64;
    let mut j = k;
    loop {
        suffix += counts[j as usize];
        if suffix >= j || j == 0 {
            return Some(j);
        }
        j -= 1;
    }
}

/// Settles `phi` to the exact decomposition of `g` by the downward
/// local h-iteration, given that `phi` is a pointwise **upper bound**
/// of the true decomposition that is already correct outside the
/// butterfly neighbourhood of `seeds` (see the module docs). Entries
/// equal to [`MASKED`] are treated as absent edges (their butterflies
/// do not exist for this phase) and are never touched. For the deletion
/// phase of a batch: `g` is the fully rebuilt graph, `phi` the migrated
/// old values with inserted edges masked, and `seeds` the surviving
/// butterfly mates of the deleted edges.
///
/// Returns the edges whose φ changed (no particular order), or `None`
/// when the `budget` — a cap on butterfly visits across all
/// h-evaluations — ran out first. On `None` the `phi` array is
/// partially settled and must be discarded; the caller falls back to a
/// full recompute (see [`crate::apply_batch`]). The budget is what
/// keeps butterfly-bomb graphs honest: enumerating a single hub edge's
/// butterflies can cost more than the BE-Index-driven full
/// decomposition there, so bailing out *is* the fast path.
pub fn settle_deletions(
    g: &BipartiteGraph,
    phi: &mut [u64],
    seeds: &[EdgeId],
    budget: u64,
) -> Option<Vec<EdgeId>> {
    let m = g.num_edges() as usize;
    debug_assert_eq!(phi.len(), m);
    let mut queued = vec![false; m];
    let mut changed = vec![false; m];
    let mut work: Vec<EdgeId> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if phi[s.index()] > 0 && phi[s.index()] != MASKED && !queued[s.index()] {
            queued[s.index()] = true;
            work.push(s);
        }
    }
    let mut out = Vec::new();
    let mut visits = 0u64;
    while let Some(f) = work.pop() {
        if visits > budget {
            return None;
        }
        queued[f.index()] = false;
        let Some(hv) = h_drop(g, phi, f, &mut visits) else {
            continue;
        };
        if hv >= phi[f.index()] {
            continue;
        }
        phi[f.index()] = hv;
        if !changed[f.index()] {
            changed[f.index()] = true;
            out.push(f);
        }
        // Only mates still above the new value can be disturbed by the
        // drop: their h-counts at levels ≤ hv are unaffected.
        let (_, scan) = for_each_butterfly_through_metered(g, f, |a, b, c| {
            for mate in [a, b, c] {
                let p = phi[mate.index()];
                if p != MASKED && p > hv && !queued[mate.index()] {
                    queued[mate.index()] = true;
                    work.push(mate);
                }
            }
            true
        });
        visits += scan;
    }
    Some(out)
}

/// When an edge has more butterflies than this, its rise ceiling falls
/// back to the (sound, looser) support bound instead of the exact
/// h-index — hub edges would otherwise pay for millions of quads.
const CEILING_QUAD_CAP: usize = 4096;

/// Edges whose φ may *increase* after `inserted` edges appeared in
/// `g_new` (the post-insertion graph). `phi_base[e]` is the maintained φ
/// of every surviving edge and [`u64::MAX`] for the inserted ones (whose
/// φ is unknown and computed by the re-peel regardless). Returns a mask
/// over `g_new`'s edges that **includes** the inserted edges.
///
/// The search carries a work budget: when the marked region or the
/// butterfly work grows to full-graph scale — where a localized re-peel
/// has no advantage left over a full one — it returns `None`, and the
/// caller falls back to a full recompute, so a pathological batch
/// degrades to recompute cost instead of super-linear analysis cost.
pub fn insertion_region(
    g_new: &BipartiteGraph,
    phi_base: &[u64],
    inserted: &[EdgeId],
) -> Option<Vec<bool>> {
    let m = g_new.num_edges() as usize;
    debug_assert_eq!(phi_base.len(), m);
    let region_budget = (m / 8).max(1024);
    // Tighter than the settle budget: a busted analysis is pure loss on
    // top of the fallback recompute, so it must stay a small fraction
    // of a decomposition.
    let mut quad_budget = (32 * m).max(1 << 12) as i64;
    let mut marked = 0usize;
    let mut sup_cache = vec![UNKNOWN; m];
    let mut ceiling = vec![UNKNOWN; m];
    let mut region = vec![false; m];
    let mut work: Vec<EdgeId> = Vec::with_capacity(inserted.len());
    for &i in inserted {
        region[i.index()] = true;
        work.push(i);
    }
    while let Some(e) = work.pop() {
        if marked > region_budget || quad_budget < 0 {
            return None;
        }
        let e_phi = match phi_base[e.index()] {
            u64::MAX => 0, // inserted sources carry no old φ
            p => p,
        };
        let e_ceil = rise_ceiling(
            g_new,
            phi_base,
            e,
            &mut ceiling,
            &mut sup_cache,
            &mut quad_budget,
        );
        // Collect first: the neighbour checks below need the caches
        // mutably, which the enumeration closure would also hold.
        let mut quads: Vec<[EdgeId; 3]> = Vec::new();
        let (_, scan) = for_each_butterfly_through_metered(g_new, e, |a, b, c| {
            quads.push([a, b, c]);
            true
        });
        quad_budget -= scan as i64;
        for quad in quads {
            if quad_budget < 0 {
                return None;
            }
            for f in quad {
                let base = phi_base[f.index()];
                if base == u64::MAX || region[f.index()] {
                    continue; // inserted edges are sources already
                }
                // A common level k must fit the whole step: above both
                // endpoints' old φ, at or below both rise ceilings and
                // the remaining members' caps.
                let mut window_hi = e_ceil.min(rise_ceiling(
                    g_new,
                    phi_base,
                    f,
                    &mut ceiling,
                    &mut sup_cache,
                    &mut quad_budget,
                ));
                for h in quad {
                    if h != f {
                        window_hi = window_hi.min(cap_of(
                            g_new,
                            phi_base,
                            h,
                            &mut sup_cache,
                            &mut quad_budget,
                        ));
                    }
                }
                let window_lo = base.max(e_phi);
                if window_hi > window_lo {
                    region[f.index()] = true;
                    marked += 1;
                    work.push(f);
                }
            }
        }
    }
    Some(region)
}

/// A sound upper bound on an edge's post-insertion φ from its own
/// support: an inserted edge can reach at most its support, a survivor
/// at least keeps its old φ and can rise at most to its new support.
/// A cache miss charges the scan to `budget` (degree-bound plus the
/// counted butterflies — roughly the wedge work the count performed).
fn cap_of(
    g_new: &BipartiteGraph,
    phi_base: &[u64],
    h: EdgeId,
    sup_cache: &mut [u64],
    budget: &mut i64,
) -> u64 {
    if sup_cache[h.index()] == UNKNOWN {
        let (count, work) = count_through_edge_metered(g_new, h);
        sup_cache[h.index()] = count;
        *budget -= work as i64;
    }
    match phi_base[h.index()] {
        u64::MAX => sup_cache[h.index()],
        p => p.max(sup_cache[h.index()]),
    }
}

/// The rise ceiling (see the module docs): the h-index over the levels
/// of `f`'s butterflies, where a butterfly's level is the minimum
/// [`cap_of`] of its other members. Lazily cached per edge.
fn rise_ceiling(
    g_new: &BipartiteGraph,
    phi_base: &[u64],
    f: EdgeId,
    ceiling: &mut [u64],
    sup_cache: &mut [u64],
    budget: &mut i64,
) -> u64 {
    if ceiling[f.index()] == UNKNOWN {
        let mut quads: Vec<[EdgeId; 3]> = Vec::new();
        let (complete, work) = for_each_butterfly_through_metered(g_new, f, |a, b, c| {
            quads.push([a, b, c]);
            quads.len() < CEILING_QUAD_CAP
        });
        *budget -= work as i64;
        ceiling[f.index()] = if !complete {
            // Hub edge: the exact h-index would price in millions of
            // member caps; its own support bound is sound and cheap.
            cap_of(g_new, phi_base, f, sup_cache, budget)
        } else {
            let mut levels: Vec<u64> = quads
                .into_iter()
                .map(|quad| {
                    quad.into_iter()
                        .map(|h| cap_of(g_new, phi_base, h, sup_cache, budget))
                        .min()
                        .unwrap_or(0)
                })
                .collect();
            levels.sort_unstable_by(|a, b| b.cmp(a));
            let mut rc = 0u64;
            for (i, &l) in levels.iter().enumerate() {
                let k = (i + 1) as u64;
                if l >= k {
                    rc = k;
                } else {
                    break;
                }
            }
            rc
        };
    }
    ceiling[f.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{edge_subgraph, GraphBuilder};
    use bitruss_core::{decompose, Algorithm};
    use butterfly::for_each_butterfly_through;

    /// Deleting each edge of a fixture in turn, the h-iteration settles
    /// the migrated φ to exactly the fresh decomposition.
    #[test]
    fn settle_matches_recompute_per_deletion() {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        for victim in g.edges() {
            // Mates of the victim, in old ids.
            let mut mates = Vec::new();
            for_each_butterfly_through(&g, victim, |a, b, c| mates.extend([a, b, c]));
            let rest = edge_subgraph(&g, |e| e != victim);
            // Migrate φ and the seed list to the subgraph's ids.
            let mut old_to_new = vec![u32::MAX; g.num_edges() as usize];
            for (new, &old) in rest.new_to_old.iter().enumerate() {
                old_to_new[old.index()] = new as u32;
            }
            let mut phi: Vec<u64> = rest.new_to_old.iter().map(|&e| d.phi[e.index()]).collect();
            let seeds: Vec<EdgeId> = mates
                .iter()
                .map(|&e| EdgeId(old_to_new[e.index()]))
                .collect();
            let changed = settle_deletions(&rest.graph, &mut phi, &seeds, u64::MAX).unwrap();
            let (fresh, _) = decompose(&rest.graph, Algorithm::BuPlusPlus);
            assert_eq!(phi, fresh.phi, "victim {victim}");
            // Every reported change is a real change.
            for &e in &changed {
                assert_ne!(phi[e.index()], d.phi[rest.new_to_old[e.index()].index()]);
            }
        }
    }

    /// The h-iteration touches nothing when the seeds lost no
    /// butterflies.
    #[test]
    fn settle_is_a_noop_on_a_correct_decomposition() {
        let g = datagen::random::uniform(10, 10, 45, 3);
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let mut phi = d.phi.clone();
        let all: Vec<EdgeId> = g.edges().collect();
        let changed = settle_deletions(&g, &mut phi, &all, u64::MAX).unwrap();
        assert!(changed.is_empty());
        assert_eq!(phi, d.phi);
    }

    /// Inserting the last edge of a square affects the three edges that
    /// complete the new butterfly, but not a far-away square.
    #[test]
    fn insertion_region_covers_new_butterflies_only() {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (5, 5),
                (5, 6),
                (6, 5),
                (6, 6),
            ])
            .build()
            .unwrap();
        // Pretend (1,1) was just inserted: base φ of the others is their
        // pre-insert value 0, the inserted edge is MAX.
        let inserted = g.edge_between(g.upper(1), g.lower(1)).unwrap();
        let mut phi_base = vec![0u64; g.num_edges() as usize];
        // The far square's φ is 1 in both generations.
        for e in g.edges() {
            if g.layer_index(g.edge(e).0) >= 5 {
                phi_base[e.index()] = 1;
            }
        }
        phi_base[inserted.index()] = u64::MAX;
        let region = insertion_region(&g, &phi_base, &[inserted]).unwrap();
        for e in g.edges() {
            let near = g.layer_index(g.edge(e).0) < 2;
            assert_eq!(region[e.index()], near, "{e}");
        }
    }

    /// The rise ceiling caps the region: an edge already at the level
    /// its neighbourhood supports cannot rise further and blocks the
    /// cascade.
    #[test]
    fn insertion_ceiling_blocks_saturated_edges() {
        // K_{2,2} square whose members sit at φ = 1 with exactly one
        // butterfly each: inserting a pendant edge near it creates no
        // new butterflies, so nothing can rise.
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)])
            .build()
            .unwrap();
        let inserted = g.edge_between(g.upper(2), g.lower(2)).unwrap();
        let mut phi_base = vec![1u64; g.num_edges() as usize];
        phi_base[inserted.index()] = u64::MAX;
        let region = insertion_region(&g, &phi_base, &[inserted]).unwrap();
        let marked: Vec<usize> = (0..region.len()).filter(|&i| region[i]).collect();
        assert_eq!(marked, vec![inserted.index()]);
    }

    /// An insertion with no butterflies affects only itself.
    #[test]
    fn butterfly_free_insertion_is_self_contained() {
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 2)])
            .build()
            .unwrap();
        let inserted = g.edge_between(g.upper(1), g.lower(2)).unwrap();
        let mut phi_base = vec![0u64; g.num_edges() as usize];
        phi_base[inserted.index()] = u64::MAX;
        let region = insertion_region(&g, &phi_base, &[inserted]).unwrap();
        let marked: Vec<usize> = (0..region.len()).filter(|&i| region[i]).collect();
        assert_eq!(marked, vec![inserted.index()]);
    }
}
