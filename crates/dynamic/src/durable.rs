//! Durable sessions: a [`BitrussEngine`] whose mutations survive
//! crashes.
//!
//! [`DurableEngine`] couples an in-memory engine with a
//! [`SnapshotStore`]: every [`apply`](DurableEngine::apply) first
//! journals the batch (fsynced — the *acknowledgement*), then applies
//! it in memory, so a crash at any point loses at most the batch whose
//! `apply` never returned `Ok`. [`DurableEngine::open`] recovers the
//! last consistent state: it loads the newest valid generation snapshot
//! and replays the journal tail through the incremental maintenance
//! machinery — bit-identical to having applied those batches live.
//!
//! ```no_run
//! use bigraph::GraphBuilder;
//! use bitruss_core::BitrussEngine;
//! use bitruss_dynamic::{DurableEngine, UpdateBatch};
//! use std::path::Path;
//!
//! let g = GraphBuilder::new().add_edges([(0, 0), (0, 1), (1, 0), (1, 1)])
//!     .build().unwrap();
//! let engine = BitrussEngine::builder().build(g).unwrap();
//! let mut durable = DurableEngine::create(Path::new("/data/store"), engine).unwrap();
//! let mut batch = UpdateBatch::new();
//! batch.insert(2, 0).insert(2, 1);
//! durable.apply(&batch).unwrap(); // journaled + fsynced before Ok
//! durable.checkpoint().unwrap();  // fold the journal into a snapshot
//! drop(durable);
//!
//! // After a crash (or a clean exit), recover exactly that state:
//! let durable = DurableEngine::open(Path::new("/data/store")).unwrap();
//! assert_eq!(durable.engine().graph().num_edges(), 6);
//! ```

use std::path::Path;
use std::sync::Arc;

use bigraph::Result;
use bitruss_core::persist::store::{JournalBatch, JournalOp, RecoveryReport, SnapshotStore};
use bitruss_core::persist::vfs::{StdVfs, Vfs};
use bitruss_core::BitrussEngine;

use crate::apply::MaintenanceStats;
use crate::batch::{UpdateBatch, UpdateOp};
use crate::DynamicEngineExt;

/// Converts an in-memory batch to its journaled form.
pub fn to_journal(batch: &UpdateBatch) -> JournalBatch {
    JournalBatch {
        ops: batch
            .ops()
            .iter()
            .map(|op| match *op {
                UpdateOp::Insert { upper, lower } => JournalOp {
                    insert: true,
                    upper,
                    lower,
                },
                UpdateOp::Delete { upper, lower } => JournalOp {
                    insert: false,
                    upper,
                    lower,
                },
            })
            .collect(),
    }
}

/// Converts a journaled batch back to its in-memory form (for replay).
pub fn to_update(batch: &JournalBatch) -> UpdateBatch {
    let mut out = UpdateBatch::new();
    for op in &batch.ops {
        if op.insert {
            out.insert(op.upper, op.lower);
        } else {
            out.delete(op.upper, op.lower);
        }
    }
    out
}

/// A [`BitrussEngine`] bound to a crash-safe [`SnapshotStore`]: applied
/// batches are journaled durably *before* they mutate the in-memory
/// state. See the [module docs](self).
#[derive(Debug)]
pub struct DurableEngine {
    engine: BitrussEngine<'static>,
    store: SnapshotStore,
    recovery: Option<RecoveryReport>,
}

impl DurableEngine {
    /// Initialises a new store at `dir` holding `engine`'s current
    /// state as generation 0 (the hierarchy index is built first so
    /// recovery never recomputes it).
    ///
    /// # Errors
    ///
    /// [`bigraph::Error::Invariant`] when `dir` already holds a store;
    /// [`bigraph::Error::Io`] on write failure.
    pub fn create(dir: &Path, engine: BitrussEngine<'static>) -> Result<Self> {
        Self::create_with(Arc::new(StdVfs), dir, engine)
    }

    /// [`DurableEngine::create`] over an explicit [`Vfs`] (tests inject
    /// a fault-simulating filesystem here).
    ///
    /// # Errors
    ///
    /// As for [`DurableEngine::create`].
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        engine: BitrussEngine<'static>,
    ) -> Result<Self> {
        let hierarchy = engine.hierarchy()?;
        let store = SnapshotStore::create(
            vfs,
            dir,
            engine.graph(),
            engine.decomposition(),
            Some(hierarchy),
        )?;
        Ok(Self {
            engine,
            store,
            recovery: None,
        })
    }

    /// Recovers the store at `dir` to its last consistent state: loads
    /// the newest valid generation snapshot, replays the journal tail
    /// through incremental maintenance, and — when recovery had to fall
    /// back to the previous generation — immediately checkpoints the
    /// replayed state as a fresh generation so writes can resume.
    ///
    /// # Errors
    ///
    /// [`bigraph::Error::Io`] / [`bigraph::Error::Corrupt`] when no
    /// consistent state can be reconstructed.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with(Arc::new(StdVfs), dir)
    }

    /// [`DurableEngine::open`] over an explicit [`Vfs`].
    ///
    /// # Errors
    ///
    /// As for [`DurableEngine::open`].
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: &Path) -> Result<Self> {
        let (store, recovered) = SnapshotStore::recover(vfs, dir)?;
        let mut engine = BitrussEngine::from_snapshot_parts(recovered.snapshot)?;
        for batch in &recovered.tail {
            engine.apply(&to_update(batch))?;
        }
        let mut this = Self {
            engine,
            store,
            recovery: Some(recovered.report),
        };
        if this.store.needs_checkpoint() {
            this.checkpoint()?;
        }
        Ok(this)
    }

    /// Durably applies `batch`: validates it against the current graph,
    /// journals it (fsynced — the point of acknowledgement), then
    /// applies it in memory. When this returns `Ok`, the batch survives
    /// any subsequent crash; when it returns `Err`, the batch was not
    /// applied and (for validation and journaling failures) not
    /// journaled.
    ///
    /// Batches that net out to no change are validated but neither
    /// journaled nor applied.
    ///
    /// # Errors
    ///
    /// [`bigraph::Error::Invariant`] for invalid batches;
    /// [`bigraph::Error::Io`] when journaling fails (state unchanged).
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<MaintenanceStats> {
        // Validate *before* journaling: a batch the engine would reject
        // must never enter the journal, or replay would fail.
        let resolved = batch.resolve(self.engine.graph())?;
        if resolved.deletes.is_empty() && resolved.inserts.is_empty() {
            return self.engine.apply(batch); // no-op fast path
        }
        self.store.append(&to_journal(batch))?;
        self.engine.apply(batch)
    }

    /// Folds the journal into a fresh committed generation snapshot
    /// (graph, φ, hierarchy) and starts an empty journal. Returns the
    /// new generation number. Call periodically to bound recovery
    /// replay time.
    ///
    /// # Errors
    ///
    /// [`bigraph::Error::Io`] on write failure (the store stays usable
    /// on the previous generation).
    pub fn checkpoint(&mut self) -> Result<u64> {
        let hierarchy = self.engine.hierarchy()?;
        self.store.checkpoint(
            self.engine.graph(),
            self.engine.decomposition(),
            Some(hierarchy),
        )
    }

    /// The in-memory session (all queries go through it).
    pub fn engine(&self) -> &BitrussEngine<'static> {
        &self.engine
    }

    /// The committed generation the journal is writing after.
    pub fn generation(&self) -> u64 {
        self.store.generation()
    }

    /// Batches journaled since the last checkpoint.
    pub fn journal_batches(&self) -> u64 {
        self.store.journal_batches()
    }

    /// How the last [`DurableEngine::open`] reached its state (`None`
    /// for stores made by [`DurableEngine::create`]).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Consumes the durable wrapper, keeping the in-memory session.
    pub fn into_engine(self) -> BitrussEngine<'static> {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;
    use bitruss_core::persist::vfs::MemVfs;
    use std::path::PathBuf;

    fn fig1_engine() -> BitrussEngine<'static> {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap();
        BitrussEngine::builder().build(g).unwrap()
    }

    fn dir() -> PathBuf {
        PathBuf::from("/store")
    }

    #[test]
    fn journal_round_trip_conversion() {
        let mut b = UpdateBatch::new();
        b.insert(1, 2).delete(3, 4).insert(5, 6);
        assert_eq!(to_update(&to_journal(&b)).ops(), b.ops());
    }

    #[test]
    fn crash_after_apply_recovers_the_acknowledged_state() {
        let vfs = MemVfs::new();
        let mut durable =
            DurableEngine::create_with(Arc::new(vfs.clone()), &dir(), fig1_engine()).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(3, 0).delete(2, 2);
        durable.apply(&batch).unwrap();
        let expected_phi = durable.engine().phi().to_vec();
        let expected_edges = durable.engine().graph().edge_pairs();
        drop(durable);
        vfs.crash();

        let recovered = DurableEngine::open_with(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(recovered.engine().phi(), &expected_phi[..]);
        assert_eq!(recovered.engine().graph().edge_pairs(), expected_edges);
        let report = recovered.recovery().unwrap();
        assert_eq!(report.replayed_batches, 1);
        assert!(!report.fell_back);
    }

    #[test]
    fn checkpoint_then_crash_skips_replay() {
        let vfs = MemVfs::new();
        let mut durable =
            DurableEngine::create_with(Arc::new(vfs.clone()), &dir(), fig1_engine()).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(4, 0).insert(4, 1);
        durable.apply(&batch).unwrap();
        assert_eq!(durable.checkpoint().unwrap(), 1);
        assert_eq!(durable.journal_batches(), 0);
        let expected_phi = durable.engine().phi().to_vec();
        drop(durable);
        vfs.crash();

        let recovered = DurableEngine::open_with(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(recovered.generation(), 1);
        assert_eq!(recovered.recovery().unwrap().replayed_batches, 0);
        assert_eq!(recovered.engine().phi(), &expected_phi[..]);
        // The recovered session answers queries from the adopted
        // hierarchy without a rebuild.
        assert_eq!(
            recovered.engine().max_bitruss(),
            BitrussEngine::builder()
                .build(recovered.engine().graph().clone())
                .unwrap()
                .max_bitruss()
        );
    }

    #[test]
    fn invalid_batches_never_reach_the_journal() {
        let vfs = MemVfs::new();
        let mut durable =
            DurableEngine::create_with(Arc::new(vfs.clone()), &dir(), fig1_engine()).unwrap();
        let mut bad = UpdateBatch::new();
        bad.delete(100, 100); // no such edge
        assert!(durable.apply(&bad).is_err());
        assert_eq!(durable.journal_batches(), 0);
        // A no-op batch is validated but not journaled either.
        let mut noop = UpdateBatch::new();
        noop.delete(0, 0).insert(0, 0);
        durable.apply(&noop).unwrap();
        assert_eq!(durable.journal_batches(), 0);
    }
}
