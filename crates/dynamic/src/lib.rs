//! **`bitruss_dynamic`** — incremental bitruss maintenance for edge
//! insertions and deletions.
//!
//! The rest of the suite treats a graph as frozen: any edge change
//! invalidates φ, the hierarchy and every snapshot, forcing a full
//! decomposition. This crate maintains a decomposition *under* batches
//! of updates instead, in three steps per batch:
//!
//! 1. **Deletion settling** ([`analyze::settle_deletions`]) — φ only
//!    decreases under deletions, so the carried-over values are an
//!    upper bound and the local h-index fixpoint iteration (φ is the
//!    greatest fixpoint of "f has ≥ k butterflies whose other members
//!    reach k") settles them *exactly*, touching only edges that
//!    really change plus their butterfly mates.
//! 2. **Insertion region analysis** ([`analyze::insertion_region`]) —
//!    φ only increases under insertions; a sound over-approximation of
//!    the risers is the butterfly-BFS closure of the inserted edges
//!    bounded by per-edge *rise ceilings* (an h-index over butterfly
//!    member potentials).
//! 3. **Localized re-peel** ([`repeel`]) — the BiT-BU machinery runs on
//!    the insertion region only; unaffected boundary edges are replayed
//!    at their *frozen* (unchanged) φ levels, which reproduces the
//!    global peel's support dynamics bit-for-bit. The recomputed values
//!    splice into the carried-over ones on the rebuilt graph
//!    ([`apply_batch`]).
//!
//! The maintained φ is **bit-identical** to a from-scratch
//! decomposition of the updated graph (property-tested across random
//! graphs and batches), at a cost proportional to the affected region
//! rather than the graph.
//!
//! # Quickstart
//!
//! ```
//! use bigraph::GraphBuilder;
//! use bitruss_core::BitrussEngine;
//! use bitruss_dynamic::{DynamicEngineExt, UpdateBatch};
//!
//! let g = GraphBuilder::new()
//!     .add_edges([(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)])
//!     .build()
//!     .unwrap();
//! let mut session = BitrussEngine::builder().build(g).unwrap();
//! assert_eq!(session.max_bitruss(), 1);
//!
//! // Close the rectangle (2, 1): the 2-bitruss appears without a
//! // from-scratch decomposition.
//! let mut batch = UpdateBatch::new();
//! batch.insert(2, 1).delete(0, 0);
//! let stats = session.apply(&batch).unwrap();
//! assert_eq!(session.max_bitruss(), 1);
//! assert!(stats.reuse_ratio() <= 1.0);
//! assert_eq!(session.graph().num_edges(), 5);
//! ```
//!
//! Batches parse from the CLI's `+u v` / `-u v` stream format with
//! [`UpdateBatch::from_reader`], and a mutated session saves straight
//! back to a snapshot (`session.save_snapshot(..)`) — the hierarchy
//! index is invalidated and rebuilt lazily.
//!
//! # Deprecation path
//!
//! Recompute-on-change — rebuilding an engine from scratch after every
//! edit — remains available but is now the fallback, not the model:
//! prefer [`DynamicEngineExt::apply`] and fall back to a fresh
//! [`BitrussEngine`] only when a batch rewrites most of the graph (the
//! [`MaintenanceStats::reuse_ratio`] of past batches is the signal).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyze;
pub mod apply;
pub mod batch;
pub mod durable;
/// The localized frozen-boundary re-peel now lives in `bitruss-core`
/// (the two-phase partition engine's stitch pass shares it); re-exported
/// here so `bitruss_dynamic::repeel::repeel_region` keeps resolving.
pub use bitruss_core::repeel;

pub use analyze::{insertion_region, settle_deletions};
pub use apply::{apply, apply_batch, AppliedBatch, MaintenanceStats};
pub use batch::{parse_update_line, ResolvedBatch, UpdateBatch, UpdateOp};
pub use durable::DurableEngine;
pub use repeel::{repeel_region, RepeelStats};

use bigraph::Result;
use bitruss_core::BitrussEngine;

/// Extends [`BitrussEngine`] sessions with incremental maintenance.
///
/// Lives here (not in `bitruss-core`) so the maintenance machinery
/// stays an optional layer; the facade crate re-exports it, so
/// `use bitruss::dynamic::DynamicEngineExt` is all a server needs.
pub trait DynamicEngineExt {
    /// Applies an update batch to the session in place: the graph and φ
    /// advance to the next generation, the cached hierarchy index is
    /// invalidated (rebuilt lazily by the next query or snapshot), and
    /// [`BitrussEngine::metrics`] reports the maintenance run
    /// (affected/reused edge counts included). The session's observer
    /// receives phase events and can cancel, in which case the session
    /// is left unchanged.
    ///
    /// # Errors
    ///
    /// [`bigraph::Error::Invariant`] for invalid batches,
    /// [`bigraph::Error::Cancelled`] on cancellation.
    fn apply(&mut self, batch: &UpdateBatch) -> Result<MaintenanceStats>;
}

impl DynamicEngineExt for BitrussEngine<'_> {
    fn apply(&mut self, batch: &UpdateBatch) -> Result<MaintenanceStats> {
        // A batch that nets out changes nothing: validate it, but keep
        // the session (graph, φ, cached hierarchy) untouched instead of
        // cloning and invalidating for a no-op.
        let resolved = batch.resolve(self.graph())?;
        if resolved.deletes.is_empty() && resolved.inserts.is_empty() {
            let edges = self.graph().num_edges() as u64;
            return Ok(MaintenanceStats {
                edges_before: edges,
                edges_after: edges,
                reused_edges: edges,
                ..MaintenanceStats::default()
            });
        }
        let observer = self.observer();
        let applied = apply_batch(self.graph(), self.decomposition(), batch, &*observer)?;
        self.replace_state(
            applied.graph,
            applied.decomposition,
            Some(applied.stats.as_metrics()),
        )?;
        Ok(applied.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;
    use bitruss_core::{Algorithm, BitrussEngine};

    fn fig1() -> bigraph::BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    /// Incremental φ equals a from-scratch decomposition, for a mixed
    /// batch on the paper's Figure 1 graph.
    #[test]
    fn mixed_batch_matches_recompute() {
        let g = fig1();
        let mut session = BitrussEngine::builder().build(g).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(3, 0).delete(2, 2).insert(4, 1);
        let stats = session.apply(&batch).unwrap();
        assert_eq!(stats.inserted_edges, 2);
        assert_eq!(stats.deleted_edges, 1);

        let fresh = BitrussEngine::builder()
            .algorithm(Algorithm::BuPlusPlus)
            .build(session.graph().clone())
            .unwrap();
        assert_eq!(session.phi(), fresh.phi());
        assert_eq!(session.level_sizes(), fresh.level_sizes());
        // Metrics now describe the maintenance run.
        let m = session.metrics().unwrap();
        assert_eq!(m.affected_edges, stats.affected_edges);
        assert!(session.algorithm().is_none());
    }

    /// Applying a batch and its inverse restores the original φ.
    #[test]
    fn inverse_batches_round_trip() {
        let g = fig1();
        let mut session = BitrussEngine::builder().build(g.clone()).unwrap();
        let before = session.phi().to_vec();
        let mut batch = UpdateBatch::new();
        batch.delete(0, 0).insert(3, 3);
        session.apply(&batch).unwrap();
        let mut inverse = UpdateBatch::new();
        inverse.insert(0, 0).delete(3, 3);
        session.apply(&inverse).unwrap();
        assert_eq!(session.graph().edge_pairs(), g.edge_pairs());
        assert_eq!(session.phi(), &before[..]);
    }

    /// Empty and net-zero batches are no-ops with full reuse — and they
    /// keep the session's cached hierarchy and metrics intact.
    #[test]
    fn noop_batches_leave_the_session_untouched() {
        let mut session = BitrussEngine::builder().build(fig1()).unwrap();
        session.hierarchy().unwrap();
        let before = session.phi().to_vec();

        let stats = session.apply(&UpdateBatch::new()).unwrap();
        assert_eq!(session.phi(), &before[..]);
        assert_eq!(stats.affected_edges, 0);
        assert_eq!(stats.reuse_ratio(), 1.0);

        // Delete + re-insert nets out: same guarantees.
        let mut net_zero = UpdateBatch::new();
        net_zero.delete(0, 0).insert(0, 0);
        let stats = session.apply(&net_zero).unwrap();
        assert_eq!(session.phi(), &before[..]);
        assert_eq!(stats.reuse_ratio(), 1.0);
        // The session still reports its original decomposition run (a
        // no-op apply must not wipe algorithm/metrics or the cached
        // hierarchy).
        assert!(session.algorithm().is_some());
        assert_eq!(session.k_bitruss_count(2).unwrap(), 6);
    }

    /// A cancelled apply surfaces `Error::Cancelled` and leaves the
    /// session unchanged.
    #[test]
    fn cancellation_leaves_the_session_intact() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        struct Cancel(AtomicBool);
        impl bigraph::EngineObserver for Cancel {
            fn is_cancelled(&self) -> bool {
                self.0.load(Ordering::Relaxed)
            }
        }
        let observer = Arc::new(Cancel(AtomicBool::new(false)));
        let mut session = BitrussEngine::builder()
            .progress(observer.clone())
            .build(fig1())
            .unwrap();
        let before = session.phi().to_vec();
        observer.0.store(true, Ordering::Relaxed);
        let mut batch = UpdateBatch::new();
        batch.delete(0, 0);
        let err = session.apply(&batch).unwrap_err();
        assert!(matches!(err, bigraph::Error::Cancelled), "{err}");
        assert_eq!(session.phi(), &before[..]);
        assert_eq!(session.graph().num_edges(), 11);
    }
}
