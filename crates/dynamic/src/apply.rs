//! Batch application: deletions phase, insertions phase, splice.

use std::time::{Duration, Instant};

use bigraph::edits::{apply_edits, DELETED};
use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase};
use bigraph::{BipartiteGraph, EdgeId, Error, Result};
use bitruss_core::{Decomposition, Metrics};

use crate::analyze::{insertion_region, settle_deletions};
use crate::batch::UpdateBatch;
use crate::repeel::repeel_region;

/// Counters and timings of one [`apply_batch`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceStats {
    /// Edge count before the batch.
    pub edges_before: u64,
    /// Edge count after the batch.
    pub edges_after: u64,
    /// Net deleted edges.
    pub deleted_edges: u64,
    /// Net inserted edges.
    pub inserted_edges: u64,
    /// Distinct edges re-peeled across both phases (inserted edges
    /// included; an edge touched by both phases counts once).
    pub affected_edges: u64,
    /// Frozen boundary edges replayed around the regions.
    pub boundary_edges: u64,
    /// Final-generation edges whose φ was carried over without
    /// re-peeling.
    pub reused_edges: u64,
    /// Surviving edges whose φ actually changed (inserted edges not
    /// counted).
    pub phi_changed: u64,
    /// `true` when the incremental path hit its work budget and the
    /// batch was settled by a full recompute instead (still exact;
    /// nothing is reused). Expect this on butterfly-dense graphs where
    /// a batch genuinely reshapes a large fraction of φ.
    pub fell_back: bool,
    /// Butterfly-support updates performed by the localized re-peels.
    pub support_updates: u64,
    /// Wall time of the affected-region analyses.
    pub analyze_time: Duration,
    /// Wall time of the localized re-peels (index builds included).
    pub repeel_time: Duration,
    /// Wall time of the CSR rebuilds and φ migrations.
    pub rebuild_time: Duration,
}

impl MaintenanceStats {
    /// Fraction of the final graph's edges whose φ was reused
    /// (`reused / edges_after`; 1.0 for an empty graph).
    pub fn reuse_ratio(&self) -> f64 {
        if self.edges_after == 0 {
            1.0
        } else {
            self.reused_edges as f64 / self.edges_after as f64
        }
    }

    /// Total maintenance wall time.
    pub fn total_time(&self) -> Duration {
        self.analyze_time + self.repeel_time + self.rebuild_time
    }

    /// Renders the stats as [`Metrics`] for engine sessions: analysis
    /// time is reported as the counting phase, rebuilds as the index
    /// phase, re-peels as peeling; affected/reused counts land in the
    /// dedicated maintenance fields.
    pub fn as_metrics(&self) -> Metrics {
        Metrics {
            support_updates: self.support_updates,
            counting_time: self.analyze_time,
            index_time: self.rebuild_time,
            peeling_time: self.repeel_time,
            iterations: 1,
            affected_edges: self.affected_edges,
            reused_edges: self.reused_edges,
            ..Metrics::default()
        }
    }
}

/// The result of applying a batch: the next-generation graph, its
/// maintained decomposition, and the run's counters.
#[derive(Debug, Clone)]
pub struct AppliedBatch {
    /// The updated graph.
    pub graph: BipartiteGraph,
    /// The maintained decomposition, bit-identical to a from-scratch
    /// decomposition of [`AppliedBatch::graph`].
    pub decomposition: Decomposition,
    /// Counters and timings.
    pub stats: MaintenanceStats,
}

/// Applies an update batch to `(g, d)` incrementally: resolves the
/// batch, bounds the affected regions, re-peels only those, and splices
/// the results into the carried-over φ values. The returned φ is
/// **bit-identical** to a from-scratch decomposition of the updated
/// graph.
///
/// Deletions are applied first (φ only decreases, cascading through the
/// pre-deletion butterflies), then insertions (φ only increases,
/// cascading from the new edges) — see [`crate::analyze`] for the
/// soundness argument of each bound.
///
/// # Errors
///
/// [`Error::Invariant`] when `d` does not belong to `g` or the batch is
/// invalid against it ([`UpdateBatch::resolve`]);
/// [`Error::Cancelled`] when `observer` cancels mid-run.
pub fn apply_batch(
    g: &BipartiteGraph,
    d: &Decomposition,
    batch: &UpdateBatch,
    observer: &dyn EngineObserver,
) -> Result<AppliedBatch> {
    if d.phi.len() != g.num_edges() as usize {
        return Err(Error::Invariant(format!(
            "{} φ values for {} edges",
            d.phi.len(),
            g.num_edges()
        )));
    }
    let resolved = batch.resolve(g)?;
    let mut stats = MaintenanceStats {
        edges_before: g.num_edges() as u64,
        deleted_edges: resolved.deletes.len() as u64,
        inserted_edges: resolved.inserts.len() as u64,
        ..MaintenanceStats::default()
    };
    if resolved.deletes.is_empty() && resolved.inserts.is_empty() {
        stats.edges_after = stats.edges_before;
        stats.reused_edges = stats.edges_after;
        return Ok(AppliedBatch {
            graph: g.clone(),
            decomposition: d.clone(),
            stats,
        });
    }

    // ---- One rebuild, two phases -------------------------------------
    // The next-generation CSR is built once; the deletion phase then
    // runs on it with the inserted edges *masked out* (their butterflies
    // do not exist yet for that phase), and the insertion phase unmasks
    // them on the same graph.
    // Work budget for the incremental machinery, in adjacency scan
    // units: roughly what a counting pass costs. Past it, incremental
    // work exceeds what a from-scratch run would pay, so falling back
    // IS the fast path.
    let budget = 128 * (g.num_edges() as u64 + resolved.inserts.len() as u64).max(1 << 12);

    let t0 = Instant::now();
    // The deletion edit only removes butterflies through deleted edges,
    // so only their surviving mates can see their h-value drop — and a
    // lost butterfly only counted towards a mate's own level if the
    // mate attains the minimum φ in it (the butterfly lived in
    // H_{φ(mate)}). Everyone else keeps their level support untouched.
    let mut seed_mask = vec![false; g.num_edges() as usize];
    let mut seed_scan = 0u64;
    for &del in &resolved.deletes {
        let phi_d = d.phi[del.index()];
        let (_, work) = butterfly::for_each_butterfly_through_metered(g, del, |a, b, c| {
            let min_phi = phi_d
                .min(d.phi[a.index()])
                .min(d.phi[b.index()])
                .min(d.phi[c.index()]);
            for mate in [a, b, c] {
                if d.phi[mate.index()] == min_phi {
                    seed_mask[mate.index()] = true;
                }
            }
            true
        });
        seed_scan += work;
        if seed_scan > budget {
            // A deleted hub's butterfly neighbourhood alone rivals a
            // counting pass; recompute instead of scanning on.
            stats.fell_back = true;
            break;
        }
    }
    stats.analyze_time += t0.elapsed();

    let t1 = Instant::now();
    let edited = apply_edits(g, &resolved.deletes, &resolved.inserts)?;
    // Inserted edges carry the "unknown"/masked sentinel until the
    // insertion phase re-peels them.
    let mut phi_new = edited.migrate(&d.phi, u64::MAX);
    let g_new = edited.graph;
    let seeds: Vec<EdgeId> = seed_mask
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s)
        .filter_map(|(old, _)| match edited.old_to_new[old] {
            DELETED => None,
            new => Some(EdgeId(new)),
        })
        .collect();
    stats.rebuild_time += t1.elapsed();

    // Distinct re-peeled edges across both phases (an edge both dropped
    // by the settle and marked by the insertion region counts once).
    let mut affected = vec![false; g_new.num_edges() as usize];

    // ---- Phase 1: deletions ------------------------------------------
    // Deletions only lower φ, so the migrated old values are a pointwise
    // upper bound and the local h-iteration settles them *exactly* — the
    // affected set of this phase is precisely the set of real changes.
    if !resolved.deletes.is_empty() && !stats.fell_back {
        let t2 = Instant::now();
        observer.on_phase_start(Phase::AffectedRegion, seeds.len() as u64);
        let settled = settle_deletions(&g_new, &mut phi_new, &seeds, budget);
        observer.on_phase_end(Phase::AffectedRegion);
        checkpoint(observer)?;
        stats.repeel_time += t2.elapsed();
        match settled {
            Some(changed) => {
                for e in changed {
                    affected[e.index()] = true;
                }
            }
            None => stats.fell_back = true,
        }
    }

    // ---- Phase 2: insertions -----------------------------------------
    let phi_new = if resolved.inserts.is_empty() || stats.fell_back {
        phi_new
    } else {
        let t1 = Instant::now();
        observer.on_phase_start(Phase::AffectedRegion, edited.inserted.len() as u64);
        let region = insertion_region(&g_new, &phi_new, &edited.inserted);
        observer.on_phase_end(Phase::AffectedRegion);
        stats.analyze_time += t1.elapsed();
        checkpoint(observer)?;

        match region {
            None => {
                stats.fell_back = true;
                phi_new
            }
            Some(region) => {
                let t2 = Instant::now();
                let (phi_new, peel) = repeel_region(&g_new, &phi_new, &region, observer)?;
                stats.repeel_time += t2.elapsed();
                for (e, &in_region) in region.iter().enumerate() {
                    if in_region {
                        affected[e] = true;
                    }
                }
                stats.boundary_edges += peel.boundary_edges;
                stats.support_updates += peel.support_updates;
                phi_new
            }
        }
    };

    // ---- Budget fallback ---------------------------------------------
    // The batch reshaped more of the graph than localized machinery can
    // beat: let the BE-Index do what it is best at and decompose the new
    // graph from scratch (exact either way; `fell_back` records it).
    let phi_new = if stats.fell_back {
        let t = Instant::now();
        let (dec, metrics) = bitruss_core::decompose_observed(
            &g_new,
            bitruss_core::Algorithm::BuPlusPlus,
            observer,
        )?;
        stats.repeel_time += t.elapsed();
        stats.affected_edges = g_new.num_edges() as u64;
        stats.support_updates += metrics.support_updates;
        dec.phi
    } else {
        stats.affected_edges = affected.iter().filter(|&&a| a).count() as u64;
        phi_new
    };
    debug_assert_eq!(phi_new.len(), g_new.num_edges() as usize);
    debug_assert!(
        !phi_new.contains(&u64::MAX),
        "an inserted edge escaped the insertion region"
    );

    stats.edges_after = g_new.num_edges() as u64;
    // Reused = final edges whose φ was carried over untouched by either
    // phase (the insertion region already contains the inserted edges).
    stats.reused_edges = stats.edges_after.saturating_sub(stats.affected_edges);
    stats.phi_changed = {
        // Count surviving edges whose φ differs generation-to-generation:
        // replay the id mappings by pair identity (cheap: both edge lists
        // are sorted by pair, walk them in lockstep).
        let mut changed = 0u64;
        let (mut i, mut j) = (0u32, 0u32);
        let (m_old, m_new) = (g.num_edges(), g_new.num_edges());
        let pair = |gr: &BipartiteGraph, e: u32| {
            let (u, v) = gr.edge(EdgeId(e));
            (gr.layer_index(u), gr.layer_index(v))
        };
        while i < m_old && j < m_new {
            match pair(g, i).cmp(&pair(&g_new, j)) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if d.phi[i as usize] != phi_new[j as usize] {
                        changed += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        changed
    };

    Ok(AppliedBatch {
        graph: g_new,
        decomposition: Decomposition::new(phi_new),
        stats,
    })
}

/// Convenience wrapper over [`apply_batch`] without an observer.
pub fn apply(g: &BipartiteGraph, d: &Decomposition, batch: &UpdateBatch) -> Result<AppliedBatch> {
    apply_batch(g, d, batch, &NoopObserver)
}
