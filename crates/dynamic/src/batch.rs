//! Update batches: ordered streams of edge insertions and deletions,
//! their text format, and their resolution against a concrete graph.
//!
//! # Text format
//!
//! One operation per line — `+u v` inserts the edge between upper-layer
//! vertex `u` and lower-layer vertex `v`, `-u v` deletes it. Whitespace
//! after the sign is optional, `%`/`#` comment lines and blank lines are
//! skipped, and malformed lines are rejected with their 1-based line
//! number (mirroring the edge-list and query parsers):
//!
//! ```text
//! % warm-up batch
//! +0 3
//! - 2 1
//! +4 4
//! ```

use std::fmt;
use std::io::BufRead;

use bigraph::{BipartiteGraph, EdgeId, Error, Result};

/// One edge update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert the edge `(upper, lower)` (layer-local indices).
    Insert {
        /// Layer-local upper vertex index.
        upper: u32,
        /// Layer-local lower vertex index.
        lower: u32,
    },
    /// Delete the edge `(upper, lower)` (layer-local indices).
    Delete {
        /// Layer-local upper vertex index.
        upper: u32,
        /// Layer-local lower vertex index.
        lower: u32,
    },
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            UpdateOp::Insert { upper, lower } => write!(f, "+{upper} {lower}"),
            UpdateOp::Delete { upper, lower } => write!(f, "-{upper} {lower}"),
        }
    }
}

/// An ordered batch of edge updates, applied atomically by
/// [`apply_batch`](crate::apply_batch).
///
/// Order matters for *validity*, not for the result: a pair may be
/// deleted and later re-inserted (or inserted and later deleted) within
/// one batch; [`UpdateBatch::resolve`] replays the ops in order against
/// the graph and reduces them to their net effect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

/// The net effect of a batch against a concrete graph: which existing
/// edges go, which new pairs come.
#[derive(Debug, Clone, Default)]
pub struct ResolvedBatch {
    /// Edge ids of the current graph to delete.
    pub deletes: Vec<EdgeId>,
    /// `(upper, lower)` pairs to insert (absent from the current graph).
    pub inserts: Vec<(u32, u32)>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insertion of the edge `(upper, lower)`.
    pub fn insert(&mut self, upper: u32, lower: u32) -> &mut Self {
        self.ops.push(UpdateOp::Insert { upper, lower });
        self
    }

    /// Appends a deletion of the edge `(upper, lower)`.
    pub fn delete(&mut self, upper: u32, lower: u32) -> &mut Self {
        self.ops.push(UpdateOp::Delete { upper, lower });
        self
    }

    /// Appends one parsed operation.
    pub fn push(&mut self, op: UpdateOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The operations, in arrival order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Reads a batch from the `+u v` / `-u v` stream format (see the
    /// [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] with the 1-based line number of the first
    /// malformed line, or [`Error::Io`] for reader failures.
    pub fn from_reader<R: BufRead>(reader: R) -> Result<UpdateBatch> {
        let mut batch = UpdateBatch::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            if let Some(op) = parse_update_line(&line, i + 1)? {
                batch.push(op);
            }
        }
        Ok(batch)
    }

    /// Replays the batch in order against `g`, validating every
    /// operation, and reduces it to its net effect.
    ///
    /// Each delete must address an edge present at that point of the
    /// replay (originally present or inserted earlier in the batch);
    /// each insert must address a pair absent at that point. Inserted
    /// pairs may lie beyond the current layer sizes (the graph grows).
    ///
    /// # Errors
    ///
    /// [`Error::Invariant`] naming the offending operation (1-based
    /// position) and pair.
    pub fn resolve(&self, g: &BipartiteGraph) -> Result<ResolvedBatch> {
        // Overlay over the graph: Some(true) = present, Some(false) =
        // absent, None = as in the graph.
        let mut overlay: std::collections::HashMap<(u32, u32), bool> =
            std::collections::HashMap::new();
        let in_graph = |u: u32, v: u32| {
            u < g.num_upper() && v < g.num_lower() && g.has_edge(g.upper(u), g.lower(v))
        };
        for (i, &op) in self.ops.iter().enumerate() {
            let (present, pair, want_present) = match op {
                UpdateOp::Insert { upper, lower } => {
                    let pair = (upper, lower);
                    let present = *overlay.get(&pair).unwrap_or(&in_graph(upper, lower));
                    (present, pair, false)
                }
                UpdateOp::Delete { upper, lower } => {
                    let pair = (upper, lower);
                    let present = *overlay.get(&pair).unwrap_or(&in_graph(upper, lower));
                    (present, pair, true)
                }
            };
            if present != want_present {
                let verb = if want_present { "delete" } else { "insert" };
                let state = if present {
                    "already present"
                } else {
                    "not present"
                };
                return Err(Error::Invariant(format!(
                    "op {}: cannot {verb} edge ({}, {}): {state}",
                    i + 1,
                    pair.0,
                    pair.1
                )));
            }
            overlay.insert(pair, !present);
        }
        // Net effect: only pairs whose final state differs from the
        // graph's survive the reduction.
        let mut resolved = ResolvedBatch::default();
        let mut pairs: Vec<(&(u32, u32), &bool)> = overlay.iter().collect();
        pairs.sort_unstable();
        for (&(u, v), &present) in pairs {
            if present == in_graph(u, v) {
                continue; // net no-op (deleted then re-inserted, or vice versa)
            }
            if present {
                resolved.inserts.push((u, v));
            } else {
                let e = g.edge_between(g.upper(u), g.lower(v)).ok_or_else(|| {
                    Error::Invariant(format!(
                        "edge ({u}, {v}) vanished between validation and resolution"
                    ))
                })?;
                resolved.deletes.push(e);
            }
        }
        Ok(resolved)
    }
}

impl fmt::Display for UpdateBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for op in &self.ops {
            writeln!(f, "{op}")?;
        }
        Ok(())
    }
}

/// Parses one line of the update stream: `Ok(None)` for blank/comment
/// lines, `Ok(Some(op))` for a well-formed update.
///
/// # Errors
///
/// [`Error::Parse`] carrying `line_no` for malformed lines.
pub fn parse_update_line(line: &str, line_no: usize) -> Result<Option<UpdateOp>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
        return Ok(None);
    }
    let err = |message: String| Error::Parse {
        line: line_no,
        message,
    };
    let (sign, rest) = line.split_at(1);
    let insert = match sign {
        "+" => true,
        "-" => false,
        other => {
            return Err(err(format!(
                "expected '+' or '-' before the vertex pair, found {other:?}"
            )))
        }
    };
    let mut it = rest.split_whitespace();
    let mut num = |what: &str| -> Result<u32> {
        let tok = it
            .next()
            .ok_or_else(|| err(format!("missing {what} index")))?;
        tok.parse::<u32>()
            .map_err(|_| err(format!("invalid {what} index {tok:?}")))
    };
    let upper = num("upper")?;
    let lower = num("lower")?;
    if let Some(extra) = it.next() {
        return Err(err(format!("unexpected trailing token {extra:?}")));
    }
    Ok(Some(if insert {
        UpdateOp::Insert { upper, lower }
    } else {
        UpdateOp::Delete { upper, lower }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    fn square() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 0), (1, 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn stream_round_trip() {
        let text = "% comment\n\n+0 3\n- 2 1\n#another\n+ 4 4\n";
        let batch = UpdateBatch::from_reader(text.as_bytes()).unwrap();
        assert_eq!(
            batch.ops(),
            &[
                UpdateOp::Insert { upper: 0, lower: 3 },
                UpdateOp::Delete { upper: 2, lower: 1 },
                UpdateOp::Insert { upper: 4, lower: 4 },
            ]
        );
        let rendered = batch.to_string();
        let again = UpdateBatch::from_reader(rendered.as_bytes()).unwrap();
        assert_eq!(again, batch);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        for (text, line, needle) in [
            ("+0 1\nx2 3\n", 2, "expected '+' or '-'"),
            ("+0\n", 1, "missing lower"),
            ("%c\n-1 b\n", 2, "invalid lower index"),
            ("+1 2 3\n", 1, "trailing token"),
        ] {
            let err = UpdateBatch::from_reader(text.as_bytes()).unwrap_err();
            match err {
                Error::Parse { line: l, message } => {
                    assert_eq!(l, line, "{text:?}");
                    assert!(message.contains(needle), "{message:?} vs {needle:?}");
                }
                other => panic!("expected parse error, got {other}"),
            }
        }
    }

    #[test]
    fn resolve_reduces_to_net_effect() {
        let g = square();
        let mut b = UpdateBatch::new();
        // Delete (0,0) and re-insert it: net no-op. Insert (2,0) then
        // delete it: net no-op. Delete (1,1): net delete. Insert (2,2):
        // net insert.
        b.delete(0, 0)
            .insert(0, 0)
            .insert(2, 0)
            .delete(2, 0)
            .delete(1, 1)
            .insert(2, 2);
        let r = b.resolve(&g).unwrap();
        assert_eq!(r.inserts, vec![(2, 2)]);
        assert_eq!(
            r.deletes,
            vec![g.edge_between(g.upper(1), g.lower(1)).unwrap()]
        );
    }

    #[test]
    fn invalid_ops_name_their_position() {
        let g = square();
        let mut b = UpdateBatch::new();
        b.insert(5, 5).insert(5, 5);
        let err = b.resolve(&g).unwrap_err();
        assert!(err.to_string().contains("op 2"), "{err}");
        assert!(err.to_string().contains("already present"), "{err}");

        let mut b = UpdateBatch::new();
        b.delete(3, 3);
        let err = b.resolve(&g).unwrap_err();
        assert!(err.to_string().contains("op 1"), "{err}");
        assert!(err.to_string().contains("not present"), "{err}");

        // Deleting an edge twice without re-inserting fails at op 2.
        let mut b = UpdateBatch::new();
        b.delete(0, 0).delete(0, 0);
        assert!(b.resolve(&g).is_err());
    }

    #[test]
    fn empty_batch_resolves_empty() {
        let g = square();
        let r = UpdateBatch::new().resolve(&g).unwrap();
        assert!(r.deletes.is_empty() && r.inserts.is_empty());
    }
}
