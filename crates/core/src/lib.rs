//! Bitruss decomposition for large-scale bipartite graphs.
//!
//! This crate implements every decomposition algorithm of the ICDE'20
//! paper *"Efficient Bitruss Decomposition for Large-scale Bipartite
//! Graphs"* (Wang, Lin, Qin, Zhang, Zhang):
//!
//! | Algorithm | Paper | Idea |
//! |-----------|-------|------|
//! | [`algo::bit_bs`]       | Alg. 1 | baseline: peel + combinatorial butterfly enumeration |
//! | [`algo::bit_bu`]       | Alg. 4 | peel through the BE-Index |
//! | [`algo::bit_bu_plus`]  | §V-B   | + batch edge processing |
//! | [`algo::bit_bu_pp`]    | Alg. 5 | + batch bloom processing |
//! | [`algo::bit_bu_pp_par`] | ext.  | BiT-BU++/P: parallel counting, index construction and batch peeling |
//! | [`partition::bit_bu_pp_2p`] | ext. | BiT-BU++2P: two-phase partition-parallel peeling (band decomposition) |
//! | [`algo::bit_pc`]       | Alg. 7 | progressive compression: hub edges first, in candidate subgraphs |
//!
//! All of them produce the same [`Decomposition`] — the bitruss number
//! `φ(e)` of every edge — and report [`Metrics`] (support updates, phase
//! times, index sizes) matching the quantities the paper's evaluation
//! plots.
//!
//! # Quickstart
//!
//! The headline API is the [`engine::BitrussEngine`] session, which owns
//! the full lifecycle decompose → hierarchy → query → snapshot:
//!
//! ```
//! use bigraph::GraphBuilder;
//! use bitruss_core::{Algorithm, BitrussEngine};
//!
//! // The author–paper network of the paper's Figure 1.
//! let g = GraphBuilder::new()
//!     .add_edges([
//!         (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
//!         (2, 2), (2, 3), (3, 1), (3, 2), (3, 4),
//!     ])
//!     .build()
//!     .unwrap();
//! let session = BitrussEngine::builder()
//!     .algorithm(Algorithm::BuPlusPlus)
//!     .build(g)
//!     .unwrap();
//! assert_eq!(session.max_bitruss(), 2);
//! // The 2-bitruss is the dense {u0,u1,u2} × {v0,v1} block.
//! assert_eq!(session.k_bitruss_edges(2).unwrap().len(), 6);
//! ```
//!
//! One-shot callers that only need φ can still use [`decompose`], a thin
//! wrapper over the same dispatch.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algo;
pub mod bucket_queue;
pub mod decomposition;
pub mod engine;
pub mod hierarchy;
pub mod kbitruss;
pub mod metrics;
pub(crate) mod ooc;
pub mod partition;
pub mod persist;
pub mod repeel;
pub mod tip;
pub mod verify;

#[allow(deprecated)]
pub use algo::{
    bit_bs, bit_bs_observed, bit_bu, bit_bu_hybrid, bit_bu_hybrid_observed, bit_bu_observed,
    bit_bu_opts, bit_bu_plus, bit_bu_plus_observed, bit_bu_plus_opts, bit_bu_pp,
    bit_bu_pp_observed, bit_bu_pp_opts, bit_bu_pp_par, bit_bu_pp_par_observed, bit_bu_pp_par_tuned,
    bit_pc, bit_pc_observed, bit_pc_opts, decompose, decompose_observed, decompose_pruned,
    decompose_with_histogram, kmax_bound, Algorithm, ParseAlgorithmError, PeelStrategy, Threads,
    DEFAULT_TAU,
};
pub use bitruss_storage::MemoryReport;
pub use bucket_queue::BucketQueue;
pub use decomposition::{Community, Decomposition};
pub use engine::{
    BitrussEngine, EngineBuilder, EngineObserver, HierarchyMode, NoopObserver, Phase, Query,
    QueryAnswer,
};
pub use hierarchy::BitrussHierarchy;
pub use kbitruss::k_bitruss;
pub use metrics::{Metrics, UpdateHistogram};
pub use partition::{
    bit_bu_pp_2p, bit_bu_pp_2p_observed, bit_bu_pp_2p_tuned, bit_bu_pp_2p_with_outcome,
    BandPartition, StitchLog, StitchMigration, DEFAULT_NUM_BANDS,
};
pub use persist::binary::{
    read_snapshot, read_snapshot_file, write_snapshot, write_snapshot_file, Snapshot,
    FORMAT_VERSION, MIN_FORMAT_VERSION,
};
pub use persist::store::{
    write_bytes_atomic, write_bytes_atomic_std, JournalBatch, JournalOp, RecoveredState,
    RecoveryReport, SnapshotStore, MANIFEST_NAME, STORE_FORMAT_VERSION,
};
pub use persist::vfs::{Fault, MemVfs, StdVfs, Vfs, VfsFile};
pub use persist::{read_decomposition, write_decomposition};
pub use repeel::{repeel_region, RepeelStats};
pub use tip::{tip_decomposition, TipLayer};
pub use verify::{k_bitruss_fixpoint, reference_decomposition, validate_decomposition};
