//! Crash-safe snapshot store: committed generations + a durable
//! write-ahead journal of update batches.
//!
//! A [`SnapshotStore`] owns a directory with this layout:
//!
//! ```text
//! MANIFEST        names the current committed generation n
//! gen-<n>.snap    binary snapshot of (graph, φ, hierarchy) at gen n
//! wal-<n>.log     journal of update batches applied *after* gen n
//! gen-<n-1>.snap  previous generation, kept for corruption fallback
//! wal-<n-1>.log   its journal (≡ everything between gen n-1 and gen n)
//! ```
//!
//! # Commit protocol
//!
//! Every whole-file write (snapshot, journal header, MANIFEST) goes
//! through [`write_bytes_atomic`]: unique temp name in the same
//! directory → write → fsync file → rename over the target → fsync the
//! directory. A reader therefore sees either the old file or the new
//! one, never a torn mix, and what it sees survives power loss.
//!
//! A [`checkpoint`](SnapshotStore::checkpoint) commits generation `n+1`
//! in the order *snapshot, empty journal, MANIFEST*. The MANIFEST
//! rename is the commit point: crash before it and recovery finds
//! generation `n` with its full journal (same state, replayed); crash
//! after and recovery finds generation `n+1` with an empty journal.
//! Either way, no acknowledged batch is lost.
//!
//! An [`append`](SnapshotStore::append) is acknowledged only after the
//! encoded record is written **and fsynced** to the current journal.
//! Records are length-prefixed, sequence-numbered, and FNV-checksummed;
//! [recovery](SnapshotStore::recover) replays the journal tail and
//! truncates at the first torn or corrupt record, so a crash mid-append
//! costs at most the unacknowledged batch.
//!
//! # Recovery
//!
//! [`SnapshotStore::recover`] reads the MANIFEST, loads `gen-<n>.snap`
//! (checksum + structural validation via [`read_snapshot`]) and scans
//! `wal-<n>.log`. When the newest snapshot itself fails validation, it
//! falls back to generation `n-1`: since gen `n` ≡ gen `n-1` plus every
//! record of `wal-<n-1>.log`, replaying the previous journal in full and
//! then the tail of `wal-<n>.log` reconstructs the same state. The
//! returned [`RecoveryReport`] says exactly what happened; the batches
//! in [`RecoveredState::tail`] must be replayed (the dynamic layer's
//! `DurableEngine` does this) before serving.
//!
//! All I/O goes through a [`Vfs`], so the whole protocol is tested
//! against deterministic crash/ENOSPC/torn-write injection on
//! [`MemVfs`](super::vfs::MemVfs) — see `tests/durability.rs`.

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bigraph::{BipartiteGraph, Error, Result};

use crate::decomposition::Decomposition;
use crate::hierarchy::BitrussHierarchy;
use crate::persist::binary::{fnv_update, read_snapshot, write_snapshot, Snapshot, FNV_OFFSET};
use crate::persist::vfs::{StdVfs, Vfs, VfsFile};
use crate::persist::{le_u32, le_u64};

/// Name of the manifest file naming the committed generation.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Magic bytes opening the MANIFEST.
const MANIFEST_MAGIC: [u8; 8] = *b"BTRSMAN\0";

/// Magic bytes opening every journal file.
const WAL_MAGIC: [u8; 8] = *b"BTRSWAL\0";

/// Store format version, covering MANIFEST and journal layouts (the
/// snapshot payload carries its own version).
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Bytes in a MANIFEST / journal header: magic(8) + version(4) +
/// generation(8) + FNV trailer(8).
const HEADER_LEN: u64 = 28;

fn fnv(bytes: &[u8]) -> u64 {
    fnv_update(FNV_OFFSET, bytes)
}

fn snap_name(generation: u64) -> String {
    format!("gen-{generation}.snap")
}

fn wal_name(generation: u64) -> String {
    format!("wal-{generation}.log")
}

// ---------------------------------------------------------------------
// Error context: persistence failures must name the offending file.

/// Wraps an [`std::io::Error`] so its message leads with `path`.
pub(crate) fn io_ctx(path: &Path, e: std::io::Error) -> Error {
    Error::Io(std::io::Error::new(
        e.kind(),
        format!("{}: {e}", path.display()),
    ))
}

/// Prefixes `path` onto I/O and corruption errors from a nested loader.
pub(crate) fn err_ctx(path: &Path, e: Error) -> Error {
    match e {
        Error::Io(e) => io_ctx(path, e),
        Error::Corrupt(msg) => Error::Corrupt(format!("{}: {msg}", path.display())),
        other => other,
    }
}

// ---------------------------------------------------------------------
// Atomic whole-file commit.

/// Atomically and durably replaces the file at `path` with `bytes`:
/// the data is written to a uniquely named temp file in the same
/// directory, fsynced, renamed over `path`, and the parent directory is
/// fsynced. After `Ok(())` the new content survives a crash; on error
/// the old content is untouched (the temp file is removed best-effort).
///
/// # Errors
///
/// [`Error::Io`] naming the file that failed.
pub fn write_bytes_atomic(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<()> {
    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let nonce = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let base = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
    let tmp = path.with_file_name(format!("{base}.{}.{nonce}.tmp", std::process::id()));

    let attempt = (|| -> Result<()> {
        let mut f = vfs.create(&tmp).map_err(|e| io_ctx(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_ctx(&tmp, e))?;
        f.sync_data().map_err(|e| io_ctx(&tmp, e))?;
        drop(f);
        vfs.rename(&tmp, path).map_err(|e| io_ctx(path, e))?;
        if let Some(parent) = path.parent() {
            // A bare relative filename has `Some("")` as its parent,
            // which no filesystem can open — the directory that needs
            // the fsync is the current one.
            let parent = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            vfs.sync_dir(parent).map_err(|e| io_ctx(parent, e))?;
        }
        Ok(())
    })();
    if attempt.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    attempt
}

/// [`write_bytes_atomic`] on the real filesystem.
///
/// # Errors
///
/// [`Error::Io`] naming the file that failed.
pub fn write_bytes_atomic_std(path: &Path, bytes: &[u8]) -> Result<()> {
    write_bytes_atomic(&StdVfs, path, bytes)
}

// ---------------------------------------------------------------------
// MANIFEST and journal header encoding.

fn encode_header(magic: [u8; 8], generation: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER_LEN as usize);
    v.extend_from_slice(&magic);
    v.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    v.extend_from_slice(&generation.to_le_bytes());
    let h = fnv(&v);
    v.extend_from_slice(&h.to_le_bytes());
    v
}

fn decode_header(bytes: &[u8], magic: [u8; 8], what: &str) -> Result<u64> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(Error::Corrupt(format!("{what} is truncated")));
    }
    let bytes = &bytes[..HEADER_LEN as usize];
    if bytes[..8] != magic {
        return Err(Error::Corrupt(format!(
            "not a {what} (magic bytes mismatch)"
        )));
    }
    let version = le_u32(&bytes[8..12]);
    if version != STORE_FORMAT_VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported {what} version {version} (this build reads version \
             {STORE_FORMAT_VERSION})"
        )));
    }
    let stored = le_u64(&bytes[20..28]);
    let computed = fnv(&bytes[..20]);
    if stored != computed {
        return Err(Error::Corrupt(format!("{what} checksum mismatch")));
    }
    Ok(le_u64(&bytes[12..20]))
}

// ---------------------------------------------------------------------
// Journal records.

/// One edge mutation in a journaled batch (layer-local endpoint ids, as
/// in `bitruss_dynamic::UpdateOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalOp {
    /// `true` for an insertion, `false` for a deletion.
    pub insert: bool,
    /// Layer-local upper endpoint.
    pub upper: u32,
    /// Layer-local lower endpoint.
    pub lower: u32,
}

/// A journaled update batch: the persisted form of an
/// `bitruss_dynamic::UpdateBatch`, applied atomically on replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalBatch {
    /// The mutations, in application order.
    pub ops: Vec<JournalOp>,
}

impl JournalBatch {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(4 + self.ops.len() * 9);
        v.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            v.push(u8::from(op.insert));
            v.extend_from_slice(&op.upper.to_le_bytes());
            v.extend_from_slice(&op.lower.to_le_bytes());
        }
        v
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let too_short = || Error::Corrupt("journal record payload is truncated".into());
        if bytes.len() < 4 {
            return Err(too_short());
        }
        let count = le_u32(&bytes[..4]) as usize;
        let body = &bytes[4..];
        if body.len() != count * 9 {
            return Err(Error::Corrupt(format!(
                "journal record declares {count} ops but carries {} payload bytes",
                body.len()
            )));
        }
        let mut ops = Vec::with_capacity(count);
        for chunk in body.chunks_exact(9) {
            let insert = match chunk[0] {
                0 => false,
                1 => true,
                other => {
                    return Err(Error::Corrupt(format!(
                        "unknown journal op tag {other} (expected 0 or 1)"
                    )))
                }
            };
            ops.push(JournalOp {
                insert,
                upper: le_u32(&chunk[1..5]),
                lower: le_u32(&chunk[5..9]),
            });
        }
        Ok(Self { ops })
    }
}

/// `len(u32) ‖ seq(u64) ‖ payload ‖ fnv(u64 over the first three)`.
fn encode_record(seq: u64, batch: &JournalBatch) -> Vec<u8> {
    let payload = batch.encode();
    let mut rec = Vec::with_capacity(4 + 8 + payload.len() + 8);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&seq.to_le_bytes());
    rec.extend_from_slice(&payload);
    let h = fnv(&rec);
    rec.extend_from_slice(&h.to_le_bytes());
    rec
}

/// What a journal scan recovered.
struct JournalScan {
    batches: Vec<JournalBatch>,
    /// Byte length of the valid prefix (header + whole valid records).
    valid_len: u64,
    /// `true` when the scan consumed the file exactly — no torn tail,
    /// no corrupt record.
    clean: bool,
    /// Human-readable reason the scan stopped early, when it did.
    note: Option<String>,
}

/// Scans journal `bytes`: validates the header, then decodes records
/// until EOF, a torn tail (truncation mid-record), or a corrupt record
/// (checksum/sequence/payload mismatch). Torn and corrupt tails are
/// *reported*, not errors — recovery truncates them; only an invalid
/// header makes the whole journal unusable.
///
/// Returns the journal's generation and the scan result.
fn scan_journal(bytes: &[u8]) -> Result<(u64, JournalScan)> {
    let generation = decode_header(bytes, WAL_MAGIC, "journal")?;
    let mut batches = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut clean = true;
    let mut note = None;
    while pos < bytes.len() {
        let rem = &bytes[pos..];
        let stop = |why: String| (false, Some(why));
        if rem.len() < 4 {
            (clean, note) = stop(format!("torn tail: {} trailing bytes", rem.len()));
            break;
        }
        let payload_len = le_u32(&rem[..4]) as usize;
        let total = 4 + 8 + payload_len + 8;
        if rem.len() < total {
            (clean, note) = stop(format!(
                "torn tail: record {} needs {total} bytes, {} remain",
                batches.len(),
                rem.len()
            ));
            break;
        }
        let stored = le_u64(&rem[total - 8..total]);
        if stored != fnv(&rem[..total - 8]) {
            (clean, note) = stop(format!(
                "corrupt record {}: checksum mismatch",
                batches.len()
            ));
            break;
        }
        let seq = le_u64(&rem[4..12]);
        if seq != batches.len() as u64 {
            (clean, note) = stop(format!(
                "corrupt record {}: sequence number {seq} out of order",
                batches.len()
            ));
            break;
        }
        match JournalBatch::decode(&rem[12..total - 8]) {
            Ok(b) => batches.push(b),
            Err(e) => {
                (clean, note) = stop(format!("corrupt record {}: {e}", batches.len()));
                break;
            }
        }
        pos += total;
    }
    Ok((
        generation,
        JournalScan {
            batches,
            valid_len: pos as u64,
            clean,
            note,
        },
    ))
}

// ---------------------------------------------------------------------
// Recovery results.

/// How a [`SnapshotStore::recover`] call reached the returned state.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// Generation the MANIFEST named.
    pub manifest_generation: u64,
    /// Generation whose snapshot was actually loaded (differs from
    /// `manifest_generation` only after a fallback).
    pub loaded_generation: u64,
    /// `true` when the newest snapshot failed validation and the
    /// previous generation was loaded instead.
    pub fell_back: bool,
    /// Batches in [`RecoveredState::tail`] that must be replayed on top
    /// of the loaded snapshot.
    pub replayed_batches: usize,
    /// `true` when a torn or corrupt journal tail was cut off.
    pub truncated_journal: bool,
    /// `true` when the fallback path could not prove the tail complete
    /// (an acknowledged batch *may* have been lost to double corruption
    /// of the newest snapshot and a journal).
    pub possibly_lost_tail: bool,
    /// Human-readable detail about truncation or fallback, when any.
    pub note: Option<String>,
}

/// A recovered store image: the loaded snapshot plus the journal tail
/// to replay on top of it. The store refuses further
/// [`append`](SnapshotStore::append)s after a fallback recovery until a
/// [`checkpoint`](SnapshotStore::checkpoint) re-establishes a valid
/// newest generation (see [`SnapshotStore::needs_checkpoint`]).
#[derive(Debug)]
pub struct RecoveredState {
    /// The committed snapshot of the loaded generation.
    pub snapshot: Snapshot,
    /// Journaled batches to replay, in order, on top of `snapshot`.
    pub tail: Vec<JournalBatch>,
    /// What recovery did to get here.
    pub report: RecoveryReport,
}

// ---------------------------------------------------------------------
// The store.

/// A crash-safe store of one evolving `(graph, φ, hierarchy)` state:
/// committed generation snapshots plus a durable journal of update
/// batches. See the [module docs](self) for layout and protocol.
pub struct SnapshotStore {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    generation: u64,
    next_seq: u64,
    journal: Option<Box<dyn VfsFile>>,
    journal_len: u64,
    needs_checkpoint: bool,
    poisoned: bool,
}

impl fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("dir", &self.dir)
            .field("generation", &self.generation)
            .field("journal_batches", &self.next_seq)
            .field("journal_len", &self.journal_len)
            .field("needs_checkpoint", &self.needs_checkpoint)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl SnapshotStore {
    /// Initialises a new store in `dir` (created if missing) with
    /// `(g, d, h)` as generation 0, and opens its journal for appends.
    ///
    /// # Errors
    ///
    /// [`Error::Invariant`] when `dir` already holds a store, or when
    /// `d`/`h` do not belong to `g`; [`Error::Io`] on write failure (a
    /// failed create leaves no committed MANIFEST, so the directory is
    /// not mistaken for a store later).
    pub fn create(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        g: &BipartiteGraph,
        d: &Decomposition,
        h: Option<&BitrussHierarchy>,
    ) -> Result<Self> {
        vfs.create_dir_all(dir).map_err(|e| io_ctx(dir, e))?;
        let manifest = dir.join(MANIFEST_NAME);
        if vfs.exists(&manifest) {
            return Err(Error::Invariant(format!(
                "{} already holds a snapshot store",
                dir.display()
            )));
        }
        let mut snap_bytes = Vec::new();
        write_snapshot(g, d, h, &mut snap_bytes)?;
        write_bytes_atomic(&*vfs, &dir.join(snap_name(0)), &snap_bytes)?;
        write_bytes_atomic(&*vfs, &dir.join(wal_name(0)), &encode_header(WAL_MAGIC, 0))?;
        write_bytes_atomic(&*vfs, &manifest, &encode_header(MANIFEST_MAGIC, 0))?;
        let wal_path = dir.join(wal_name(0));
        let journal = vfs
            .open_append(&wal_path)
            .map_err(|e| io_ctx(&wal_path, e))?;
        Ok(Self {
            vfs,
            dir: dir.to_path_buf(),
            generation: 0,
            next_seq: 0,
            journal: Some(journal),
            journal_len: HEADER_LEN,
            needs_checkpoint: false,
            poisoned: false,
        })
    }

    /// [`SnapshotStore::create`] on the real filesystem.
    ///
    /// # Errors
    ///
    /// As for [`SnapshotStore::create`].
    pub fn create_std(
        dir: &Path,
        g: &BipartiteGraph,
        d: &Decomposition,
        h: Option<&BitrussHierarchy>,
    ) -> Result<Self> {
        Self::create(Arc::new(StdVfs), dir, g, d, h)
    }

    /// Recovers the store in `dir` to the last consistent state: loads
    /// the committed generation's snapshot (falling back to the
    /// previous generation if the newest fails validation), scans its
    /// journal, truncates any torn or corrupt tail, and returns the
    /// batches to replay. See the [module docs](self) for semantics.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] / [`Error::Corrupt`] (naming the offending file)
    /// when no consistent state can be reconstructed — missing or
    /// corrupt MANIFEST, or every candidate snapshot failing
    /// validation.
    pub fn recover(vfs: Arc<dyn Vfs>, dir: &Path) -> Result<(Self, RecoveredState)> {
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest_bytes = vfs
            .read(&manifest_path)
            .map_err(|e| io_ctx(&manifest_path, e))?;
        let generation = decode_header(&manifest_bytes, MANIFEST_MAGIC, "store manifest")
            .map_err(|e| err_ctx(&manifest_path, e))?;

        // Sweep temp files from interrupted atomic writes.
        if let Ok(entries) = vfs.list(dir) {
            for p in entries {
                if p.extension().is_some_and(|x| x == "tmp") {
                    let _ = vfs.remove_file(&p);
                }
            }
        }

        let snap_path = dir.join(snap_name(generation));
        let wal_path = dir.join(wal_name(generation));

        // Primary path: the committed generation's snapshot is valid.
        let primary_err = match vfs
            .read(&snap_path)
            .map_err(|e| io_ctx(&snap_path, e))
            .and_then(|b| read_snapshot(b.as_slice()).map_err(|e| err_ctx(&snap_path, e)))
        {
            Ok(snapshot) => {
                let wal_bytes = vfs.read(&wal_path).map_err(|e| io_ctx(&wal_path, e))?;
                let (wal_gen, scan) =
                    scan_journal(&wal_bytes).map_err(|e| err_ctx(&wal_path, e))?;
                if wal_gen != generation {
                    return Err(Error::Corrupt(format!(
                        "{}: journal belongs to generation {wal_gen}, manifest names \
                         {generation}",
                        wal_path.display()
                    )));
                }
                let truncated = scan.valid_len < wal_bytes.len() as u64;
                if truncated {
                    vfs.truncate(&wal_path, scan.valid_len)
                        .map_err(|e| io_ctx(&wal_path, e))?;
                }
                let journal = vfs
                    .open_append(&wal_path)
                    .map_err(|e| io_ctx(&wal_path, e))?;
                let next_seq = scan.batches.len() as u64;
                let store = Self {
                    vfs,
                    dir: dir.to_path_buf(),
                    generation,
                    next_seq,
                    journal: Some(journal),
                    journal_len: scan.valid_len,
                    needs_checkpoint: false,
                    poisoned: false,
                };
                let report = RecoveryReport {
                    manifest_generation: generation,
                    loaded_generation: generation,
                    fell_back: false,
                    replayed_batches: scan.batches.len(),
                    truncated_journal: truncated,
                    possibly_lost_tail: false,
                    note: scan.note,
                };
                return Ok((
                    store,
                    RecoveredState {
                        snapshot,
                        tail: scan.batches,
                        report,
                    },
                ));
            }
            Err(e) => e,
        };

        // Fallback: gen n ≡ gen n-1 + every record of wal-(n-1), so if
        // the previous snapshot and journal are intact nothing is lost.
        if generation == 0 {
            return Err(primary_err);
        }
        let prev = generation - 1;
        let prev_snap_path = dir.join(snap_name(prev));
        let snapshot = vfs
            .read(&prev_snap_path)
            .map_err(|e| io_ctx(&prev_snap_path, e))
            .and_then(|b| read_snapshot(b.as_slice()).map_err(|e| err_ctx(&prev_snap_path, e)))
            .map_err(|fallback_err| {
                Error::Corrupt(format!(
                    "no loadable snapshot: newest failed ({primary_err}); previous failed \
                     ({fallback_err})"
                ))
            })?;

        let mut tail = Vec::new();
        let mut possibly_lost = false;
        let mut notes = vec![format!("fell back to generation {prev}: {primary_err}")];

        let prev_wal_path = dir.join(wal_name(prev));
        let prev_scan = vfs
            .read(&prev_wal_path)
            .map_err(|e| io_ctx(&prev_wal_path, e))
            .and_then(|b| {
                let (g, s) = scan_journal(&b).map_err(|e| err_ctx(&prev_wal_path, e))?;
                if g != prev {
                    return Err(Error::Corrupt(format!(
                        "{}: journal belongs to generation {g}, expected {prev}",
                        prev_wal_path.display()
                    )));
                }
                Ok(s)
            });
        match prev_scan {
            Ok(scan) if scan.clean => {
                // The previous journal is complete: its replay
                // reconstructs gen n exactly, and the tail of wal-n
                // extends it with post-checkpoint batches.
                tail.extend(scan.batches);
                match vfs.read(&wal_path) {
                    Ok(bytes) => match scan_journal(&bytes) {
                        Ok((g, s)) if g == generation => {
                            if let Some(n) = s.note {
                                notes.push(format!("{}: {n}", wal_path.display()));
                            }
                            tail.extend(s.batches);
                        }
                        Ok((g, _)) => {
                            possibly_lost = true;
                            notes.push(format!(
                                "{}: journal belongs to generation {g}; its batches \
                                 cannot be replayed",
                                wal_path.display()
                            ));
                        }
                        Err(e) => {
                            possibly_lost = true;
                            notes.push(format!("current journal unreadable: {e}"));
                        }
                    },
                    Err(e) => {
                        possibly_lost = true;
                        notes.push(format!(
                            "{}: current journal missing: {e}",
                            wal_path.display()
                        ));
                    }
                }
            }
            Ok(scan) => {
                // Previous journal has a damaged tail: everything from
                // its first bad record on — including all of gen n's
                // journal — is unreconstructable.
                possibly_lost = true;
                if let Some(n) = scan.note {
                    notes.push(format!("{}: {n}", prev_wal_path.display()));
                }
                tail.extend(scan.batches);
            }
            Err(e) => {
                possibly_lost = true;
                notes.push(format!("previous journal unreadable: {e}"));
            }
        }

        let replayed = tail.len();
        let store = Self {
            vfs,
            dir: dir.to_path_buf(),
            generation,
            next_seq: 0,
            journal: None,
            journal_len: HEADER_LEN,
            needs_checkpoint: true,
            poisoned: false,
        };
        let report = RecoveryReport {
            manifest_generation: generation,
            loaded_generation: prev,
            fell_back: true,
            replayed_batches: replayed,
            truncated_journal: true,
            possibly_lost_tail: possibly_lost,
            note: Some(notes.join("; ")),
        };
        Ok((
            store,
            RecoveredState {
                snapshot,
                tail,
                report,
            },
        ))
    }

    /// [`SnapshotStore::recover`] on the real filesystem.
    ///
    /// # Errors
    ///
    /// As for [`SnapshotStore::recover`].
    pub fn recover_std(dir: &Path) -> Result<(Self, RecoveredState)> {
        Self::recover(Arc::new(StdVfs), dir)
    }

    /// Durably journals `batch`. When this returns `Ok`, the batch is
    /// **acknowledged**: it has been fsynced and will survive any crash
    /// (recovery replays it). Returns the batch's sequence number in
    /// the current generation's journal.
    ///
    /// On a failed write (ENOSPC, torn write) the partial record is
    /// truncated away so the journal stays valid; if even that fails
    /// the store poisons itself and refuses further writes.
    ///
    /// # Errors
    ///
    /// [`Error::Invariant`] when the store [needs a
    /// checkpoint](SnapshotStore::needs_checkpoint) after a fallback
    /// recovery, or is poisoned; [`Error::Io`] on write failure (the
    /// batch is then *not* acknowledged).
    pub fn append(&mut self, batch: &JournalBatch) -> Result<u64> {
        if self.poisoned {
            return Err(Error::Invariant(
                "snapshot store is poisoned by an earlier unrecoverable write failure".into(),
            ));
        }
        if self.needs_checkpoint || self.journal.is_none() {
            return Err(Error::Invariant(
                "snapshot store recovered via fallback; checkpoint() must commit a \
                 fresh generation before new batches can be journaled"
                    .into(),
            ));
        }
        let seq = self.next_seq;
        let rec = encode_record(seq, batch);
        let wal_path = self.dir.join(wal_name(self.generation));
        let Some(journal) = self.journal.as_mut() else {
            return Err(Error::Invariant(
                "journal handle missing outside fallback recovery".into(),
            ));
        };
        let wrote = journal
            .write_all(&rec) // xtask:allow(atomic-write-discipline) append-only WAL record: length-prefixed + checksummed, fsynced before acknowledgement; a torn tail is truncated on recovery (docs/DURABILITY.md)
            .and_then(|()| journal.sync_data())
            .map_err(|e| io_ctx(&wal_path, e));
        if let Err(e) = wrote {
            // Cut the partial record off so the on-disk journal stays
            // parseable; if the disk won't even do that, stop writing.
            if self.vfs.truncate(&wal_path, self.journal_len).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.journal_len += rec.len() as u64;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Commits `(g, d, h)` as a new generation and starts an empty
    /// journal for it. The previous generation (snapshot + full
    /// journal) is retained for corruption fallback; older ones are
    /// removed best-effort. Returns the new generation number.
    ///
    /// A failure *before* the MANIFEST commit leaves the store fully
    /// usable on the old generation; the half-written files are inert
    /// and overwritten by the next attempt.
    ///
    /// # Errors
    ///
    /// [`Error::Invariant`] when poisoned or when `d`/`h` do not belong
    /// to `g`; [`Error::Io`] on write failure.
    pub fn checkpoint(
        &mut self,
        g: &BipartiteGraph,
        d: &Decomposition,
        h: Option<&BitrussHierarchy>,
    ) -> Result<u64> {
        if self.poisoned {
            return Err(Error::Invariant(
                "snapshot store is poisoned by an earlier unrecoverable write failure".into(),
            ));
        }
        let new_gen = self.generation + 1;
        let mut snap_bytes = Vec::new();
        write_snapshot(g, d, h, &mut snap_bytes)?;
        write_bytes_atomic(&*self.vfs, &self.dir.join(snap_name(new_gen)), &snap_bytes)?;
        let wal_path = self.dir.join(wal_name(new_gen));
        write_bytes_atomic(&*self.vfs, &wal_path, &encode_header(WAL_MAGIC, new_gen))?;
        // The commit point: after this rename is durable, recovery
        // loads gen `new_gen` + its (empty) journal.
        write_bytes_atomic(
            &*self.vfs,
            &self.dir.join(MANIFEST_NAME),
            &encode_header(MANIFEST_MAGIC, new_gen),
        )?;
        match self.vfs.open_append(&wal_path) {
            Ok(j) => self.journal = Some(j),
            Err(e) => {
                // Committed on disk but no live handle — recovery will
                // succeed, this session cannot continue writing.
                self.poisoned = true;
                self.journal = None;
                return Err(io_ctx(&wal_path, e));
            }
        }
        self.generation = new_gen;
        self.next_seq = 0;
        self.journal_len = HEADER_LEN;
        self.needs_checkpoint = false;

        // Best-effort cleanup of generations older than new_gen - 1.
        if let Ok(entries) = self.vfs.list(&self.dir) {
            for p in entries {
                let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                let old = name
                    .strip_prefix("gen-")
                    .and_then(|s| s.strip_suffix(".snap"))
                    .or_else(|| {
                        name.strip_prefix("wal-")
                            .and_then(|s| s.strip_suffix(".log"))
                    })
                    .and_then(|s| s.parse::<u64>().ok());
                if old.is_some_and(|k| k + 1 < new_gen) {
                    let _ = self.vfs.remove_file(&p);
                }
            }
        }
        Ok(new_gen)
    }

    /// The committed generation this store is writing after.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of batches in the current generation's journal.
    pub fn journal_batches(&self) -> u64 {
        self.next_seq
    }

    /// `true` after a fallback recovery: [`append`](Self::append) is
    /// refused until [`checkpoint`](Self::checkpoint) commits a fresh,
    /// fully valid generation.
    pub fn needs_checkpoint(&self) -> bool {
        self.needs_checkpoint
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{decompose, Algorithm};
    use crate::persist::vfs::MemVfs;
    use bigraph::GraphBuilder;

    fn sample() -> (BipartiteGraph, Decomposition, BitrussHierarchy) {
        let g = GraphBuilder::new()
            .with_upper(12)
            .with_lower(9)
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
            ])
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        (g, d, h)
    }

    fn batch(ops: &[(bool, u32, u32)]) -> JournalBatch {
        JournalBatch {
            ops: ops
                .iter()
                .map(|&(insert, upper, lower)| JournalOp {
                    insert,
                    upper,
                    lower,
                })
                .collect(),
        }
    }

    fn dir() -> PathBuf {
        PathBuf::from("/store")
    }

    fn fresh_store(vfs: &MemVfs) -> SnapshotStore {
        let (g, d, h) = sample();
        SnapshotStore::create(Arc::new(vfs.clone()), &dir(), &g, &d, Some(&h)).unwrap()
    }

    #[test]
    fn create_append_recover_round_trips() {
        let vfs = MemVfs::new();
        let mut store = fresh_store(&vfs);
        let b0 = batch(&[(true, 5, 5), (false, 0, 0)]);
        let b1 = batch(&[(true, 6, 6)]);
        assert_eq!(store.append(&b0).unwrap(), 0);
        assert_eq!(store.append(&b1).unwrap(), 1);
        drop(store);
        vfs.crash(); // acked = fsynced: everything survives

        let (store, recovered) = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(recovered.tail, vec![b0, b1]);
        assert!(!recovered.report.fell_back);
        assert!(!recovered.report.truncated_journal);
        assert!(!recovered.report.possibly_lost_tail);
        assert_eq!(store.generation(), 0);
        assert_eq!(store.journal_batches(), 2);
        let (g, _, _) = sample();
        assert_eq!(recovered.snapshot.graph.edge_pairs(), g.edge_pairs());
    }

    #[test]
    fn recovered_store_keeps_appending() {
        let vfs = MemVfs::new();
        let mut store = fresh_store(&vfs);
        store.append(&batch(&[(true, 4, 4)])).unwrap();
        drop(store);
        vfs.crash();

        let (mut store, _) = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(store.append(&batch(&[(true, 7, 7)])).unwrap(), 1);
        vfs.crash();
        let (_, recovered) = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(recovered.tail.len(), 2);
    }

    #[test]
    fn torn_journal_tail_is_truncated() {
        let vfs = MemVfs::new();
        let mut store = fresh_store(&vfs);
        store.append(&batch(&[(true, 4, 4)])).unwrap();
        // Unsynced second append, then a crash that flushes only 5 bytes
        // of it — a torn tail the scan must cut off.
        store.append(&batch(&[(true, 5, 5)])).unwrap();
        drop(store);
        let wal = dir().join(wal_name(0));
        let full = vfs.read(&wal).unwrap();
        vfs.truncate(&wal, full.len() as u64 - 5).unwrap();

        let (store, recovered) = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(recovered.tail.len(), 1);
        assert!(recovered.report.truncated_journal);
        assert!(!recovered.report.fell_back);
        assert!(recovered.report.note.is_some());
        assert_eq!(store.journal_batches(), 1);
    }

    #[test]
    fn flipped_journal_record_stops_replay_at_last_valid() {
        let vfs = MemVfs::new();
        let mut store = fresh_store(&vfs);
        store.append(&batch(&[(true, 4, 4)])).unwrap();
        store.append(&batch(&[(true, 5, 5)])).unwrap();
        store.append(&batch(&[(true, 6, 6)])).unwrap();
        drop(store);
        // Flip one byte inside record 1's payload.
        let wal = dir().join(wal_name(0));
        let mut bytes = vfs.read(&wal).unwrap();
        let rec_len = encode_record(0, &batch(&[(true, 4, 4)])).len();
        let target = HEADER_LEN as usize + rec_len + 14;
        bytes[target] ^= 0x40;
        let mut f = vfs.create(&wal).unwrap();
        f.write_all(&bytes).unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&dir()).unwrap();

        let (_, recovered) = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(recovered.tail, vec![batch(&[(true, 4, 4)])]);
        assert!(recovered.report.truncated_journal);
        let note = recovered.report.note.unwrap();
        assert!(note.contains("record 1"), "{note}");
    }

    #[test]
    fn corrupt_manifest_is_an_error_naming_the_file() {
        let vfs = MemVfs::new();
        let store = fresh_store(&vfs);
        drop(store);
        let manifest = dir().join(MANIFEST_NAME);
        let mut bytes = vfs.read(&manifest).unwrap();
        bytes[13] ^= 0x01; // generation field → checksum mismatch
        let mut f = vfs.create(&manifest).unwrap();
        f.write_all(&bytes).unwrap();
        f.sync_data().unwrap();

        let err = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("MANIFEST"), "{msg}");
        assert!(msg.contains("checksum"), "{msg}");
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous_generation() {
        let vfs = MemVfs::new();
        let mut store = fresh_store(&vfs);
        let pre = batch(&[(true, 4, 4)]);
        store.append(&pre).unwrap();
        let (g, d, h) = sample();
        assert_eq!(store.checkpoint(&g, &d, Some(&h)).unwrap(), 1);
        let post = batch(&[(true, 5, 5)]);
        store.append(&post).unwrap();
        drop(store);
        // Damage gen-1.snap.
        let snap = dir().join(snap_name(1));
        let mut bytes = vfs.read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let mut f = vfs.create(&snap).unwrap();
        f.write_all(&bytes).unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&dir()).unwrap();

        let (store, recovered) = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap();
        let r = &recovered.report;
        assert!(r.fell_back);
        assert_eq!(r.manifest_generation, 1);
        assert_eq!(r.loaded_generation, 0);
        // gen 0 + full wal-0 + wal-1 tail: nothing acked is lost.
        assert_eq!(recovered.tail, vec![pre, post]);
        assert!(!r.possibly_lost_tail);
        assert!(store.needs_checkpoint());

        // Appends are refused until a checkpoint re-commits.
        let mut store = store;
        assert!(matches!(
            store.append(&batch(&[(true, 6, 6)])),
            Err(Error::Invariant(_))
        ));
        assert_eq!(store.checkpoint(&g, &d, Some(&h)).unwrap(), 2);
        store.append(&batch(&[(true, 6, 6)])).unwrap();
    }

    #[test]
    fn checkpoint_resets_journal_and_cleans_old_generations() {
        let vfs = MemVfs::new();
        let mut store = fresh_store(&vfs);
        let (g, d, h) = sample();
        store.append(&batch(&[(true, 4, 4)])).unwrap();
        assert_eq!(store.checkpoint(&g, &d, Some(&h)).unwrap(), 1);
        assert_eq!(store.journal_batches(), 0);
        assert_eq!(store.checkpoint(&g, &d, Some(&h)).unwrap(), 2);
        // gen 0 files are gone, gen 1 (fallback) and gen 2 remain.
        assert!(!vfs.exists(&dir().join(snap_name(0))));
        assert!(!vfs.exists(&dir().join(wal_name(0))));
        assert!(vfs.exists(&dir().join(snap_name(1))));
        assert!(vfs.exists(&dir().join(snap_name(2))));
        vfs.crash();
        let (_, recovered) = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(recovered.report.loaded_generation, 2);
        assert!(recovered.tail.is_empty());
    }

    #[test]
    fn enospc_append_is_not_acknowledged_and_store_survives() {
        let vfs = MemVfs::new();
        let mut store = fresh_store(&vfs);
        store.append(&batch(&[(true, 4, 4)])).unwrap();
        let ops = vfs.ops();
        vfs.fail_at(ops, crate::persist::vfs::Fault::Enospc);
        let err = store.append(&batch(&[(true, 5, 5)])).unwrap_err();
        assert!(err.to_string().contains(&wal_name(0)), "{err}");
        // The failed batch was rejected cleanly; the next one lands.
        assert_eq!(store.append(&batch(&[(true, 6, 6)])).unwrap(), 1);
        vfs.crash();
        let (_, recovered) = SnapshotStore::recover(Arc::new(vfs.clone()), &dir()).unwrap();
        assert_eq!(
            recovered.tail,
            vec![batch(&[(true, 4, 4)]), batch(&[(true, 6, 6)])]
        );
    }

    #[test]
    fn double_create_is_refused() {
        let vfs = MemVfs::new();
        let _store = fresh_store(&vfs);
        let (g, d, _) = sample();
        let err = SnapshotStore::create(Arc::new(vfs.clone()), &dir(), &g, &d, None).unwrap_err();
        assert!(matches!(err, Error::Invariant(_)));
    }

    #[test]
    fn journal_batch_encoding_round_trips_and_rejects_bad_tags() {
        let b = batch(&[(true, 0, u32::MAX), (false, 7, 9)]);
        let enc = b.encode();
        assert_eq!(JournalBatch::decode(&enc).unwrap(), b);
        let mut bad = enc.clone();
        bad[4] = 2; // first op's tag
        assert!(JournalBatch::decode(&bad).is_err());
        assert!(JournalBatch::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn bare_relative_path_commits_atomically() {
        // A bare filename's parent is `Some("")`; the dir fsync must
        // fall back to "." instead of failing after the rename (the
        // bench runner's `--json bench.json` hits exactly this).
        let name = format!("wba-bare-{}.tmp.json", std::process::id());
        let path = Path::new(&name);
        write_bytes_atomic(&StdVfs, path, b"[1]").unwrap();
        let read = std::fs::read(path).unwrap();
        std::fs::remove_file(path).unwrap();
        assert_eq!(read, b"[1]");
    }

    #[test]
    fn empty_manifest_and_wrong_magic_are_corrupt() {
        assert!(decode_header(b"", MANIFEST_MAGIC, "store manifest").is_err());
        let wal = encode_header(WAL_MAGIC, 3);
        assert!(decode_header(&wal, MANIFEST_MAGIC, "store manifest").is_err());
        assert_eq!(decode_header(&wal, WAL_MAGIC, "journal").unwrap(), 3);
    }
}
