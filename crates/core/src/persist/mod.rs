//! Persistence of decomposition results.
//!
//! Decomposing a large graph takes minutes; querying its hierarchy should
//! not require redoing it. Two formats are provided:
//!
//! * **plain text** (this module) — one `upper lower phi` triple per line
//!   with a size header, so files are diffable, greppable, and readable
//!   back next to the original edge list;
//! * **binary snapshots** ([`binary`]) — versioned, checksummed images of
//!   graph + φ + (optionally) a prebuilt [`crate::BitrussHierarchy`], for
//!   query serving without re-decomposition or re-indexing.
//!
//! # Round-trip guarantees
//!
//! Both formats reproduce the exact `(graph, φ)` pair: edge ids, layer
//! sizes (**including trailing isolated vertices**, via the declared
//! sizes in the text header / binary graph section) and every bitruss
//! number. The text reader accepts its size header on any comment line
//! preceding the first triple, rejects duplicate triples that disagree
//! on φ, and reports malformed lines with their line number.

pub mod binary;
pub mod store;
pub mod vfs;

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use bigraph::{BipartiteGraph, Error, Result};

use crate::decomposition::Decomposition;

/// Prefix of the size header written by [`write_decomposition`]. The
/// `U upper, L lower` tail matches `bigraph`'s edge-list header so both
/// formats share one parser ([`bigraph::io::parse_size_header`]).
const DECOMPOSITION_HEADER: &str = "% bitruss decomposition:";

/// Little-endian `u32` from the first 4 bytes of `b`, zero-padded when
/// shorter. Every caller bounds-checks first; the padding only keeps
/// the decode path free of panicking conversions (no-panic-lib).
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    let n = b.len().min(4);
    a[..n].copy_from_slice(&b[..n]);
    u32::from_le_bytes(a)
}

/// Little-endian `u64` from the first 8 bytes of `b` (see [`le_u32`]).
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    let n = b.len().min(8);
    a[..n].copy_from_slice(&b[..n]);
    u64::from_le_bytes(a)
}

/// Writes `g`'s edges with their bitruss numbers: a header line followed
/// by one `upper lower phi` triple per line (layer-local 0-based ids, in
/// edge-id order).
///
/// # Errors
///
/// Returns [`Error::Invariant`] when `d` does not belong to `g` (its φ
/// array length differs from the edge count) — the pair would not
/// round-trip, so nothing is written.
pub fn write_decomposition<W: Write>(
    g: &BipartiteGraph,
    d: &Decomposition,
    writer: W,
) -> Result<()> {
    check_matching(g, d)?;
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "{} {} upper, {} lower, {} edges, max phi {}",
        DECOMPOSITION_HEADER,
        g.num_upper(),
        g.num_lower(),
        g.num_edges(),
        d.max_bitruss()
    )?;
    for e in g.edges() {
        let (u, v) = g.edge(e);
        writeln!(
            w,
            "{} {} {}",
            g.layer_index(u),
            g.layer_index(v),
            d.phi[e.index()]
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Errors unless `d` has exactly one φ value per edge of `g`.
pub(crate) fn check_matching(g: &BipartiteGraph, d: &Decomposition) -> Result<()> {
    if d.phi.len() != g.num_edges() as usize {
        return Err(Error::Invariant(format!(
            "decomposition carries {} φ values but the graph has {} edges",
            d.phi.len(),
            g.num_edges()
        )));
    }
    Ok(())
}

/// Reads a file written by [`write_decomposition`] back as a graph plus
/// its decomposition.
///
/// The size header is honoured when it appears on any comment line before
/// the first triple, so declared layer sizes — and hence trailing
/// isolated vertices — survive the round trip. The edge order is
/// re-derived from the builder, so the φ values are re-attached by edge
/// lookup rather than line order. Duplicate `u v phi` lines are tolerated
/// when they agree on φ (the builder deduplicates the edge) and rejected
/// with an [`Error::Parse`] naming both lines when they conflict.
pub fn read_decomposition<R: Read>(reader: R) -> Result<(BipartiteGraph, Decomposition)> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut declared: Option<(u32, u32)> = None;
    let mut triples: Vec<(u32, u32, u64, usize)> = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
            if declared.is_none() && triples.is_empty() {
                declared = bigraph::io::parse_size_header(trimmed, DECOMPOSITION_HEADER);
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let mut next = |what: &str| -> Result<u64> {
            it.next()
                .ok_or_else(|| Error::Parse {
                    line: line_no,
                    message: format!("missing {what}"),
                })?
                .parse::<u64>()
                .map_err(|_| Error::Parse {
                    line: line_no,
                    message: format!("invalid {what}"),
                })
        };
        let u = next("upper index")?;
        let v = next("lower index")?;
        let phi = next("bitruss number")?;
        let to_idx = |val: u64, what: &str| -> Result<u32> {
            u32::try_from(val).map_err(|_| Error::Parse {
                line: line_no,
                message: format!("{what} {val} exceeds the u32 id space"),
            })
        };
        triples.push((
            to_idx(u, "upper index")?,
            to_idx(v, "lower index")?,
            phi,
            line_no,
        ));
    }

    // Duplicate triples that disagree on φ are unanswerable — the builder
    // would silently keep one edge and the attach loop below would
    // last-wins the φ — so reject them up front, naming both lines.
    let mut seen: HashMap<(u32, u32), (u64, usize)> = HashMap::with_capacity(triples.len());
    for &(u, v, p, ln) in &triples {
        match seen.entry((u, v)) {
            std::collections::hash_map::Entry::Occupied(prev) => {
                let &(p0, ln0) = prev.get();
                if p0 != p {
                    return Err(Error::Parse {
                        line: ln,
                        message: format!(
                            "duplicate edge ({u}, {v}) with conflicting bitruss numbers: \
                             {p0} on line {ln0}, {p} here"
                        ),
                    });
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert((p, ln));
            }
        }
    }

    let mut builder = bigraph::GraphBuilder::new();
    if let Some((upper, lower)) = declared {
        builder = builder.with_upper(upper).with_lower(lower);
    }
    let graph = builder
        .add_edges(triples.iter().map(|&(u, v, _, _)| (u, v)))
        .build()?;
    let mut phi = vec![0u64; graph.num_edges() as usize];
    for &(u, v, p, _) in &triples {
        let e = graph
            .edge_between(graph.upper(u), graph.lower(v))
            .ok_or_else(|| {
                Error::Invariant(format!(
                    "edge ({u}, {v}) vanished between builder insert and lookup"
                ))
            })?;
        phi[e.index()] = p;
    }
    Ok((graph, Decomposition::new(phi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{decompose, Algorithm};

    #[test]
    fn round_trip() {
        let g = datagen::powerlaw::chung_lu(30, 30, 250, 2.0, 2.0, 5);
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let mut buf = Vec::new();
        write_decomposition(&g, &d, &mut buf).unwrap();
        let (g2, d2) = read_decomposition(buf.as_slice()).unwrap();
        assert_eq!(g.edge_pairs(), g2.edge_pairs());
        assert_eq!(d, d2);
    }

    #[test]
    fn round_trip_preserves_isolated_vertices() {
        // Regression: the reader used to drop the size header it had
        // itself written, shrinking the layers to the largest seen index.
        let g = bigraph::GraphBuilder::new()
            .with_upper(8)
            .with_lower(13)
            .add_edges([(0, 0), (1, 0), (0, 1), (1, 1)])
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let mut buf = Vec::new();
        write_decomposition(&g, &d, &mut buf).unwrap();
        let (g2, d2) = read_decomposition(buf.as_slice()).unwrap();
        assert_eq!(g2.num_upper(), 8);
        assert_eq!(g2.num_lower(), 13);
        assert_eq!(g.edge_pairs(), g2.edge_pairs());
        assert_eq!(d, d2);
    }

    #[test]
    fn header_and_format() {
        let g = bigraph::GraphBuilder::new()
            .add_edges([(0, 0), (1, 0)])
            .build()
            .unwrap();
        let d = Decomposition::new(vec![3, 4]);
        let mut buf = Vec::new();
        write_decomposition(&g, &d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("% bitruss decomposition: 2 upper, 1 lower, 2 edges"));
        assert!(text.contains("0 0 3"));
        assert!(text.contains("1 0 4"));
    }

    #[test]
    fn header_after_banner_comments_is_honoured() {
        let text = "% banner produced by some pipeline\n\
                    % bitruss decomposition: 4 upper, 9 lower, 1 edges, max phi 0\n\
                    0 0 0\n";
        let (g, d) = read_decomposition(text.as_bytes()).unwrap();
        assert_eq!(g.num_upper(), 4);
        assert_eq!(g.num_lower(), 9);
        assert_eq!(d.phi, vec![0]);
    }

    #[test]
    fn mismatched_phi_length_is_an_error_not_a_panic() {
        // Regression: this used to abort via `assert_eq!`.
        let g = bigraph::GraphBuilder::new()
            .add_edges([(0, 0), (1, 0)])
            .build()
            .unwrap();
        let d = Decomposition::new(vec![1]);
        let mut buf = Vec::new();
        let err = write_decomposition(&g, &d, &mut buf).unwrap_err();
        assert!(matches!(err, Error::Invariant(_)));
        assert!(buf.is_empty(), "nothing must be written on error");
    }

    #[test]
    fn conflicting_duplicate_triples_are_rejected() {
        // Regression: the φ of the later line used to silently win.
        let text = "0 0 3\n1 0 2\n0 0 4\n";
        let err = read_decomposition(text.as_bytes()).unwrap_err();
        match err {
            Error::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("conflicting"), "{message}");
                assert!(message.contains("line 1"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Agreeing duplicates stay tolerated (the builder dedups).
        let (g, d) = read_decomposition("0 0 3\n0 0 3\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(d.phi, vec![3]);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(read_decomposition("0 0\n".as_bytes()).is_err()); // missing phi
        assert!(read_decomposition("a b c\n".as_bytes()).is_err());
        let (g, d) = read_decomposition("% empty\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert!(d.phi.is_empty());
    }

    #[test]
    fn oversized_vertex_indices_are_rejected() {
        // Regression: `as u32` used to wrap 2^32 to 0, silently parsing
        // the wrong edge (and φ stays u64, so only the indices are
        // range-checked).
        let err = read_decomposition("4294967296 0 5\n".as_bytes()).unwrap_err();
        match err {
            Error::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("u32 id space"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(read_decomposition("0 4294967296 5\n".as_bytes()).is_err());
        let (_, d) = read_decomposition("0 0 4294967296\n".as_bytes()).unwrap();
        assert_eq!(d.phi, vec![4294967296]);
    }
}
