//! Versioned, checksummed binary snapshots of graph + φ + hierarchy.
//!
//! A snapshot is the unit a query server loads once and serves from: the
//! bipartite graph, its bitruss numbers, and (optionally) the prebuilt
//! [`BitrussHierarchy`], so neither the minutes-long decomposition nor
//! the index build is ever repeated.
//!
//! # Layout (format version 1)
//!
//! All integers are **little-endian**; `u32`s carry ids/counts bounded by
//! the graph's `u32` id space, `u64`s carry φ values and offsets.
//!
//! ```text
//! magic    8 × u8   "BTRSNAP\0"
//! version  u32      1
//! graph    u32 num_upper, u32 num_lower, u32 num_edges,
//!          then per edge: u32 upper_local, u32 lower_local
//!          (strictly ascending (upper, lower) pairs — edge-id order)
//! phi      u64 × num_edges
//! flag     u8       0 = no hierarchy section, 1 = hierarchy follows
//! hierarchy (when flag = 1)
//!          u32 L, u64 levels × L, u64 count_ge × L,
//!          u32 perm × num_edges,
//!          u32 N (forest nodes), u64 node_level × N, u32 node_parent × N,
//!          u64 node_edge_offsets × (N+1), u32 node_edge_ids × num_edges,
//!          u32 edge_node × num_edges, u64 vertex_max_k × num_vertices
//! trailer  u64      FNV-1a-64 checksum of every preceding byte
//! ```
//!
//! # Versioning policy
//!
//! The version is bumped whenever the byte layout changes; readers accept
//! exactly the versions they know (currently only 1) and reject newer
//! files with a clear [`Error::Corrupt`] naming both versions, so stale
//! binaries fail loudly instead of misreading new snapshots.
//!
//! # Corruption handling
//!
//! Every load failure — bad magic, unsupported version, truncation,
//! structurally impossible sections, or a trailer checksum mismatch —
//! surfaces as [`Error::Corrupt`] (or [`Error::Io`] for genuine I/O
//! failures); loading never panics on hostile bytes. A successfully
//! loaded hierarchy is additionally cross-validated against the φ array,
//! so its answers are guaranteed to match the decomposition.

use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::Path;

use bigraph::{BipartiteGraph, Error, GraphBuilder, Result};

use crate::decomposition::Decomposition;
use crate::hierarchy::BitrussHierarchy;
use crate::persist::check_matching;
use crate::persist::vfs::{StdVfs, Vfs};
use crate::persist::{le_u32, le_u64};

/// Magic bytes opening every snapshot.
const MAGIC: [u8; 8] = *b"BTRSNAP\0";

/// Current snapshot format version (see the module docs for the policy).
pub const FORMAT_VERSION: u32 = 1;

/// Cap on speculative `Vec` pre-allocation while reading, so a corrupt
/// count field cannot trigger a huge allocation before EOF detection.
const PREALLOC_CAP: usize = 1 << 20;

/// A loaded snapshot: the graph, its decomposition, and the hierarchy
/// index when one was persisted.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The bipartite graph, with declared layer sizes (isolated vertices
    /// included) and the exact edge ids of the writer.
    pub graph: BipartiteGraph,
    /// The bitruss numbers, aligned with the graph's edge ids.
    pub decomposition: Decomposition,
    /// The hierarchy index, when the snapshot carried one.
    pub hierarchy: Option<BitrussHierarchy>,
}

// ---------------------------------------------------------------------
// FNV-1a-64 running checksum, wrapped around the raw reader/writer.

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash = fnv_update(self.hash, &buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------
// Primitive readers/writers (truncation → Error::Corrupt).

fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            Error::Corrupt("snapshot truncated mid-section".into())
        } else {
            Error::Io(e)
        }
    })
}

fn w_u8<W: Write>(w: &mut W, x: u8) -> Result<()> {
    w.write_all(&[x])?;
    Ok(())
}

fn w_u32<W: Write>(w: &mut W, x: u32) -> Result<()> {
    w.write_all(&x.to_le_bytes())?;
    Ok(())
}

fn w_u64<W: Write>(w: &mut W, x: u64) -> Result<()> {
    w.write_all(&x.to_le_bytes())?;
    Ok(())
}

fn r_u8<R: Read>(r: &mut R) -> Result<u8> {
    let mut b = [0u8; 1];
    read_fully(r, &mut b)?;
    Ok(b[0])
}

fn r_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    read_fully(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    read_fully(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_vec_u32<R: Read>(r: &mut R, count: usize) -> Result<Vec<u32>> {
    let mut v = Vec::with_capacity(count.min(PREALLOC_CAP));
    for _ in 0..count {
        v.push(r_u32(r)?);
    }
    Ok(v)
}

fn r_vec_u64<R: Read>(r: &mut R, count: usize) -> Result<Vec<u64>> {
    let mut v = Vec::with_capacity(count.min(PREALLOC_CAP));
    for _ in 0..count {
        v.push(r_u64(r)?);
    }
    Ok(v)
}

/// `usize` from a persisted `u64` offset/count, rejecting values that
/// cannot index this platform's memory.
fn r_usize<R: Read>(r: &mut R) -> Result<usize> {
    usize::try_from(r_u64(r)?)
        .map_err(|_| Error::Corrupt("offset exceeds the platform's address space".into()))
}

// ---------------------------------------------------------------------
// Writing.

/// Writes a snapshot of `g`, `d`, and optionally a prebuilt hierarchy.
///
/// # Errors
///
/// [`Error::Invariant`] when `d` (or `h`) does not belong to `g`;
/// [`Error::Io`] on write failures.
pub fn write_snapshot<W: Write>(
    g: &BipartiteGraph,
    d: &Decomposition,
    h: Option<&BitrussHierarchy>,
    writer: W,
) -> Result<()> {
    check_matching(g, d)?;
    if let Some(h) = h {
        if h.num_edges() != g.num_edges() as usize {
            return Err(Error::Invariant(format!(
                "hierarchy indexes {} edges but the graph has {}",
                h.num_edges(),
                g.num_edges()
            )));
        }
    }
    let mut w = HashingWriter::new(BufWriter::new(writer));
    w.write_all(&MAGIC)?;
    w_u32(&mut w, FORMAT_VERSION)?;

    w_u32(&mut w, g.num_upper())?;
    w_u32(&mut w, g.num_lower())?;
    w_u32(&mut w, g.num_edges())?;
    for e in g.edges() {
        let (u, v) = g.edge(e);
        w_u32(&mut w, g.layer_index(u))?;
        w_u32(&mut w, g.layer_index(v))?;
    }
    for &p in &d.phi {
        w_u64(&mut w, p)?;
    }

    match h {
        None => w_u8(&mut w, 0)?,
        Some(h) => {
            w_u8(&mut w, 1)?;
            w_u32(&mut w, h.levels.len() as u32)?;
            for &l in &h.levels {
                w_u64(&mut w, l)?;
            }
            for &c in &h.count_ge {
                w_u64(&mut w, c as u64)?;
            }
            for &e in &h.perm {
                w_u32(&mut w, e)?;
            }
            w_u32(&mut w, h.node_level.len() as u32)?;
            for &l in &h.node_level {
                w_u64(&mut w, l)?;
            }
            for &p in &h.node_parent {
                w_u32(&mut w, p)?;
            }
            for &o in &h.node_edge_offsets {
                w_u64(&mut w, o as u64)?;
            }
            for &e in &h.node_edge_ids {
                w_u32(&mut w, e)?;
            }
            for &n in &h.edge_node {
                w_u32(&mut w, n)?;
            }
            for &k in &h.vertex_max_k {
                w_u64(&mut w, k)?;
            }
        }
    }

    let hash = w.hash;
    let mut inner = w.inner;
    inner.write_all(&hash.to_le_bytes())?;
    inner.flush()?;
    Ok(())
}

/// Writes a snapshot to a file path; see [`write_snapshot`].
///
/// The write is **atomic and durable**: the snapshot is buffered, then
/// committed via temp-file + fsync + rename + directory fsync
/// ([`crate::persist::store::write_bytes_atomic_std`]), so a crash
/// mid-write can never leave a torn file at `path`, and errors name the
/// offending file.
pub fn write_snapshot_file<P: AsRef<Path>>(
    g: &BipartiteGraph,
    d: &Decomposition,
    h: Option<&BitrussHierarchy>,
    path: P,
) -> Result<()> {
    let mut bytes = Vec::new();
    write_snapshot(g, d, h, &mut bytes)?;
    crate::persist::store::write_bytes_atomic_std(path.as_ref(), &bytes)
}

// ---------------------------------------------------------------------
// Reading.

/// Reads a snapshot written by [`write_snapshot`], verifying the magic,
/// version, trailer checksum, and every structural invariant. The
/// checksum is verified over the whole payload *before* any section is
/// interpreted, so a corrupted count field can never trigger a huge
/// allocation or a misparse. See the module docs for the guarantees.
pub fn read_snapshot<R: Read>(reader: R) -> Result<Snapshot> {
    let mut bytes = Vec::new();
    BufReader::new(reader).read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(Error::Corrupt(
            "file is too short to be a bitruss snapshot".into(),
        ));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(Error::Corrupt(
            "not a bitruss snapshot (magic bytes mismatch)".into(),
        ));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = le_u64(trailer);
    let computed = fnv_update(FNV_OFFSET, payload);
    let version = le_u32(&payload[8..12]);
    if version != FORMAT_VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported snapshot version {version} (this build reads version {FORMAT_VERSION})"
        )));
    }
    if stored != computed {
        return Err(Error::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) — \
             the file is damaged"
        )));
    }

    let mut r: &[u8] = &payload[12..];

    let num_upper = r_u32(&mut r)?;
    let num_lower = r_u32(&mut r)?;
    let m = r_u32(&mut r)? as usize;
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(m.min(PREALLOC_CAP));
    for _ in 0..m {
        let u = r_u32(&mut r)?;
        let v = r_u32(&mut r)?;
        // Strictly ascending pairs ⇒ sorted, duplicate-free, and the
        // builder reproduces the writer's edge ids exactly (so φ stays
        // aligned by position).
        if pairs.last().is_some_and(|&last| last >= (u, v)) {
            return Err(Error::Corrupt(
                "edge section is not strictly ascending".into(),
            ));
        }
        pairs.push((u, v));
    }
    let graph = GraphBuilder::new()
        .with_upper(num_upper)
        .with_lower(num_lower)
        .add_edges(pairs)
        .build()
        .map_err(|e| Error::Corrupt(format!("snapshot graph is invalid: {e}")))?;

    let phi = r_vec_u64(&mut r, m)?;
    let decomposition = Decomposition::new(phi);

    let hierarchy = match r_u8(&mut r)? {
        0 => None,
        1 => {
            let n = graph.num_vertices() as usize;
            let num_levels = r_u32(&mut r)? as usize;
            let levels = r_vec_u64(&mut r, num_levels)?;
            let mut count_ge = Vec::with_capacity(num_levels.min(PREALLOC_CAP));
            for _ in 0..num_levels {
                count_ge.push(r_usize(&mut r)?);
            }
            let perm = r_vec_u32(&mut r, m)?;
            let num_nodes = r_u32(&mut r)? as usize;
            let node_level = r_vec_u64(&mut r, num_nodes)?;
            let node_parent = r_vec_u32(&mut r, num_nodes)?;
            let mut node_edge_offsets = Vec::with_capacity((num_nodes + 1).min(PREALLOC_CAP));
            for _ in 0..num_nodes + 1 {
                node_edge_offsets.push(r_usize(&mut r)?);
            }
            let node_edge_ids = r_vec_u32(&mut r, m)?;
            let edge_node = r_vec_u32(&mut r, m)?;
            let vertex_max_k = r_vec_u64(&mut r, n)?;
            let h = BitrussHierarchy::from_parts(
                m,
                n,
                levels,
                count_ge,
                perm,
                node_level,
                node_parent,
                node_edge_offsets,
                node_edge_ids,
                edge_node,
                vertex_max_k,
            )?;
            h.validate_against_phi(&graph, &decomposition.phi)?;
            Some(h)
        }
        other => {
            return Err(Error::Corrupt(format!(
                "unknown hierarchy flag {other} (expected 0 or 1)"
            )))
        }
    };

    if !r.is_empty() {
        return Err(Error::Corrupt(format!(
            "{} unexpected trailing bytes after the last section",
            r.len()
        )));
    }

    Ok(Snapshot {
        graph,
        decomposition,
        hierarchy,
    })
}

/// Reads a snapshot from a file path; see [`read_snapshot`]. Errors
/// name the offending file.
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<Snapshot> {
    let path = path.as_ref();
    // Through the Vfs (not std::fs) so reads share the store's audited
    // I/O layer; read_snapshot consumes the whole stream either way.
    let bytes = StdVfs
        .read(path)
        .map_err(|e| crate::persist::store::io_ctx(path, e))?;
    read_snapshot(&bytes[..]).map_err(|e| crate::persist::store::err_ctx(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{decompose, Algorithm};

    fn sample() -> (BipartiteGraph, Decomposition, BitrussHierarchy) {
        let g = GraphBuilder::new()
            .with_upper(12)
            .with_lower(9)
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
            ])
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        (g, d, h)
    }

    fn snapshot_bytes() -> (Vec<u8>, BipartiteGraph, Decomposition, BitrussHierarchy) {
        let (g, d, h) = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &d, Some(&h), &mut buf).unwrap();
        (buf, g, d, h)
    }

    #[test]
    fn round_trip_with_hierarchy() {
        let (buf, g, d, h) = snapshot_bytes();
        let snap = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(snap.graph.edge_pairs(), g.edge_pairs());
        assert_eq!(snap.graph.num_upper(), 12);
        assert_eq!(snap.graph.num_lower(), 9);
        assert_eq!(snap.decomposition, d);
        assert_eq!(snap.hierarchy.as_ref(), Some(&h));
    }

    #[test]
    fn round_trip_without_hierarchy() {
        let (g, d, _) = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &d, None, &mut buf).unwrap();
        let snap = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(snap.graph.edge_pairs(), g.edge_pairs());
        assert_eq!(snap.decomposition, d);
        assert!(snap.hierarchy.is_none());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build().unwrap();
        let d = Decomposition::new(vec![]);
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        let mut buf = Vec::new();
        write_snapshot(&g, &d, Some(&h), &mut buf).unwrap();
        let snap = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(snap.graph.num_edges(), 0);
        assert_eq!(snap.hierarchy, Some(h));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let (mut buf, ..) = snapshot_bytes();
        let mut wrong = buf.clone();
        wrong[0] ^= 0xff;
        let err = read_snapshot(wrong.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        buf[8] = 99; // version field
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (buf, ..) = snapshot_bytes();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                read_snapshot(bad.as_slice()).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let (buf, ..) = snapshot_bytes();
        for len in 0..buf.len() {
            assert!(
                read_snapshot(&buf[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn tampered_vertex_max_k_fails_cross_validation() {
        // A forged file can carry a valid checksum (FNV is not
        // cryptographic), so the φ cross-validation must catch sections
        // the structural checks cannot: rewrite one vertex_max_k entry
        // and re-stamp the trailer.
        let (mut buf, g, ..) = snapshot_bytes();
        let n = g.num_vertices() as usize;
        let len = buf.len();
        let section = len - 8 - n * 8; // last section before the trailer
        buf[section..section + 8].copy_from_slice(&999u64.to_le_bytes());
        let hash = fnv_update(FNV_OFFSET, &buf[..len - 8]);
        buf[len - 8..].copy_from_slice(&hash.to_le_bytes());
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("max-k"), "{err}");
    }

    #[test]
    fn mismatched_inputs_are_invariant_errors() {
        let (g, _, h) = sample();
        let short = Decomposition::new(vec![0]);
        let mut buf = Vec::new();
        assert!(matches!(
            write_snapshot(&g, &short, None, &mut buf),
            Err(Error::Invariant(_))
        ));
        let g2 = GraphBuilder::new().add_edge(0, 0).build().unwrap();
        let d2 = Decomposition::new(vec![0]);
        assert!(matches!(
            write_snapshot(&g2, &d2, Some(&h), &mut buf),
            Err(Error::Invariant(_))
        ));
    }
}
