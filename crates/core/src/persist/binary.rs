//! Versioned, checksummed binary snapshots of graph + φ + hierarchy.
//!
//! A snapshot is the unit a query server loads once and serves from: the
//! bipartite graph, its bitruss numbers, and (optionally) the prebuilt
//! [`BitrussHierarchy`], so neither the minutes-long decomposition nor
//! the index build is ever repeated.
//!
//! # Layout (format version 2)
//!
//! All integers are **little-endian**; `u32`s carry ids/counts bounded by
//! the graph's `u32` id space, `u64`s carry φ values and offsets.
//!
//! After the 12-byte preamble (`magic` then `version`), the file is a
//! sequence of independently checksummed **section frames**:
//!
//! ```text
//! magic    8 × u8   "BTRSNAP\0"
//! version  u32      2
//! frame*   u8 tag, u64 payload_len, payload bytes,
//!          u64 FNV-1a-64 over (tag | payload_len | payload)
//! ```
//!
//! Frames appear in a fixed order — `GRAPH` (tag 1), `PHI` (tag 2), an
//! optional `HIERARCHY` (tag 3), and a terminating `END` (tag 0xEE,
//! empty payload) — so a file torn at a frame boundary can never pass
//! for a complete snapshot that merely lacked the optional section.
//! Section payloads:
//!
//! ```text
//! GRAPH     u32 num_upper, u32 num_lower, u32 num_edges,
//!           then per edge: u32 upper_local, u32 lower_local
//!           (strictly ascending (upper, lower) pairs — edge-id order)
//! PHI       u64 × num_edges
//! HIERARCHY u32 L, u64 levels × L, u64 count_ge × L,
//!           u32 perm × num_edges,
//!           u32 N (forest nodes), u64 node_level × N, u32 node_parent × N,
//!           u64 node_edge_offsets × (N+1), u32 node_edge_ids × num_edges,
//!           u32 edge_node × num_edges, u64 vertex_max_k × num_vertices
//! ```
//!
//! Per-section checksums localize damage ("checksum mismatch in the phi
//! section" instead of "somewhere in the file") and let the reader
//! verify each section as it streams past instead of buffering the whole
//! file first.
//!
//! # Versioning policy
//!
//! The version is bumped whenever the byte layout changes; readers accept
//! exactly the versions they know and reject newer files with a clear
//! [`Error::Corrupt`] naming both versions, so stale binaries fail loudly
//! instead of misreading new snapshots. Version-1 files (one whole-file
//! trailer checksum instead of section frames) are still read: the
//! reader falls back to buffering and verifying the whole payload, so
//! snapshots written before the frame format keep loading byte-for-byte
//! identically.
//!
//! # Corruption handling
//!
//! Every load failure — bad magic, unsupported version, truncation,
//! structurally impossible sections, or a trailer checksum mismatch —
//! surfaces as [`Error::Corrupt`] (or [`Error::Io`] for genuine I/O
//! failures); loading never panics on hostile bytes. A successfully
//! loaded hierarchy is additionally cross-validated against the φ array,
//! so its answers are guaranteed to match the decomposition.

use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::Path;

use bigraph::{BipartiteGraph, Error, GraphBuilder, Result};

use crate::decomposition::Decomposition;
use crate::hierarchy::BitrussHierarchy;
use crate::persist::check_matching;
use crate::persist::vfs::{StdVfs, Vfs};
use crate::persist::{le_u32, le_u64};

/// Magic bytes opening every snapshot.
const MAGIC: [u8; 8] = *b"BTRSNAP\0";

/// Current snapshot format version (see the module docs for the policy).
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version this build still reads (whole-file checksum).
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Section tags of the version-2 frame format.
const TAG_GRAPH: u8 = 1;
const TAG_PHI: u8 = 2;
const TAG_HIERARCHY: u8 = 3;
const TAG_END: u8 = 0xee;

/// Human name of a section tag, for error messages.
fn tag_name(tag: u8) -> &'static str {
    match tag {
        TAG_GRAPH => "graph",
        TAG_PHI => "phi",
        TAG_HIERARCHY => "hierarchy",
        TAG_END => "end",
        _ => "unknown",
    }
}

/// Cap on speculative `Vec` pre-allocation while reading, so a corrupt
/// count field cannot trigger a huge allocation before EOF detection.
const PREALLOC_CAP: usize = 1 << 20;

/// A loaded snapshot: the graph, its decomposition, and the hierarchy
/// index when one was persisted.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The bipartite graph, with declared layer sizes (isolated vertices
    /// included) and the exact edge ids of the writer.
    pub graph: BipartiteGraph,
    /// The bitruss numbers, aligned with the graph's edge ids.
    pub decomposition: Decomposition,
    /// The hierarchy index, when the snapshot carried one.
    pub hierarchy: Option<BitrussHierarchy>,
}

// ---------------------------------------------------------------------
// FNV-1a-64 running checksum, wrapped around the raw reader/writer.

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------
// Primitive readers/writers (truncation → Error::Corrupt).

fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            Error::Corrupt("snapshot truncated mid-section".into())
        } else {
            Error::Io(e)
        }
    })
}

fn w_u8<W: Write>(w: &mut W, x: u8) -> Result<()> {
    w.write_all(&[x])?;
    Ok(())
}

fn w_u32<W: Write>(w: &mut W, x: u32) -> Result<()> {
    w.write_all(&x.to_le_bytes())?;
    Ok(())
}

fn w_u64<W: Write>(w: &mut W, x: u64) -> Result<()> {
    w.write_all(&x.to_le_bytes())?;
    Ok(())
}

fn r_u8<R: Read>(r: &mut R) -> Result<u8> {
    let mut b = [0u8; 1];
    read_fully(r, &mut b)?;
    Ok(b[0])
}

fn r_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    read_fully(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    read_fully(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_vec_u32<R: Read>(r: &mut R, count: usize) -> Result<Vec<u32>> {
    let mut v = Vec::with_capacity(count.min(PREALLOC_CAP));
    for _ in 0..count {
        v.push(r_u32(r)?);
    }
    Ok(v)
}

fn r_vec_u64<R: Read>(r: &mut R, count: usize) -> Result<Vec<u64>> {
    let mut v = Vec::with_capacity(count.min(PREALLOC_CAP));
    for _ in 0..count {
        v.push(r_u64(r)?);
    }
    Ok(v)
}

/// `usize` from a persisted `u64` offset/count, rejecting values that
/// cannot index this platform's memory.
fn r_usize<R: Read>(r: &mut R) -> Result<usize> {
    usize::try_from(r_u64(r)?)
        .map_err(|_| Error::Corrupt("offset exceeds the platform's address space".into()))
}

// ---------------------------------------------------------------------
// Writing.

/// Writes a snapshot of `g`, `d`, and optionally a prebuilt hierarchy.
///
/// # Errors
///
/// [`Error::Invariant`] when `d` (or `h`) does not belong to `g`;
/// [`Error::Io`] on write failures.
pub fn write_snapshot<W: Write>(
    g: &BipartiteGraph,
    d: &Decomposition,
    h: Option<&BitrussHierarchy>,
    writer: W,
) -> Result<()> {
    check_matching(g, d)?;
    if let Some(h) = h {
        if h.num_edges() != g.num_edges() as usize {
            return Err(Error::Invariant(format!(
                "hierarchy indexes {} edges but the graph has {}",
                h.num_edges(),
                g.num_edges()
            )));
        }
    }
    let mut w = BufWriter::new(writer);
    w.write_all(&MAGIC)?;
    w_u32(&mut w, FORMAT_VERSION)?;

    let mut payload = Vec::new();
    w_u32(&mut payload, g.num_upper())?;
    w_u32(&mut payload, g.num_lower())?;
    w_u32(&mut payload, g.num_edges())?;
    for e in g.edges() {
        let (u, v) = g.edge(e);
        w_u32(&mut payload, g.layer_index(u))?;
        w_u32(&mut payload, g.layer_index(v))?;
    }
    write_frame(&mut w, TAG_GRAPH, &payload)?;

    payload.clear();
    for &p in &d.phi {
        w_u64(&mut payload, p)?;
    }
    write_frame(&mut w, TAG_PHI, &payload)?;

    if let Some(h) = h {
        payload.clear();
        w_u32(&mut payload, h.levels.len() as u32)?;
        for &l in &h.levels {
            w_u64(&mut payload, l)?;
        }
        for &c in &h.count_ge {
            w_u64(&mut payload, c as u64)?;
        }
        for &e in &h.perm {
            w_u32(&mut payload, e)?;
        }
        w_u32(&mut payload, h.node_level.len() as u32)?;
        for &l in &h.node_level {
            w_u64(&mut payload, l)?;
        }
        for &p in &h.node_parent {
            w_u32(&mut payload, p)?;
        }
        for &o in &h.node_edge_offsets {
            w_u64(&mut payload, o as u64)?;
        }
        for &e in &h.node_edge_ids {
            w_u32(&mut payload, e)?;
        }
        for &n in &h.edge_node {
            w_u32(&mut payload, n)?;
        }
        for &k in &h.vertex_max_k {
            w_u64(&mut payload, k)?;
        }
        write_frame(&mut w, TAG_HIERARCHY, &payload)?;
    }

    write_frame(&mut w, TAG_END, &[])?;
    w.flush()?;
    Ok(())
}

/// Emits one version-2 section frame: `tag | len | payload | fnv`, the
/// checksum covering everything before it in the frame.
fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> Result<()> {
    w_u8(w, tag)?;
    w_u64(w, payload.len() as u64)?;
    w.write_all(payload)?;
    let mut hash = fnv_update(FNV_OFFSET, &[tag]);
    hash = fnv_update(hash, &(payload.len() as u64).to_le_bytes());
    hash = fnv_update(hash, payload);
    w_u64(w, hash)?;
    Ok(())
}

/// Writes a snapshot to a file path; see [`write_snapshot`].
///
/// The write is **atomic and durable**: the snapshot is buffered, then
/// committed via temp-file + fsync + rename + directory fsync
/// ([`crate::persist::store::write_bytes_atomic_std`]), so a crash
/// mid-write can never leave a torn file at `path`, and errors name the
/// offending file.
pub fn write_snapshot_file<P: AsRef<Path>>(
    g: &BipartiteGraph,
    d: &Decomposition,
    h: Option<&BitrussHierarchy>,
    path: P,
) -> Result<()> {
    let mut bytes = Vec::new();
    write_snapshot(g, d, h, &mut bytes)?;
    crate::persist::store::write_bytes_atomic_std(path.as_ref(), &bytes)
}

// ---------------------------------------------------------------------
// Reading.

/// Reads a snapshot written by [`write_snapshot`] (or any still-
/// supported older version), verifying the magic, version, checksums,
/// and every structural invariant. Version-2 files verify each section
/// frame as it streams past — a mismatch names the damaged section;
/// version-1 files fall back to buffering the whole payload and
/// verifying its single trailer checksum before any section is
/// interpreted. Either way a corrupted count field can never trigger a
/// huge allocation or a misparse. See the module docs for the
/// guarantees.
pub fn read_snapshot<R: Read>(reader: R) -> Result<Snapshot> {
    let mut r = BufReader::new(reader);
    let mut preamble = [0u8; 12];
    r.read_exact(&mut preamble).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            Error::Corrupt("file is too short to be a bitruss snapshot".into())
        } else {
            Error::Io(e)
        }
    })?;
    if preamble[..MAGIC.len()] != MAGIC {
        return Err(Error::Corrupt(
            "not a bitruss snapshot (magic bytes mismatch)".into(),
        ));
    }
    match le_u32(&preamble[8..12]) {
        1 => read_snapshot_v1(&mut r, &preamble),
        FORMAT_VERSION => read_snapshot_v2(&mut r),
        version => Err(Error::Corrupt(format!(
            "unsupported snapshot version {version} (this build reads versions \
             {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
        ))),
    }
}

/// The version-1 fallback: one FNV trailer over the whole file, all
/// sections concatenated in a single payload.
fn read_snapshot_v1<R: Read>(r: &mut R, preamble: &[u8; 12]) -> Result<Snapshot> {
    let mut bytes = preamble.to_vec();
    r.read_to_end(&mut bytes)?;
    if bytes.len() < preamble.len() + 8 {
        return Err(Error::Corrupt(
            "file is too short to be a bitruss snapshot".into(),
        ));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = le_u64(trailer);
    let computed = fnv_update(FNV_OFFSET, payload);
    if stored != computed {
        return Err(Error::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) — \
             the file is damaged"
        )));
    }

    let mut s: &[u8] = &payload[12..];
    let graph = parse_graph(&mut s)?;
    let m = graph.num_edges() as usize;
    let decomposition = Decomposition::new(r_vec_u64(&mut s, m)?);
    let hierarchy = match r_u8(&mut s)? {
        0 => None,
        1 => Some(parse_hierarchy(&mut s, &graph, &decomposition)?),
        other => {
            return Err(Error::Corrupt(format!(
                "unknown hierarchy flag {other} (expected 0 or 1)"
            )))
        }
    };
    if !s.is_empty() {
        return Err(Error::Corrupt(format!(
            "{} unexpected trailing bytes after the last section",
            s.len()
        )));
    }
    Ok(Snapshot {
        graph,
        decomposition,
        hierarchy,
    })
}

/// The version-2 streaming reader: fixed frame order GRAPH, PHI,
/// optional HIERARCHY, END; each frame verified independently.
fn read_snapshot_v2<R: Read>(r: &mut R) -> Result<Snapshot> {
    let (tag, payload) = read_frame(r)?;
    if tag != TAG_GRAPH {
        return Err(Error::Corrupt(format!(
            "expected the graph section first, found the {} section (tag {tag:#04x})",
            tag_name(tag)
        )));
    }
    let mut s: &[u8] = &payload;
    let graph = parse_graph(&mut s)?;
    section_fully_consumed(s, TAG_GRAPH)?;

    let (tag, payload) = read_frame(r)?;
    if tag != TAG_PHI {
        return Err(Error::Corrupt(format!(
            "expected the phi section after the graph, found the {} section (tag {tag:#04x})",
            tag_name(tag)
        )));
    }
    let m = graph.num_edges() as usize;
    let mut s: &[u8] = &payload;
    let decomposition = Decomposition::new(r_vec_u64(&mut s, m)?);
    section_fully_consumed(s, TAG_PHI)?;

    let (tag, payload) = read_frame(r)?;
    let (hierarchy, end_tag) = match tag {
        TAG_HIERARCHY => {
            let mut s: &[u8] = &payload;
            let h = parse_hierarchy(&mut s, &graph, &decomposition)?;
            section_fully_consumed(s, TAG_HIERARCHY)?;
            let (tag, _) = read_frame(r)?;
            (Some(h), tag)
        }
        other => (None, other),
    };
    if end_tag != TAG_END {
        return Err(Error::Corrupt(format!(
            "expected the end marker, found the {} section (tag {end_tag:#04x})",
            tag_name(end_tag)
        )));
    }
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(Error::Corrupt(
            "unexpected trailing bytes after the end marker".into(),
        ));
    }
    Ok(Snapshot {
        graph,
        decomposition,
        hierarchy,
    })
}

/// Reads and verifies one version-2 frame, returning its tag and
/// payload. Truncation and checksum mismatches name the section.
fn read_frame<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>)> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            Error::Corrupt("snapshot ends before its end marker (torn file?)".into())
        } else {
            Error::Io(e)
        }
    })?;
    let tag = tag[0];
    let len = r_u64(r)?;
    let mut payload = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
    let mut chunk = vec![0u8; 64 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(chunk.len() as u64) as usize;
        read_fully(r, &mut chunk[..take])?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take as u64;
    }
    let stored = r_u64(r)?;
    let mut computed = fnv_update(FNV_OFFSET, &[tag]);
    computed = fnv_update(computed, &len.to_le_bytes());
    computed = fnv_update(computed, &payload);
    if stored != computed {
        return Err(Error::Corrupt(format!(
            "checksum mismatch in the {} section (stored {stored:#018x}, computed \
             {computed:#018x}) — the file is damaged",
            tag_name(tag)
        )));
    }
    Ok((tag, payload))
}

/// Rejects leftover bytes after a section parser finished.
fn section_fully_consumed(rest: &[u8], tag: u8) -> Result<()> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(Error::Corrupt(format!(
            "{} unexpected trailing bytes in the {} section",
            rest.len(),
            tag_name(tag)
        )))
    }
}

/// Parses the graph section payload (shared by both format versions).
fn parse_graph(r: &mut &[u8]) -> Result<BipartiteGraph> {
    let num_upper = r_u32(r)?;
    let num_lower = r_u32(r)?;
    let m = r_u32(r)? as usize;
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(m.min(PREALLOC_CAP));
    for _ in 0..m {
        let u = r_u32(r)?;
        let v = r_u32(r)?;
        // Strictly ascending pairs ⇒ sorted, duplicate-free, and the
        // builder reproduces the writer's edge ids exactly (so φ stays
        // aligned by position).
        if pairs.last().is_some_and(|&last| last >= (u, v)) {
            return Err(Error::Corrupt(
                "edge section is not strictly ascending".into(),
            ));
        }
        pairs.push((u, v));
    }
    GraphBuilder::new()
        .with_upper(num_upper)
        .with_lower(num_lower)
        .add_edges(pairs)
        .build()
        .map_err(|e| Error::Corrupt(format!("snapshot graph is invalid: {e}")))
}

/// Parses the hierarchy section payload and cross-validates it against
/// φ (shared by both format versions).
fn parse_hierarchy(
    r: &mut &[u8],
    graph: &BipartiteGraph,
    decomposition: &Decomposition,
) -> Result<BitrussHierarchy> {
    let m = graph.num_edges() as usize;
    let n = graph.num_vertices() as usize;
    let num_levels = r_u32(r)? as usize;
    let levels = r_vec_u64(r, num_levels)?;
    let mut count_ge = Vec::with_capacity(num_levels.min(PREALLOC_CAP));
    for _ in 0..num_levels {
        count_ge.push(r_usize(r)?);
    }
    let perm = r_vec_u32(r, m)?;
    let num_nodes = r_u32(r)? as usize;
    let node_level = r_vec_u64(r, num_nodes)?;
    let node_parent = r_vec_u32(r, num_nodes)?;
    let mut node_edge_offsets = Vec::with_capacity((num_nodes + 1).min(PREALLOC_CAP));
    for _ in 0..num_nodes + 1 {
        node_edge_offsets.push(r_usize(r)?);
    }
    let node_edge_ids = r_vec_u32(r, m)?;
    let edge_node = r_vec_u32(r, m)?;
    let vertex_max_k = r_vec_u64(r, n)?;
    let h = BitrussHierarchy::from_parts(
        m,
        n,
        levels,
        count_ge,
        perm,
        node_level,
        node_parent,
        node_edge_offsets,
        node_edge_ids,
        edge_node,
        vertex_max_k,
    )?;
    h.validate_against_phi(graph, &decomposition.phi)?;
    Ok(h)
}

/// Reads a snapshot from a file path; see [`read_snapshot`]. Errors
/// name the offending file.
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<Snapshot> {
    let path = path.as_ref();
    // Through the Vfs (not std::fs) so reads share the store's audited
    // I/O layer; read_snapshot consumes the whole stream either way.
    let bytes = StdVfs
        .read(path)
        .map_err(|e| crate::persist::store::io_ctx(path, e))?;
    read_snapshot(&bytes[..]).map_err(|e| crate::persist::store::err_ctx(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{decompose, Algorithm};

    fn sample() -> (BipartiteGraph, Decomposition, BitrussHierarchy) {
        let g = GraphBuilder::new()
            .with_upper(12)
            .with_lower(9)
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
            ])
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        (g, d, h)
    }

    fn snapshot_bytes() -> (Vec<u8>, BipartiteGraph, Decomposition, BitrussHierarchy) {
        let (g, d, h) = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &d, Some(&h), &mut buf).unwrap();
        (buf, g, d, h)
    }

    #[test]
    fn round_trip_with_hierarchy() {
        let (buf, g, d, h) = snapshot_bytes();
        let snap = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(snap.graph.edge_pairs(), g.edge_pairs());
        assert_eq!(snap.graph.num_upper(), 12);
        assert_eq!(snap.graph.num_lower(), 9);
        assert_eq!(snap.decomposition, d);
        assert_eq!(snap.hierarchy.as_ref(), Some(&h));
    }

    #[test]
    fn round_trip_without_hierarchy() {
        let (g, d, _) = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &d, None, &mut buf).unwrap();
        let snap = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(snap.graph.edge_pairs(), g.edge_pairs());
        assert_eq!(snap.decomposition, d);
        assert!(snap.hierarchy.is_none());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build().unwrap();
        let d = Decomposition::new(vec![]);
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        let mut buf = Vec::new();
        write_snapshot(&g, &d, Some(&h), &mut buf).unwrap();
        let snap = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(snap.graph.num_edges(), 0);
        assert_eq!(snap.hierarchy, Some(h));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let (mut buf, ..) = snapshot_bytes();
        let mut wrong = buf.clone();
        wrong[0] ^= 0xff;
        let err = read_snapshot(wrong.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        buf[8] = 99; // version field
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (buf, ..) = snapshot_bytes();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                read_snapshot(bad.as_slice()).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let (buf, ..) = snapshot_bytes();
        for len in 0..buf.len() {
            assert!(
                read_snapshot(&buf[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    /// Walks the version-2 frames of `buf`, returning
    /// `(frame_start, tag, payload_len)` per frame.
    fn frames(buf: &[u8]) -> Vec<(usize, u8, usize)> {
        let mut out = Vec::new();
        let mut pos = 12;
        while pos < buf.len() {
            let tag = buf[pos];
            let len = u64::from_le_bytes(buf[pos + 1..pos + 9].try_into().unwrap()) as usize;
            out.push((pos, tag, len));
            pos += 1 + 8 + len + 8;
        }
        out
    }

    /// Recomputes the checksum of the frame starting at `start` after a
    /// test tampered with its payload.
    fn restamp_frame(buf: &mut [u8], start: usize) {
        let tag = buf[start];
        let len = u64::from_le_bytes(buf[start + 1..start + 9].try_into().unwrap()) as usize;
        let mut h = fnv_update(FNV_OFFSET, &[tag]);
        h = fnv_update(h, &(len as u64).to_le_bytes());
        h = fnv_update(h, &buf[start + 9..start + 9 + len]);
        buf[start + 9 + len..start + 9 + len + 8].copy_from_slice(&h.to_le_bytes());
    }

    #[test]
    fn tampered_vertex_max_k_fails_cross_validation() {
        // A forged file can carry valid checksums (FNV is not
        // cryptographic), so the φ cross-validation must catch sections
        // the structural checks cannot: rewrite one vertex_max_k entry
        // and re-stamp its frame.
        let (mut buf, g, ..) = snapshot_bytes();
        let n = g.num_vertices() as usize;
        let (start, tag, len) = *frames(&buf)
            .iter()
            .find(|&&(_, tag, _)| tag == super::TAG_HIERARCHY)
            .unwrap();
        assert_eq!(tag, super::TAG_HIERARCHY);
        // vertex_max_k is the last field of the hierarchy payload.
        let entry = start + 9 + len - n * 8;
        buf[entry..entry + 8].copy_from_slice(&999u64.to_le_bytes());
        restamp_frame(&mut buf, start);
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("max-k"), "{err}");
    }

    #[test]
    fn corruption_errors_name_the_damaged_section() {
        let (mut buf, ..) = snapshot_bytes();
        let (start, tag, len) = frames(&buf)[1];
        assert_eq!(tag, super::TAG_PHI);
        assert!(len > 0);
        buf[start + 9] ^= 0x01; // first payload byte of the phi section
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("phi section"),
            "error should localize the damage: {err}"
        );
    }

    #[test]
    fn torn_file_at_a_frame_boundary_is_rejected() {
        // Cutting the file exactly after the phi frame leaves a
        // structurally clean prefix — the end marker is what must make
        // it fail instead of loading as a hierarchy-less snapshot.
        let (buf, ..) = snapshot_bytes();
        let (start, tag, _) = frames(&buf)[2];
        assert_eq!(tag, super::TAG_HIERARCHY);
        let err = read_snapshot(&buf[..start]).unwrap_err();
        assert!(err.to_string().contains("end marker"), "{err}");
    }

    /// Serializes `g`/`d`/`h` in the legacy version-1 layout: one
    /// contiguous payload, a hierarchy flag byte, one whole-file FNV
    /// trailer.
    fn v1_bytes(g: &BipartiteGraph, d: &Decomposition, h: Option<&BitrussHierarchy>) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        let push_u32 = |buf: &mut Vec<u8>, x: u32| buf.extend_from_slice(&x.to_le_bytes());
        let push_u64 = |buf: &mut Vec<u8>, x: u64| buf.extend_from_slice(&x.to_le_bytes());
        push_u32(&mut buf, g.num_upper());
        push_u32(&mut buf, g.num_lower());
        push_u32(&mut buf, g.num_edges());
        for e in g.edges() {
            let (u, v) = g.edge(e);
            push_u32(&mut buf, g.layer_index(u));
            push_u32(&mut buf, g.layer_index(v));
        }
        for &p in &d.phi {
            push_u64(&mut buf, p);
        }
        match h {
            None => buf.push(0),
            Some(h) => {
                buf.push(1);
                push_u32(&mut buf, h.levels.len() as u32);
                for &l in &h.levels {
                    push_u64(&mut buf, l);
                }
                for &c in &h.count_ge {
                    push_u64(&mut buf, c as u64);
                }
                for &e in &h.perm {
                    push_u32(&mut buf, e);
                }
                push_u32(&mut buf, h.node_level.len() as u32);
                for &l in &h.node_level {
                    push_u64(&mut buf, l);
                }
                for &p in &h.node_parent {
                    push_u32(&mut buf, p);
                }
                for &o in &h.node_edge_offsets {
                    push_u64(&mut buf, o as u64);
                }
                for &e in &h.node_edge_ids {
                    push_u32(&mut buf, e);
                }
                for &n in &h.edge_node {
                    push_u32(&mut buf, n);
                }
                for &k in &h.vertex_max_k {
                    push_u64(&mut buf, k);
                }
            }
        }
        let hash = fnv_update(FNV_OFFSET, &buf);
        buf.extend_from_slice(&hash.to_le_bytes());
        buf
    }

    #[test]
    fn version_1_files_still_load() {
        let (g, d, h) = sample();
        for with_h in [false, true] {
            let buf = v1_bytes(&g, &d, with_h.then_some(&h));
            let snap = read_snapshot(buf.as_slice()).unwrap();
            assert_eq!(snap.graph.edge_pairs(), g.edge_pairs());
            assert_eq!(snap.decomposition, d);
            assert_eq!(snap.hierarchy.is_some(), with_h);
            if with_h {
                assert_eq!(snap.hierarchy, Some(h.clone()));
            }
        }
    }

    #[test]
    fn version_1_byte_flips_and_truncations_are_detected() {
        let (g, d, h) = sample();
        let buf = v1_bytes(&g, &d, Some(&h));
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                read_snapshot(bad.as_slice()).is_err(),
                "v1 flip at byte {i} went undetected"
            );
        }
        for len in 0..buf.len() {
            assert!(
                read_snapshot(&buf[..len]).is_err(),
                "v1 truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn mismatched_inputs_are_invariant_errors() {
        let (g, _, h) = sample();
        let short = Decomposition::new(vec![0]);
        let mut buf = Vec::new();
        assert!(matches!(
            write_snapshot(&g, &short, None, &mut buf),
            Err(Error::Invariant(_))
        ));
        let g2 = GraphBuilder::new().add_edge(0, 0).build().unwrap();
        let d2 = Decomposition::new(vec![0]);
        assert!(matches!(
            write_snapshot(&g2, &d2, Some(&h), &mut buf),
            Err(Error::Invariant(_))
        ));
    }
}
