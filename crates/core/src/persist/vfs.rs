//! Re-export of the pluggable I/O layer, which moved to
//! [`bigraph::vfs`] so the out-of-core storage tier
//! (`bitruss_storage`) can share the same fault-injectable seam
//! without depending on this crate. All types are unchanged; existing
//! `bitruss_core::persist::vfs::…` paths keep working.

pub use bigraph::vfs::*;
