//! Tip decomposition — the *vertex* analogue of bitruss decomposition,
//! introduced alongside it by Sarıyüce & Pinar (the paper's ref. \[5\]).
//!
//! The k-tip is the maximal subgraph in which every vertex of the chosen
//! layer is contained in at least `k` butterflies; the tip number `θ(x)`
//! of a vertex is the largest `k` with `x` in a k-tip. Peeling removes
//! the minimum-count vertex of the chosen layer; a key simplification
//! over edge peeling is that butterflies between two surviving vertices
//! of the peeled layer never change until one of them is removed (the
//! opposite layer is never touched), so each removal only needs one
//! wedge scan from the removed vertex.

use bigraph::{BipartiteGraph, VertexId};
use butterfly::count_per_vertex;

use crate::bucket_queue::BucketQueue;

/// Which layer tip decomposition peels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TipLayer {
    /// Peel the upper layer (`U(G)`).
    Upper,
    /// Peel the lower layer (`L(G)`).
    Lower,
}

/// Computes tip numbers for every vertex of the chosen layer, indexed by
/// the vertex's layer-local index.
pub fn tip_decomposition(g: &BipartiteGraph, layer: TipLayer) -> Vec<u64> {
    let layer_size = match layer {
        TipLayer::Upper => g.num_upper(),
        TipLayer::Lower => g.num_lower(),
    } as usize;
    let to_global = |i: u32| match layer {
        TipLayer::Upper => g.upper(i),
        TipLayer::Lower => g.lower(i),
    };
    let n = g.num_vertices() as usize;

    // Per-vertex butterfly counts restricted to the peeled layer,
    // re-indexed to layer-local positions so the bucket queue stays
    // compact.
    let global_counts = count_per_vertex(g);
    let mut counts: Vec<u64> = (0..layer_size as u32)
        .map(|i| global_counts[to_global(i).index()])
        .collect();

    let mut queue = BucketQueue::new(&counts, |_| true);
    let mut theta = vec![0u64; layer_size];
    let mut removed = vec![false; layer_size];

    // Scratch for the per-removal wedge scan.
    let mut pair_count = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::new();

    while let Some((level, x)) = queue.pop_min(&counts) {
        theta[x.index()] = level;
        removed[x.index()] = true;
        let u = to_global(x.0);

        // Count wedges u–v–w to surviving same-layer vertices w; the
        // pair (u, w) loses C(c, 2) butterflies.
        touched.clear();
        for (v, _) in g.neighbors(u) {
            for (w, _) in g.neighbors(v) {
                if w == u {
                    continue;
                }
                let w_local = g.layer_index(w) as usize;
                if removed[w_local] {
                    continue;
                }
                if pair_count[w.index()] == 0 {
                    touched.push(w.0);
                }
                pair_count[w.index()] += 1;
            }
        }
        for &w in &touched {
            let c = pair_count[w as usize] as u64;
            pair_count[w as usize] = 0;
            if c < 2 {
                continue;
            }
            let w_local = g.layer_index(VertexId(w)) as usize;
            let lost = c * (c - 1) / 2;
            if counts[w_local] > level {
                let old = counts[w_local];
                let new = level.max(old.saturating_sub(lost));
                counts[w_local] = new;
                queue.decrease(bigraph::EdgeId(w_local as u32), old, new);
            }
        }
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{edge_subgraph, GraphBuilder};

    /// Reference: recount per-vertex butterflies from scratch after every
    /// removal.
    fn reference_tip(g: &BipartiteGraph, layer: TipLayer) -> Vec<u64> {
        let layer_size = match layer {
            TipLayer::Upper => g.num_upper(),
            TipLayer::Lower => g.num_lower(),
        } as usize;
        let is_peeled_layer = |v: VertexId| match layer {
            TipLayer::Upper => g.is_upper(v),
            TipLayer::Lower => g.is_lower(v),
        };
        let mut alive = vec![true; layer_size];
        let mut theta = vec![0u64; layer_size];
        let mut level = 0u64;
        for _ in 0..layer_size {
            let sub = edge_subgraph(g, |e| {
                let (u, v) = g.edge(e);
                let peeled = if is_peeled_layer(u) { u } else { v };
                alive[g.layer_index(peeled) as usize]
            });
            // Map counts back to original layer indices. The induced
            // subgraph keeps the same vertex ids (edge_subgraph does not
            // relabel).
            let counts = butterfly::count_per_vertex(&sub.graph);
            let (min_i, &min_c) = (0..layer_size)
                .filter(|&i| alive[i])
                .map(|i| {
                    let global = match layer {
                        TipLayer::Upper => g.upper(i as u32),
                        TipLayer::Lower => g.lower(i as u32),
                    };
                    (i, &counts[global.index()])
                })
                .min_by_key(|&(i, &c)| (c, i))
                .expect("some vertex alive");
            level = level.max(min_c);
            theta[min_i] = level;
            alive[min_i] = false;
        }
        theta
    }

    #[test]
    fn complete_biclique_closed_form() {
        // K_{4,5}: every upper vertex in 3·C(5,2)=30 butterflies, all
        // symmetric ⇒ θ = 30 for all.
        let mut b = GraphBuilder::new();
        for u in 0..4 {
            for v in 0..5 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let theta = tip_decomposition(&g, TipLayer::Upper);
        assert_eq!(theta, vec![30; 4]);
        // Lower side: each lower vertex is in (5−1)·C(4,2) = 24.
        let theta = tip_decomposition(&g, TipLayer::Lower);
        assert_eq!(theta, vec![24; 5]);
    }

    #[test]
    fn matches_reference_on_fixture() {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap();
        for layer in [TipLayer::Upper, TipLayer::Lower] {
            assert_eq!(
                tip_decomposition(&g, layer),
                reference_tip(&g, layer),
                "{layer:?}"
            );
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..8 {
            let g = datagen::random::uniform(12, 12, 55, seed);
            for layer in [TipLayer::Upper, TipLayer::Lower] {
                assert_eq!(
                    tip_decomposition(&g, layer),
                    reference_tip(&g, layer),
                    "seed {seed} {layer:?}"
                );
            }
        }
    }

    #[test]
    fn star_has_zero_tips() {
        let mut b = GraphBuilder::new();
        for v in 0..8 {
            b.push_edge(0, v);
        }
        let g = b.build().unwrap();
        assert!(tip_decomposition(&g, TipLayer::Upper)
            .iter()
            .all(|&t| t == 0));
        assert!(tip_decomposition(&g, TipLayer::Lower)
            .iter()
            .all(|&t| t == 0));
    }

    #[test]
    fn tip_bounded_by_butterfly_count() {
        let g = datagen::powerlaw::chung_lu(40, 40, 400, 2.0, 2.0, 9);
        let counts = butterfly::count_per_vertex(&g);
        let theta = tip_decomposition(&g, TipLayer::Upper);
        for i in 0..g.num_upper() {
            assert!(theta[i as usize] <= counts[g.upper(i).index()]);
        }
    }
}
