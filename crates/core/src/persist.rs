//! Plain-text persistence of decomposition results.
//!
//! Decomposing a large graph takes minutes; querying its hierarchy should
//! not require redoing it. The format is one `upper lower phi` triple per
//! line with a size header, so files are diffable, greppable, and
//! readable back next to the original edge list.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use bigraph::{BipartiteGraph, Error, Result};

use crate::decomposition::Decomposition;

/// Writes `g`'s edges with their bitruss numbers: a header line followed
/// by one `upper lower phi` triple per line (layer-local 0-based ids, in
/// edge-id order).
pub fn write_decomposition<W: Write>(
    g: &BipartiteGraph,
    d: &Decomposition,
    writer: W,
) -> Result<()> {
    assert_eq!(d.phi.len(), g.num_edges() as usize);
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "% bitruss decomposition: {} upper, {} lower, {} edges, max phi {}",
        g.num_upper(),
        g.num_lower(),
        g.num_edges(),
        d.max_bitruss()
    )?;
    for e in g.edges() {
        let (u, v) = g.edge(e);
        writeln!(
            w,
            "{} {} {}",
            g.layer_index(u),
            g.layer_index(v),
            d.phi[e.index()]
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a file written by [`write_decomposition`] back as a graph plus
/// its decomposition. The edge order is re-derived from the builder, so
/// the φ values are re-attached by edge lookup rather than line order.
pub fn read_decomposition<R: Read>(reader: R) -> Result<(BipartiteGraph, Decomposition)> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut triples: Vec<(u32, u32, u64)> = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let mut next = |what: &str| -> Result<u64> {
            it.next()
                .ok_or_else(|| Error::Parse {
                    line: line_no,
                    message: format!("missing {what}"),
                })?
                .parse::<u64>()
                .map_err(|_| Error::Parse {
                    line: line_no,
                    message: format!("invalid {what}"),
                })
        };
        let u = next("upper index")? as u32;
        let v = next("lower index")? as u32;
        let phi = next("bitruss number")?;
        triples.push((u, v, phi));
    }

    let graph = bigraph::GraphBuilder::new()
        .add_edges(triples.iter().map(|&(u, v, _)| (u, v)))
        .build()?;
    let mut phi = vec![0u64; graph.num_edges() as usize];
    for &(u, v, p) in &triples {
        let e = graph
            .edge_between(graph.upper(u), graph.lower(v))
            .expect("edge was just inserted");
        phi[e.index()] = p;
    }
    Ok((graph, Decomposition::new(phi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{decompose, Algorithm};

    #[test]
    fn round_trip() {
        let g = datagen::powerlaw::chung_lu(30, 30, 250, 2.0, 2.0, 5);
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let mut buf = Vec::new();
        write_decomposition(&g, &d, &mut buf).unwrap();
        let (g2, d2) = read_decomposition(buf.as_slice()).unwrap();
        assert_eq!(g.edge_pairs(), g2.edge_pairs());
        assert_eq!(d, d2);
    }

    #[test]
    fn header_and_format() {
        let g = bigraph::GraphBuilder::new()
            .add_edges([(0, 0), (1, 0)])
            .build()
            .unwrap();
        let d = Decomposition::new(vec![3, 4]);
        let mut buf = Vec::new();
        write_decomposition(&g, &d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("% bitruss decomposition: 2 upper, 1 lower, 2 edges"));
        assert!(text.contains("0 0 3"));
        assert!(text.contains("1 0 4"));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(read_decomposition("0 0\n".as_bytes()).is_err()); // missing phi
        assert!(read_decomposition("a b c\n".as_bytes()).is_err());
        let (g, d) = read_decomposition("% empty\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert!(d.phi.is_empty());
    }
}
