//! Budgeted (out-of-core) decomposition: the engine path behind
//! [`EngineBuilder::memory_budget`](crate::engine::EngineBuilder::memory_budget).
//!
//! The run is the same BiT-BU++ pipeline as the in-memory default —
//! counting, BE-Index construction, batch peeling — with the two
//! memory-hungry inputs swapped for their storage-tier versions:
//!
//! 1. the graph is re-encoded as a paged compressed file
//!    ([`bitruss_storage::write_paged`]) and read back through a page
//!    cache sized from the budget, so counting and wedge enumeration
//!    stream the adjacency instead of holding the CSR;
//! 2. the BE-Index is built with the spill builder
//!    ([`bitruss_storage::build_beindex_spilled`]), which bounds the
//!    transient wedge arena at a budget share and merges Vfs-backed
//!    runs back exactly.
//!
//! The peel loop that follows is *literally* the in-memory one
//! ([`peel_batch_pp`]) over the same `BeIndex`, supports, and
//! `BucketQueue` — the counting kernel is bit-identical over
//! [`NeighborAccess`](bigraph::NeighborAccess) backends and the spill
//! merge reproduces the sequential arena, so φ, support-update counts,
//! and hierarchy answers are equal to the in-memory run's. The
//! integration proptests sweep budgets to pin exactly that.
//!
//! Budget split: half the budget bounds the spill arena, a quarter
//! feeds the page cache, and the rest is slack for the run's own
//! scratch (supports, queue, φ). See `docs/STORAGE.md` for the
//! accounting argument and what stays resident regardless (the O(m)
//! arrays and the finished index).

use std::path::Path;

use beindex::BeIndex;
use bigraph::progress::{checkpoint, EngineObserver, Phase};
use bigraph::vfs::Vfs;
use bigraph::{BipartiteGraph, EdgeId, NeighborAccess, Result};
use bitruss_storage::{build_beindex_spilled, write_paged, MemoryReport, PagedGraph, SpillStats};
use butterfly::count_per_edge_access_observed;

use crate::algo::batch::{peel_batch_pp, BatchState};
use crate::bucket_queue::BucketQueue;
use crate::decomposition::Decomposition;
use crate::metrics::Metrics;

/// File name of the paged graph inside the scratch directory.
const PAGED_NAME: &str = "graph.paged";
/// Subdirectory for spill runs inside the scratch directory.
const SPILL_DIR: &str = "spill";

/// Runs the budgeted BiT-BU++ decomposition of `g` with all storage-
/// tier I/O under `scratch_dir` on `vfs`. Scratch files are removed on
/// success. `metrics.memory` carries the [`MemoryReport`].
///
/// # Errors
///
/// [`bigraph::Error::Cancelled`] from the observer,
/// [`bigraph::Error::Io`]/[`bigraph::Error::Corrupt`] from the storage
/// tier.
pub(crate) fn decompose_out_of_core(
    g: &BipartiteGraph,
    budget_bytes: usize,
    vfs: &dyn Vfs,
    scratch_dir: &Path,
    histogram_bounds: Option<&[u64]>,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    let mut metrics = Metrics::default();
    let m = g.num_edges() as usize;
    let spill_budget = budget_bytes / 2;
    let cache_budget = budget_bytes / 4;

    vfs.create_dir_all(scratch_dir)?;
    let paged_path = scratch_dir.join(PAGED_NAME);
    write_paged(g, vfs, &paged_path)?;
    let pg = PagedGraph::open(vfs, &paged_path, cache_budget)?;

    let t0 = std::time::Instant::now();
    let counts = count_per_edge_access_observed(&pg, observer)?;
    metrics.counting_time = t0.elapsed();
    if let Some(bounds) = histogram_bounds {
        metrics.enable_histogram(bounds.to_vec(), &counts.per_edge);
    }

    let t1 = std::time::Instant::now();
    checkpoint(observer)?;
    observer.on_phase_start(Phase::IndexBuild, pg.num_vertices() as u64);
    let (mut index, spill): (BeIndex, SpillStats) =
        build_beindex_spilled(&pg, spill_budget, vfs, &scratch_dir.join(SPILL_DIR))?;
    observer.on_phase_end(Phase::IndexBuild);
    metrics.index_time = t1.elapsed();
    // The budgeted construction peak: the finished index plus the
    // bounded transient arena it was merged through.
    metrics.peak_index_bytes = index.memory_bytes() + spill.peak_arena_bytes;
    metrics.iterations = 1;

    // Peeling never touches the graph again — capture the accounting
    // and release the paged file before the peel.
    let report = MemoryReport {
        graph_bytes: pg.resident_bytes(),
        index_peak_bytes: metrics.peak_index_bytes,
        page_cache_bytes: pg.cache_stats().high_water_bytes,
        spill_bytes_written: spill.spill_bytes_written,
        budget_bytes,
    };
    drop(pg);
    vfs.remove_file(&paged_path)?;
    metrics.memory = Some(report);

    // From here on this is bit_bu_pp_run's peel loop, verbatim.
    let t2 = std::time::Instant::now();
    observer.on_phase_start(Phase::Peeling, m as u64);
    let mut supp = counts.per_edge;
    let mut phi = vec![0u64; m];
    let mut queue = BucketQueue::new(&supp, |_| true);
    let mut state = BatchState::new(index.num_blooms());
    let mut batch: Vec<EdgeId> = Vec::new();

    let mut popped = 0u64;
    while let Some(level) = queue.pop_level(&supp, &mut batch) {
        checkpoint(observer)?;
        popped += batch.len() as u64;
        observer.on_phase_progress(Phase::Peeling, popped, m as u64);
        for &e in &batch {
            phi[e.index()] = level;
        }
        peel_batch_pp(
            &mut index,
            &mut supp,
            &mut queue,
            &mut state,
            &batch,
            level,
            &mut metrics,
            None,
        );
    }
    metrics.peeling_time = t2.elapsed();
    observer.on_phase_end(Phase::Peeling);
    Ok((Decomposition::new(phi), metrics))
}

/// Cheap pre-run upper estimate of the in-memory working set: the CSR
/// plus the wedge-bound estimate of the BE-Index (Lemma 6: at most
/// `Σ_e min{d(u), d(v)}` priority-obeyed wedges, ~24 bytes each across
/// the wedge/link arrays). When this fits the budget the engine runs
/// the ordinary in-memory path — "under budget nothing changes".
pub(crate) fn estimate_in_memory_bytes(g: &BipartiteGraph) -> usize {
    let mut wedge_bound = 0u64;
    for v in g.vertices() {
        let dv = g.degree(v) as u64;
        for &w in g.neighbor_slice(v) {
            // Count each edge once, from its lower-id endpoint.
            if v.0 < w {
                wedge_bound += dv.min(g.degree(bigraph::VertexId(w)) as u64);
            }
        }
    }
    g.memory_bytes() + (wedge_bound as usize).saturating_mul(24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::progress::NoopObserver;
    use bigraph::vfs::MemVfs;
    use bigraph::GraphBuilder;

    fn sample() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..14 {
            for v in 0..12 {
                if (u * 5 + v * 3) % 4 != 0 {
                    b.push_edge(u, v);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn budgeted_run_matches_in_memory_exactly() {
        let g = sample();
        let (want, want_metrics) = crate::algo::bit_bu_pp(&g);
        for budget in [0usize, 512, 4 * 1024, 1 << 20] {
            let vfs = MemVfs::new();
            let (got, metrics) =
                decompose_out_of_core(&g, budget, &vfs, Path::new("ooc"), None, &NoopObserver)
                    .unwrap();
            assert_eq!(got, want, "budget={budget}");
            assert_eq!(
                metrics.support_updates, want_metrics.support_updates,
                "budget={budget}"
            );
            let report = metrics.memory.unwrap();
            assert_eq!(report.budget_bytes, budget);
            assert!(report.graph_bytes > 0);
            assert!(report.graph_bytes < g.memory_bytes());
            assert!(report.index_peak_bytes > 0);
            // The paged file is cleaned up.
            assert!(!vfs.exists(&Path::new("ooc").join(PAGED_NAME)));
        }
    }

    #[test]
    fn tiny_budgets_actually_spill() {
        let g = sample();
        let vfs = MemVfs::new();
        let (_, metrics) =
            decompose_out_of_core(&g, 256, &vfs, Path::new("ooc"), None, &NoopObserver).unwrap();
        assert!(metrics.memory.unwrap().spill_bytes_written > 0);
    }

    #[test]
    fn histogram_composes_with_the_budgeted_path() {
        let g = sample();
        let (_, want) = crate::algo::bit_bu_pp_opts(&g, Some(&[1, 4]));
        let vfs = MemVfs::new();
        let (_, got) = decompose_out_of_core(
            &g,
            1024,
            &vfs,
            Path::new("ooc"),
            Some(&[1, 4]),
            &NoopObserver,
        )
        .unwrap();
        assert_eq!(
            got.histogram.unwrap().counts(),
            want.histogram.unwrap().counts()
        );
    }

    #[test]
    fn estimate_upper_bounds_the_real_footprint() {
        let g = sample();
        let est = estimate_in_memory_bytes(&g);
        assert!(est >= g.memory_bytes());
        let (_, m) = crate::algo::bit_bu_pp(&g);
        assert!(
            est >= g.memory_bytes() + m.peak_index_bytes / 2,
            "estimate {est} too far below reality"
        );
    }
}
