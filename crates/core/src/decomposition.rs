//! The decomposition result and its query API.

use std::collections::BTreeMap;

use bigraph::{edge_subgraph, BipartiteGraph, EdgeId, EdgeSubgraph, UnionFind, VertexId};

/// The bitruss numbers `φ(e)` of every edge of a graph — the output of
/// bitruss decomposition (Problem Statement, §II of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Decomposition {
    /// `phi[e]` = bitruss number of edge `e`.
    pub phi: Vec<u64>,
}

impl Decomposition {
    /// Creates a decomposition from a φ array.
    pub fn new(phi: Vec<u64>) -> Self {
        Self { phi }
    }

    /// Bitruss number of one edge.
    #[inline]
    pub fn bitruss_number(&self, e: EdgeId) -> u64 {
        self.phi[e.index()]
    }

    /// The largest bitruss number in the graph (`φ_max`, the last column
    /// of Table II). 0 for an edgeless graph.
    pub fn max_bitruss(&self) -> u64 {
        self.phi.iter().copied().max().unwrap_or(0)
    }

    /// Edge ids of the k-bitruss `H_k = {e : φ(e) ≥ k}` (Definition 4 via
    /// the hierarchy property).
    pub fn k_bitruss_edges(&self, k: u64) -> Vec<EdgeId> {
        self.phi
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p >= k)
            .map(|(e, _)| EdgeId(e as u32))
            .collect()
    }

    /// The k-bitruss as a subgraph of `g` (with an edge mapping back to
    /// `g`'s edge ids).
    pub fn k_bitruss_subgraph(&self, g: &BipartiteGraph, k: u64) -> EdgeSubgraph {
        debug_assert_eq!(self.phi.len(), g.num_edges() as usize);
        edge_subgraph(g, |e| self.phi[e.index()] >= k)
    }

    /// Number of edges per bitruss number, ascending by `k`.
    pub fn level_sizes(&self) -> BTreeMap<u64, usize> {
        let mut sizes = BTreeMap::new();
        for &p in &self.phi {
            *sizes.entry(p).or_insert(0usize) += 1;
        }
        sizes
    }

    /// The distinct bitruss numbers present, ascending.
    pub fn levels(&self) -> Vec<u64> {
        self.level_sizes().into_keys().collect()
    }

    /// Connected communities of the k-bitruss: groups of vertices joined
    /// by edges with `φ ≥ k`, each with its member vertices (both layers,
    /// global ids) and edges. This is the community-extraction primitive
    /// behind the paper's fraud-detection / research-group / recommender
    /// applications (§I).
    pub fn communities(&self, g: &BipartiteGraph, k: u64) -> Vec<Community> {
        debug_assert_eq!(self.phi.len(), g.num_edges() as usize);
        let n = g.num_vertices();
        let mut uf = UnionFind::new(n as usize);
        for e in g.edges() {
            if self.phi[e.index()] >= k {
                let (u, v) = g.edge(e);
                uf.union(u.0, v.0);
            }
        }
        // Group edges by component root.
        let mut by_root: BTreeMap<u32, Community> = BTreeMap::new();
        for e in g.edges() {
            if self.phi[e.index()] >= k {
                let (u, v) = g.edge(e);
                let root = uf.find(u.0);
                let c = by_root.entry(root).or_default();
                c.edges.push(e);
                c.vertices.push(u);
                c.vertices.push(v);
            }
        }
        let mut communities: Vec<Community> = by_root.into_values().collect();
        for c in &mut communities {
            c.vertices.sort_unstable();
            c.vertices.dedup();
        }
        // Largest first: the most interesting community leads.
        communities.sort_by_key(|c| std::cmp::Reverse(c.edges.len()));
        communities
    }
}

/// One connected component of a k-bitruss.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Community {
    /// Member vertices (global ids, both layers), sorted.
    pub vertices: Vec<VertexId>,
    /// Member edges.
    pub edges: Vec<EdgeId>,
}

impl Community {
    /// Member vertices of the upper layer.
    pub fn upper_members<'a>(
        &'a self,
        g: &'a BipartiteGraph,
    ) -> impl Iterator<Item = VertexId> + 'a {
        self.vertices.iter().copied().filter(|&v| g.is_upper(v))
    }

    /// Member vertices of the lower layer.
    pub fn lower_members<'a>(
        &'a self,
        g: &'a BipartiteGraph,
    ) -> impl Iterator<Item = VertexId> + 'a {
        self.vertices.iter().copied().filter(|&v| g.is_lower(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    /// Figure 1/4 fixture with known bitruss numbers 2,2,2,2,2,2,1,1,1,0,0.
    fn fig1() -> (BipartiteGraph, Decomposition) {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap();
        // Edge order after sort: (0,0),(0,1),(1,0),(1,1),(2,0),(2,1),
        // (2,2),(2,3),(3,1),(3,2),(3,4)
        let phi = vec![2, 2, 2, 2, 2, 2, 1, 0, 1, 1, 0];
        (g, Decomposition::new(phi))
    }

    #[test]
    fn k_bitruss_edges_and_levels() {
        let (g, d) = fig1();
        assert_eq!(d.max_bitruss(), 2);
        assert_eq!(d.k_bitruss_edges(2).len(), 6);
        assert_eq!(d.k_bitruss_edges(1).len(), 9);
        assert_eq!(d.k_bitruss_edges(0).len(), 11);
        assert_eq!(d.levels(), vec![0, 1, 2]);
        let sizes = d.level_sizes();
        assert_eq!(sizes[&2], 6);
        assert_eq!(sizes[&1], 3);
        assert_eq!(sizes[&0], 2);
        let h2 = d.k_bitruss_subgraph(&g, 2);
        assert_eq!(h2.graph.num_edges(), 6);
    }

    #[test]
    fn communities_of_the_two_bitruss() {
        let (g, d) = fig1();
        let comms = d.communities(&g, 2);
        assert_eq!(comms.len(), 1);
        let c = &comms[0];
        assert_eq!(c.edges.len(), 6);
        // {u0,u1,u2} × {v0,v1}.
        let uppers: Vec<u32> = c.upper_members(&g).map(|v| g.layer_index(v)).collect();
        let lowers: Vec<u32> = c.lower_members(&g).map(|v| g.layer_index(v)).collect();
        assert_eq!(uppers, vec![0, 1, 2]);
        assert_eq!(lowers, vec![0, 1]);
    }

    #[test]
    fn zero_bitruss_spans_all_edges() {
        let (g, d) = fig1();
        let comms = d.communities(&g, 0);
        assert_eq!(comms.iter().map(|c| c.edges.len()).sum::<usize>(), 11);
    }

    #[test]
    fn empty_decomposition() {
        let d = Decomposition::new(vec![]);
        assert_eq!(d.max_bitruss(), 0);
        assert!(d.levels().is_empty());
    }
}
