//! Intrusive bucket queue for bottom-up peeling.
//!
//! Edges are kept in doubly-linked lists, one per support value, so a
//! support decrease relocates an edge in `O(1)` without allocating — the
//! peeling loop performs `O(onG)` updates and must not grow memory per
//! update. Because every update is clamped at the current peel level
//! (`max(MBS, ·)` of Algorithm 5), the minimum level is monotonically
//! non-decreasing and the scan pointer `cur` only ever moves forward;
//! total scan cost is `O(max_support)` over the whole peel.

use bigraph::EdgeId;

const NONE: u32 = u32::MAX;

/// Bucket queue over edges keyed by butterfly support.
#[derive(Debug, Clone)]
pub struct BucketQueue {
    /// `head[s]` = first edge with support `s`, or `NONE`.
    head: Vec<u32>,
    /// Intrusive links per edge.
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Whether each edge is currently enqueued.
    enqueued: Vec<bool>,
    /// Scan pointer: no non-empty bucket exists below `cur`.
    cur: usize,
    len: usize,
}

impl BucketQueue {
    /// Builds a queue containing every edge `e` with `active(e)`, keyed by
    /// `supp[e]`.
    pub fn new<F: Fn(EdgeId) -> bool>(supp: &[u64], active: F) -> Self {
        let max_supp = supp
            .iter()
            .enumerate()
            .filter(|&(e, _)| active(EdgeId(e as u32)))
            .map(|(_, &s)| s)
            .max()
            .unwrap_or(0) as usize;
        let mut q = BucketQueue {
            head: vec![NONE; max_supp + 1],
            next: vec![NONE; supp.len()],
            prev: vec![NONE; supp.len()],
            enqueued: vec![false; supp.len()],
            cur: 0,
            len: 0,
        };
        // Insert in reverse so each bucket lists edges in ascending id
        // order — keeps peeling order deterministic and intuitive.
        for e in (0..supp.len()).rev() {
            if active(EdgeId(e as u32)) {
                q.insert_front(e, supp[e] as usize);
            }
        }
        q
    }

    /// Builds a queue containing exactly the edges in `members` (ascending
    /// ids), keyed by `supp[e]`. Equivalent to [`BucketQueue::new`] with an
    /// `active` predicate selecting `members` — including the per-bucket
    /// ascending-id order — but touches only the member edges instead of
    /// scanning the whole support array, which is what the partition
    /// engine's per-band peels need (16 bands × one full scan adds up).
    pub fn from_members(supp: &[u64], members: &[u32]) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members ascend");
        let max_supp = members.iter().map(|&e| supp[e as usize]).max().unwrap_or(0) as usize;
        let mut q = BucketQueue {
            head: vec![NONE; max_supp + 1],
            next: vec![NONE; supp.len()],
            prev: vec![NONE; supp.len()],
            enqueued: vec![false; supp.len()],
            cur: 0,
            len: 0,
        };
        for &e in members.iter().rev() {
            q.insert_front(e as usize, supp[e as usize] as usize);
        }
        q
    }

    fn insert_front(&mut self, e: usize, bucket: usize) {
        debug_assert!(!self.enqueued[e]);
        let old_head = self.head[bucket];
        self.next[e] = old_head;
        self.prev[e] = NONE;
        if old_head != NONE {
            self.prev[old_head as usize] = e as u32;
        }
        self.head[bucket] = e as u32;
        self.enqueued[e] = true;
        self.len += 1;
    }

    fn unlink(&mut self, e: usize, bucket: usize) {
        debug_assert!(self.enqueued[e]);
        let (p, n) = (self.prev[e], self.next[e]);
        if p == NONE {
            debug_assert_eq!(self.head[bucket], e as u32);
            self.head[bucket] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
        self.enqueued[e] = false;
        self.len -= 1;
    }

    /// Number of enqueued edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no edges remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `e` is currently enqueued.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.enqueued[e.index()]
    }

    /// Current minimum support level without popping (advances the scan
    /// pointer past empty buckets).
    pub fn peek_min(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        while self.head[self.cur] == NONE {
            self.cur += 1;
        }
        Some(self.cur as u64)
    }

    /// Pops one edge with the minimum support. Returns `(level, edge)`.
    ///
    /// `supp` must be the same array the queue was built from and kept in
    /// sync via [`BucketQueue::decrease`].
    pub fn pop_min(&mut self, supp: &[u64]) -> Option<(u64, EdgeId)> {
        if self.len == 0 {
            return None;
        }
        while self.head[self.cur] == NONE {
            self.cur += 1;
        }
        let e = self.head[self.cur] as usize;
        debug_assert_eq!(supp[e] as usize, self.cur);
        self.unlink(e, self.cur);
        Some((self.cur as u64, EdgeId(e as u32)))
    }

    /// Pops *all* edges currently at the minimum support level — the batch
    /// `S` of Algorithm 5. Edges that later fall to this level (clamped at
    /// MBS) form subsequent batches at the same level.
    pub fn pop_level(&mut self, supp: &[u64], out: &mut Vec<EdgeId>) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        while self.head[self.cur] == NONE {
            self.cur += 1;
        }
        out.clear();
        while self.head[self.cur] != NONE {
            let e = self.head[self.cur] as usize;
            debug_assert_eq!(supp[e] as usize, self.cur);
            self.unlink(e, self.cur);
            out.push(EdgeId(e as u32));
        }
        Some(self.cur as u64)
    }

    /// Moves `e` from bucket `old` to bucket `new` after a support
    /// decrease (`new < old`, `new ≥` current level).
    pub fn decrease(&mut self, e: EdgeId, old: u64, new: u64) {
        debug_assert!(new < old);
        debug_assert!(
            new as usize >= self.cur,
            "support clamped below the current peel level"
        );
        self.unlink(e.index(), old as usize);
        self.insert_front(e.index(), new as usize);
    }

    /// Removes `e` (currently at support `s`) without popping it.
    pub fn remove(&mut self, e: EdgeId, s: u64) {
        self.unlink(e.index(), s as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[EdgeId]) -> Vec<u32> {
        v.iter().map(|e| e.0).collect()
    }

    #[test]
    fn pops_in_nondecreasing_order() {
        let supp = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut q = BucketQueue::new(&supp, |_| true);
        let mut seen = Vec::new();
        while let Some((lvl, e)) = q.pop_min(&supp) {
            assert_eq!(lvl, supp[e.index()]);
            seen.push(lvl);
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn pop_level_drains_one_bucket() {
        let supp = vec![2u64, 1, 1, 2, 1];
        let mut q = BucketQueue::new(&supp, |_| true);
        let mut batch = Vec::new();
        let lvl = q.pop_level(&supp, &mut batch).unwrap();
        assert_eq!(lvl, 1);
        assert_eq!(ids(&batch), vec![1, 2, 4]);
        let lvl = q.pop_level(&supp, &mut batch).unwrap();
        assert_eq!(lvl, 2);
        assert_eq!(ids(&batch), vec![0, 3]);
        assert!(q.pop_level(&supp, &mut batch).is_none());
    }

    #[test]
    fn decrease_relocates() {
        let mut supp = vec![5u64, 5, 5];
        let mut q = BucketQueue::new(&supp, |_| true);
        supp[1] = 2;
        q.decrease(EdgeId(1), 5, 2);
        let (lvl, e) = q.pop_min(&supp).unwrap();
        assert_eq!((lvl, e.0), (2, 1));
        let (lvl, _) = q.pop_min(&supp).unwrap();
        assert_eq!(lvl, 5);
    }

    #[test]
    fn edges_falling_to_current_level_join_next_batch() {
        let mut supp = vec![1u64, 3, 3];
        let mut q = BucketQueue::new(&supp, |_| true);
        let mut batch = Vec::new();
        assert_eq!(q.pop_level(&supp, &mut batch), Some(1));
        assert_eq!(ids(&batch), vec![0]);
        // Edge 1 drops to the clamped level 1 during the batch.
        supp[1] = 1;
        q.decrease(EdgeId(1), 3, 1);
        assert_eq!(q.pop_level(&supp, &mut batch), Some(1));
        assert_eq!(ids(&batch), vec![1]);
        assert_eq!(q.pop_level(&supp, &mut batch), Some(3));
        assert_eq!(ids(&batch), vec![2]);
    }

    #[test]
    fn inactive_edges_are_skipped() {
        let supp = vec![1u64, 2, 3];
        let mut q = BucketQueue::new(&supp, |e| e.0 != 1);
        assert_eq!(q.len(), 2);
        assert!(!q.contains(EdgeId(1)));
        let mut popped = Vec::new();
        while let Some((_, e)) = q.pop_min(&supp) {
            popped.push(e.0);
        }
        assert_eq!(popped, vec![0, 2]);
    }

    #[test]
    fn remove_unlinks() {
        let supp = vec![4u64, 4, 4];
        let mut q = BucketQueue::new(&supp, |_| true);
        q.remove(EdgeId(1), 4);
        assert_eq!(q.len(), 2);
        let mut batch = Vec::new();
        q.pop_level(&supp, &mut batch).unwrap();
        assert_eq!(ids(&batch), vec![0, 2]);
    }

    #[test]
    fn from_members_matches_filtered_new() {
        let supp = vec![3u64, 7, 0, 7, 2, 5];
        let members = [1u32, 3, 4];
        let mut a = BucketQueue::new(&supp, |e| members.contains(&e.0));
        let mut b = BucketQueue::from_members(&supp, &members);
        assert_eq!(a.len(), b.len());
        loop {
            let (x, y) = (a.pop_min(&supp), b.pop_min(&supp));
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn empty_queue() {
        let supp: Vec<u64> = vec![];
        let mut q = BucketQueue::new(&supp, |_| true);
        assert!(q.is_empty());
        assert!(q.pop_min(&supp).is_none());
    }

    /// Model-based check: a randomized interleaving of clamped decreases
    /// and pops must match a naive "scan for minimum" model.
    #[test]
    fn randomized_against_naive_model() {
        let mut rng_state = 0xDEADBEEFu64;
        let mut rng = move || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng_state >> 33
        };
        for _trial in 0..50 {
            let n = (rng() % 40 + 1) as usize;
            let mut supp: Vec<u64> = (0..n).map(|_| rng() % 30).collect();
            let mut q = BucketQueue::new(&supp, |_| true);
            let mut alive: Vec<bool> = vec![true; n];
            let mut level = 0u64;
            while !q.is_empty() {
                // Random clamped decreases before each pop.
                for _ in 0..rng() % 4 {
                    let e = (rng() as usize) % n;
                    if alive[e] && supp[e] > level {
                        let old = supp[e];
                        let new = level.max(old - (rng() % (old - level) + 1).min(old - level));
                        if new < old {
                            supp[e] = new;
                            q.decrease(EdgeId(e as u32), old, new);
                        }
                    }
                }
                // Model: minimum support among alive edges, FIFO-free
                // (any argmin acceptable — compare levels, not ids).
                let model_min = supp
                    .iter()
                    .zip(&alive)
                    .filter(|&(_, &a)| a)
                    .map(|(&s, _)| s)
                    .min()
                    .unwrap();
                let (lvl, e) = q.pop_min(&supp).unwrap();
                assert_eq!(lvl, model_min);
                assert_eq!(supp[e.index()], lvl);
                assert!(alive[e.index()]);
                alive[e.index()] = false;
                level = lvl;
            }
            assert!(alive.iter().all(|&a| !a));
        }
    }
}
