//! The localized re-peel: run the bottom-up peeling machinery on the
//! affected subgraph only, with the unaffected boundary *frozen* at its
//! known φ.
//!
//! Two layers build on this pass: the `bitruss-dynamic` crate's
//! incremental maintenance (its insertion regions re-peel here) and the
//! [two-phase partition engine](crate::partition)'s stitch repair (edges
//! whose φ escaped their assigned band re-peel against a frozen rest).
//!
//! # Exactness
//!
//! The global bottom-up peel removes every edge at level `φ(e)`, and —
//! by the `max(MBS, ·)` clamp rule the batch algorithms already rely on
//! — the final φ assignment is invariant to removal order within a
//! level. The re-peel simulates exactly the slice of that global peel
//! that can differ:
//!
//! * **region edges** (the affected set) start at their true supports in
//!   the updated graph and peel dynamically, exactly as in BiT-BU;
//! * **boundary edges** (non-region edges sharing a butterfly with the
//!   region) are removed at their *frozen* level — their φ is known to
//!   be unchanged, and `φ(e)` is precisely the level the global peel
//!   removes them at;
//! * edges further out never interact with the region: every butterfly
//!   containing a region edge has its other three members in
//!   region ∪ boundary by construction, so the local structure
//!   reproduces the global support dynamics for region edges
//!   bit-for-bit.
//!
//! Events are merged through one lazy-deletion binary heap keyed by
//! `(level, kind, edge)` so mixed region/boundary levels interleave in
//! the global order; all clamping uses the event's level as the floor,
//! matching Algorithm 2/5.
//!
//! # Two backends, one semantics
//!
//! Removing an edge decreases every butterfly-sharing edge's support by
//! the number of butterflies they share (clamped at the floor) — a
//! quantity independent of how butterflies are organized. The re-peel
//! picks the cheaper representation:
//!
//! * **quad peel** (small regions): the butterflies collected while
//!   closing the region are peeled directly as explicit 4-edge quads —
//!   no subgraph extraction, no index build, cost proportional to the
//!   local butterfly count;
//! * **BE-Index peel** (large regions): the affected subgraph is
//!   extracted and a local [`BeIndex`] drives removals exactly as
//!   BiT-BU does globally, amortizing `O(sup)` per removal.

use std::collections::BinaryHeap;

use beindex::{BeIndex, UpdateSink};
use bigraph::progress::{checkpoint, EngineObserver, Phase, CHECK_INTERVAL};
use bigraph::{edge_subgraph, BipartiteGraph, EdgeId, Result};
use butterfly::for_each_butterfly_through;

/// Above this fraction of the graph's edges, the re-peel switches from
/// the quad backend to the BE-Index subgraph backend (whose fixed
/// `O(n + m)` extraction cost then amortizes).
const SUBGRAPH_FRACTION: usize = 8;

/// Counters reported by one localized re-peel.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepeelStats {
    /// Region edges whose φ was recomputed.
    pub region_edges: u64,
    /// Frozen boundary edges replayed around the region.
    pub boundary_edges: u64,
    /// Butterfly-support updates performed on region edges.
    pub support_updates: u64,
}

/// Min-heap event: `Reverse` ordering over `(level, kind, local edge)`;
/// `kind` 0 = frozen boundary removal, 1 = dynamic region removal, so
/// boundary events at a level drain before region pops at that level
/// (any interleaving within a level is equivalent; this one is
/// deterministic).
type Event = std::cmp::Reverse<(u64, u8, u32)>;

/// Update sink feeding region support decreases back into the event
/// heap; boundary supports are scratch and not tracked.
struct RegionSink<'a> {
    heap: &'a mut BinaryHeap<Event>,
    is_region: &'a [bool],
    updates: &'a mut u64,
}

impl UpdateSink for RegionSink<'_> {
    #[inline]
    fn on_support_update(&mut self, e: EdgeId, _old: u64, new: u64) {
        if self.is_region[e.index()] {
            *self.updates += 1;
            self.heap.push(std::cmp::Reverse((new, 1, e.0)));
        }
    }
}

/// Recomputes φ for the `region` edges of `g`, assuming every edge
/// outside the region keeps `phi_frozen[e]`. Returns the updated φ
/// array (region entries recomputed, all others copied from
/// `phi_frozen`) and the re-peel counters.
///
/// `phi_frozen` must hold the correct bitruss number of every
/// **non-region** edge of `g`; region entries are ignored. The caller
/// guarantees (via the affected-region analysis) that non-region φ
/// values are unchanged by the update being applied.
///
/// # Errors
///
/// [`bigraph::Error::Cancelled`] when `observer` requests cancellation.
pub fn repeel_region(
    g: &BipartiteGraph,
    phi_frozen: &[u64],
    region: &[bool],
    observer: &dyn EngineObserver,
) -> Result<(Vec<u64>, RepeelStats)> {
    let m = g.num_edges() as usize;
    debug_assert_eq!(phi_frozen.len(), m);
    debug_assert_eq!(region.len(), m);
    let mut phi = phi_frozen.to_vec();
    let mut stats = RepeelStats::default();
    let region_count = region.iter().filter(|&&r| r).count();
    if region_count == 0 {
        return Ok((phi, stats));
    }

    if region_count.saturating_mul(SUBGRAPH_FRACTION) >= m {
        repeel_with_index(g, phi_frozen, region, &mut phi, &mut stats, observer)?;
    } else {
        // Close the region under butterfly adjacency: every butterfly
        // of g touching the region lies entirely inside the local edge
        // set, so supports and removal dynamics of region edges are
        // globally exact locally. Quads are canonicalized and
        // deduplicated (a butterfly with several region members is
        // enumerated several times).
        let mut quads: Vec<[u32; 4]> = Vec::new();
        for e in g.edges() {
            if !region[e.index()] {
                continue;
            }
            for_each_butterfly_through(g, e, |a, b, c| {
                let mut quad = [e.0, a.0, b.0, c.0];
                quad.sort_unstable();
                quads.push(quad);
            });
        }
        quads.sort_unstable();
        quads.dedup();
        repeel_quads(
            g, phi_frozen, region, &quads, &mut phi, &mut stats, observer,
        )?;
    }
    Ok((phi, stats))
}

/// Quad backend: peel the collected butterflies directly.
fn repeel_quads(
    g: &BipartiteGraph,
    phi_frozen: &[u64],
    region: &[bool],
    quads: &[[u32; 4]],
    phi: &mut [u64],
    stats: &mut RepeelStats,
    observer: &dyn EngineObserver,
) -> Result<()> {
    // Local edge set: region edges plus every quad member.
    let mut locals: Vec<u32> = quads.iter().flatten().copied().collect();
    locals.extend(g.edges().filter(|e| region[e.index()]).map(|e| e.0));
    locals.sort_unstable();
    locals.dedup();
    let local_of = |global: u32| -> usize {
        locals
            .binary_search(&global)
            .expect("member of the local set") // xtask:allow(no-panic-lib) every queried id was pushed into `locals` a few lines up (quad members + region edges); a miss is unreachable by construction
    };
    let m_loc = locals.len();

    // CSR: quads incident to each local edge.
    let mut offsets = vec![0usize; m_loc + 1];
    for quad in quads {
        for &member in quad {
            offsets[local_of(member) + 1] += 1;
        }
    }
    for i in 0..m_loc {
        offsets[i + 1] += offsets[i];
    }
    let mut incident = vec![0u32; offsets[m_loc]];
    let mut cursor = offsets.clone();
    for (qi, quad) in quads.iter().enumerate() {
        for &member in quad {
            let l = local_of(member);
            incident[cursor[l]] = qi as u32;
            cursor[l] += 1;
        }
    }

    observer.on_phase_start(Phase::Peeling, m_loc as u64);
    let mut supp = vec![0u64; m_loc];
    let mut is_region = vec![false; m_loc];
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    for (local, &global) in locals.iter().enumerate() {
        if region[global as usize] {
            is_region[local] = true;
            stats.region_edges += 1;
            supp[local] = (offsets[local + 1] - offsets[local]) as u64;
            heap.push(std::cmp::Reverse((supp[local], 1, local as u32)));
        } else {
            stats.boundary_edges += 1;
            // Scratch: parked high so clamped decrements never pull a
            // frozen edge into an early pop.
            supp[local] = u64::MAX / 2;
            heap.push(std::cmp::Reverse((
                phi_frozen[global as usize],
                0,
                local as u32,
            )));
        }
    }

    let mut quad_dead = vec![false; quads.len()];
    let mut removed = vec![false; m_loc];
    let mut popped = 0u64;
    while let Some(std::cmp::Reverse((level, kind, local))) = heap.pop() {
        let local = local as usize;
        if removed[local] {
            continue;
        }
        if kind == 1 && supp[local] != level {
            continue; // stale entry from an earlier support value
        }
        removed[local] = true;
        popped += 1;
        if popped.is_multiple_of(CHECK_INTERVAL) {
            checkpoint(observer)?;
            observer.on_phase_progress(Phase::Peeling, popped, m_loc as u64);
        }
        if kind == 1 {
            phi[locals[local] as usize] = level;
        }
        for &qi in &incident[offsets[local]..offsets[local + 1]] {
            if std::mem::replace(&mut quad_dead[qi as usize], true) {
                continue;
            }
            for &member in &quads[qi as usize] {
                let l = local_of(member);
                if l != local && !removed[l] && supp[l] > level {
                    supp[l] -= 1;
                    if is_region[l] {
                        stats.support_updates += 1;
                        heap.push(std::cmp::Reverse((supp[l], 1, l as u32)));
                    }
                }
            }
        }
    }
    observer.on_phase_end(Phase::Peeling);
    Ok(())
}

/// BE-Index backend: extract the closed subgraph and drive removals
/// through [`BeIndex::remove_edge`], exactly as BiT-BU does globally.
fn repeel_with_index(
    g: &BipartiteGraph,
    phi_frozen: &[u64],
    region: &[bool],
    phi: &mut [u64],
    stats: &mut RepeelStats,
    observer: &dyn EngineObserver,
) -> Result<()> {
    let mut in_loc = region.to_vec();
    for e in g.edges() {
        if !region[e.index()] {
            continue;
        }
        for_each_butterfly_through(g, e, |a, b, c| {
            in_loc[a.index()] = true;
            in_loc[b.index()] = true;
            in_loc[c.index()] = true;
        });
    }

    observer.on_phase_start(
        Phase::IndexBuild,
        in_loc.iter().filter(|&&x| x).count() as u64,
    );
    let loc = edge_subgraph(g, |e| in_loc[e.index()]);
    let mut index = BeIndex::build(&loc.graph);
    let mut supp = index.derive_supports();
    observer.on_phase_end(Phase::IndexBuild);
    checkpoint(observer)?;

    // Local views: region membership and frozen levels per local id.
    let m_loc = loc.new_to_old.len();
    let mut is_region = vec![false; m_loc];
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    for (local, &global) in loc.new_to_old.iter().enumerate() {
        if region[global.index()] {
            is_region[local] = true;
            stats.region_edges += 1;
            heap.push(std::cmp::Reverse((supp[local], 1, local as u32)));
        } else {
            stats.boundary_edges += 1;
            // Boundary supports are scratch: parked high so clamped
            // decrements never pull a frozen edge into an early pop.
            supp[local] = u64::MAX / 2;
            heap.push(std::cmp::Reverse((
                phi_frozen[global.index()],
                0,
                local as u32,
            )));
        }
    }

    observer.on_phase_start(Phase::Peeling, m_loc as u64);
    let mut removed = vec![false; m_loc];
    let mut popped = 0u64;
    while let Some(std::cmp::Reverse((level, kind, local))) = heap.pop() {
        let local = local as usize;
        if removed[local] {
            continue;
        }
        if kind == 1 && supp[local] != level {
            continue; // stale entry from an earlier support value
        }
        removed[local] = true;
        popped += 1;
        if popped.is_multiple_of(CHECK_INTERVAL) {
            checkpoint(observer)?;
            observer.on_phase_progress(Phase::Peeling, popped, m_loc as u64);
        }
        if kind == 1 {
            phi[loc.new_to_old[local].index()] = level;
        }
        let mut sink = RegionSink {
            heap: &mut heap,
            is_region: &is_region,
            updates: &mut stats.support_updates,
        };
        index.remove_edge(EdgeId(local as u32), &mut supp, level, &mut sink);
    }
    observer.on_phase_end(Phase::Peeling);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{decompose, Algorithm};
    use bigraph::{GraphBuilder, NoopObserver};

    /// Re-peeling any single-edge "region" of a correct decomposition
    /// reproduces that edge's φ (self-consistency of the frozen peel).
    #[test]
    fn repeel_is_a_fixpoint_of_correct_phi() {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        for e in g.edges() {
            let mut region = vec![false; g.num_edges() as usize];
            region[e.index()] = true;
            let (phi, stats) = repeel_region(&g, &d.phi, &region, &NoopObserver).unwrap();
            assert_eq!(phi, d.phi, "region {{{e}}}");
            assert_eq!(stats.region_edges, 1);
        }
    }

    /// With the whole graph as region, the re-peel degenerates to a full
    /// peel through the BE-Index backend.
    #[test]
    fn full_region_matches_decompose() {
        let g = datagen::random::uniform(10, 10, 45, 7);
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let region = vec![true; g.num_edges() as usize];
        let garbage = vec![99u64; g.num_edges() as usize]; // frozen values unused
        let (phi, stats) = repeel_region(&g, &garbage, &region, &NoopObserver).unwrap();
        assert_eq!(phi, d.phi);
        assert_eq!(stats.region_edges, g.num_edges() as u64);
        assert_eq!(stats.boundary_edges, 0);
    }

    /// Randomized fixpoint check across arbitrary regions — both the
    /// quad backend (sparse regions) and the BE-Index backend (dense
    /// regions) must reproduce the decomposition.
    #[test]
    fn random_regions_are_fixpoints_on_both_backends() {
        for seed in 0..8u64 {
            let g = datagen::random::uniform(9, 9, 40, seed);
            let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            // Alternate sparse regions (quad backend) and dense regions
            // (index backend).
            let denom = if seed % 2 == 0 { 16 } else { 2 };
            let region: Vec<bool> = (0..g.num_edges()).map(|_| rng() % denom == 0).collect();
            let (phi, _) = repeel_region(&g, &d.phi, &region, &NoopObserver).unwrap();
            assert_eq!(phi, d.phi, "seed {seed}");
        }
    }
}
