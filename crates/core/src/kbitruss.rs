//! Direct k-bitruss extraction (Definition 4) without a full
//! decomposition.
//!
//! When only one cohesion level matters — "give me the 100-bitruss" — the
//! bottom-up peel can stop as soon as the minimum surviving support
//! reaches `k`, skipping the entire upper hierarchy. The same BE-Index
//! machinery drives it, so the cost is `O(Σ min{d(u),d(v)} + onG_{<k})`
//! where `onG_{<k}` counts only the butterflies destroyed below level
//! `k`.

use beindex::{BeIndex, UpdateSink};
use bigraph::{edge_subgraph, BipartiteGraph, EdgeId, EdgeSubgraph};
use butterfly::count_per_edge;

use crate::bucket_queue::BucketQueue;

/// Sink keeping only the peeling queue in sync (no metrics).
struct QueueSink<'a> {
    queue: &'a mut BucketQueue,
}

impl UpdateSink for QueueSink<'_> {
    #[inline]
    fn on_support_update(&mut self, e: EdgeId, old: u64, new: u64) {
        self.queue.decrease(e, old, new);
    }
}

/// Computes the k-bitruss `H_k` of `g` directly: the maximal subgraph in
/// which every edge is contained in at least `k` butterflies. Returns the
/// subgraph with its edge mapping back to `g`.
///
/// `k = 0` returns the whole graph.
pub fn k_bitruss(g: &BipartiteGraph, k: u64) -> EdgeSubgraph {
    if k == 0 {
        return edge_subgraph(g, |_| true);
    }
    let counts = count_per_edge(g);
    let mut index = BeIndex::build(g);
    let mut supp = counts.per_edge;
    let mut queue = BucketQueue::new(&supp, |_| true);

    // Peel strictly below k; once the minimum surviving support reaches
    // k the survivors are exactly H_k (plain BiT-BU semantics with an
    // early stop).
    while let Some(level) = queue.peek_min() {
        if level >= k {
            break;
        }
        // peek_min just returned Some, so the pop cannot come up empty;
        // break (= peel nothing more) is the benign way out if it does.
        let Some((lvl, e)) = queue.pop_min(&supp) else {
            break;
        };
        let mut sink = QueueSink { queue: &mut queue };
        index.remove_edge(e, &mut supp, lvl, &mut sink);
    }

    edge_subgraph(g, |e| queue.contains(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::k_bitruss_fixpoint;
    use bigraph::GraphBuilder;

    fn check_matches_fixpoint(g: &BipartiteGraph, k: u64) {
        let direct = k_bitruss(g, k);
        let expect = k_bitruss_fixpoint(g, k);
        let direct_mask = {
            let mut mask = vec![false; g.num_edges() as usize];
            for &e in &direct.new_to_old {
                mask[e.index()] = true;
            }
            mask
        };
        assert_eq!(direct_mask, expect, "k = {k}");
    }

    #[test]
    fn matches_fixpoint_on_fig1() {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap();
        for k in 0..=4 {
            check_matches_fixpoint(&g, k);
        }
    }

    #[test]
    fn matches_fixpoint_on_random_graphs() {
        for seed in 0..6 {
            let g = datagen::random::uniform(14, 14, 70, seed);
            for k in [1, 2, 3, 5, 8] {
                check_matches_fixpoint(&g, k);
            }
        }
    }

    #[test]
    fn k_zero_is_identity() {
        let g = datagen::random::uniform(10, 10, 30, 1);
        let h = k_bitruss(&g, 0);
        assert_eq!(h.graph.edge_pairs(), g.edge_pairs());
    }

    #[test]
    fn huge_k_is_empty() {
        let g = datagen::random::uniform(10, 10, 40, 2);
        let h = k_bitruss(&g, 1_000_000);
        assert_eq!(h.graph.num_edges(), 0);
    }

    #[test]
    fn early_stop_matches_full_decomposition() {
        let g = datagen::powerlaw::chung_lu(60, 60, 800, 1.9, 1.9, 7);
        let (d, _) = crate::algo::bit_bu_pp(&g);
        for k in [1, 5, 20, 50] {
            let direct = k_bitruss(&g, k);
            let via_phi = d.k_bitruss_edges(k);
            assert_eq!(direct.new_to_old, via_phi, "k = {k}");
        }
    }
}
