//! The decomposition algorithms of the paper and a uniform entry point.

pub mod batch;
pub mod bs;
pub mod bu;
pub mod parallel;
pub mod pc;

pub use batch::{bit_bu_hybrid, bit_bu_plus, bit_bu_plus_opts, bit_bu_pp, bit_bu_pp_opts};
pub use bs::{bit_bs, PeelStrategy};
pub use bu::{bit_bu, bit_bu_opts};
pub use butterfly::Threads;
pub use parallel::{bit_bu_pp_par, bit_bu_pp_par_tuned};
pub use pc::{bit_pc, bit_pc_opts, kmax_bound, DEFAULT_TAU};

use bigraph::BipartiteGraph;

use crate::decomposition::Decomposition;
use crate::metrics::Metrics;

/// Algorithm selector for [`decompose`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// BiT-BS with the intersection peeling of ref.\[5\] (Algorithm 1).
    BsIntersection,
    /// BiT-BS with the pair-enumeration peeling of ref.\[9\].
    BsPairEnumeration,
    /// BiT-BU (Algorithm 4).
    Bu,
    /// BiT-BU+ — batch edge processing only.
    BuPlus,
    /// BiT-BU++ (Algorithm 5) — both batch optimizations.
    BuPlusPlus,
    /// BiT-BU++/P (extension): the shared-memory parallel engine —
    /// parallel counting, parallel index construction and parallel batch
    /// bloom processing across the configured worker threads.
    BuPlusPlusPar {
        /// Worker-thread configuration (`Threads(0)` = auto-detect).
        threads: Threads,
    },
    /// BiT-BU# (extension): one bloom traversal per batch (as BU++) with
    /// writes aggregated per affected edge (as BU+).
    BuHybrid,
    /// BiT-PC (Algorithm 7) with compression parameter τ.
    Pc {
        /// Compression parameter in `(0, 1]`; see [`DEFAULT_TAU`].
        tau: f64,
    },
}

impl Algorithm {
    /// BiT-PC with the paper's default τ.
    pub fn pc_default() -> Algorithm {
        Algorithm::Pc { tau: DEFAULT_TAU }
    }

    /// BiT-BU++/P with auto-detected worker threads.
    pub fn parallel_auto() -> Algorithm {
        Algorithm::BuPlusPlusPar {
            threads: Threads::AUTO,
        }
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::BsIntersection => "BS",
            Algorithm::BsPairEnumeration => "BS-pair",
            Algorithm::Bu => "BU",
            Algorithm::BuPlus => "BU+",
            Algorithm::BuPlusPlus => "BU++",
            Algorithm::BuPlusPlusPar { .. } => "BU++/P",
            Algorithm::BuHybrid => "BU#",
            Algorithm::Pc { .. } => "PC",
        }
    }

    /// The four algorithms compared in Figure 9, in plot order.
    pub fn figure9_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::BsIntersection,
            Algorithm::Bu,
            Algorithm::BuPlusPlus,
            Algorithm::pc_default(),
        ]
    }
}

/// Runs bitruss decomposition with the selected algorithm. All algorithms
/// return identical φ arrays; they differ in how the peeling work is
/// organized, which the returned [`Metrics`] quantify.
pub fn decompose(g: &BipartiteGraph, algorithm: Algorithm) -> (Decomposition, Metrics) {
    match algorithm {
        Algorithm::BsIntersection => bit_bs(g, PeelStrategy::Intersection),
        Algorithm::BsPairEnumeration => bit_bs(g, PeelStrategy::PairEnumeration),
        Algorithm::Bu => bit_bu(g),
        Algorithm::BuPlus => bit_bu_plus(g),
        Algorithm::BuPlusPlus => bit_bu_pp(g),
        Algorithm::BuPlusPlusPar { threads } => parallel::bit_bu_pp_par(g, threads),
        Algorithm::BuHybrid => batch::bit_bu_hybrid(g),
        Algorithm::Pc { tau } => bit_pc(g, tau),
    }
}

/// [`decompose`] with an update histogram bucketed by the given bounds on
/// original supports (Figure 7 instrumentation). Not supported for the
/// BiT-BS variants, which fall back to plain runs.
pub fn decompose_with_histogram(
    g: &BipartiteGraph,
    algorithm: Algorithm,
    bounds: &[u64],
) -> (Decomposition, Metrics) {
    match algorithm {
        Algorithm::Bu => bu::bit_bu_opts(g, Some(bounds)),
        Algorithm::BuPlus => batch::bit_bu_plus_opts(g, Some(bounds)),
        Algorithm::BuPlusPlus => batch::bit_bu_pp_opts(g, Some(bounds)),
        Algorithm::Pc { tau } => pc::bit_pc_opts(g, tau, Some(bounds)),
        other => decompose(g, other),
    }
}

/// [`decompose`] with (2,2)-core pre-pruning (extension): every butterfly
/// lies inside the (2,2)-core, so edges outside it have `φ = 0` and can
/// be dropped before counting and peeling. On butterfly-sparse graphs
/// this shrinks the working graph substantially at `O(n + m)` cost.
pub fn decompose_pruned(g: &BipartiteGraph, algorithm: Algorithm) -> (Decomposition, Metrics) {
    let core = bigraph::alpha_beta_core(g, 2, 2);
    let (sub_dec, metrics) = decompose(&core.graph, algorithm);
    let mut phi = vec![0u64; g.num_edges() as usize];
    for (i, &old) in core.new_to_old.iter().enumerate() {
        phi[old.index()] = sub_dec.phi[i];
    }
    (Decomposition::new(phi), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_decomposition;

    #[test]
    fn core_pruning_preserves_phi() {
        for seed in 0..5 {
            let g = datagen::powerlaw::chung_lu(60, 60, 500, 2.2, 2.2, seed);
            let (plain, _) = decompose(&g, Algorithm::BuPlusPlus);
            for alg in [
                Algorithm::Bu,
                Algorithm::BuPlusPlus,
                Algorithm::Pc { tau: 0.2 },
            ] {
                let (pruned, _) = decompose_pruned(&g, alg);
                assert_eq!(plain, pruned, "seed {seed} {}", alg.name());
            }
        }
    }

    #[test]
    fn every_algorithm_agrees_via_the_dispatcher() {
        let g = datagen::random::uniform(12, 12, 55, 99);
        let expect = reference_decomposition(&g);
        for alg in [
            Algorithm::BsIntersection,
            Algorithm::BsPairEnumeration,
            Algorithm::Bu,
            Algorithm::BuPlus,
            Algorithm::BuPlusPlus,
            Algorithm::BuPlusPlusPar {
                threads: Threads(3),
            },
            Algorithm::parallel_auto(),
            Algorithm::BuHybrid,
            Algorithm::pc_default(),
            Algorithm::Pc { tau: 1.0 },
        ] {
            let (d, _) = decompose(&g, alg);
            assert_eq!(d, expect, "{}", alg.name());
        }
    }

    #[test]
    fn names_and_lineup() {
        assert_eq!(Algorithm::Bu.name(), "BU");
        assert_eq!(Algorithm::pc_default().name(), "PC");
        let lineup = Algorithm::figure9_lineup();
        assert_eq!(lineup.len(), 4);
        assert_eq!(lineup[0].name(), "BS");
    }
}
