//! The decomposition algorithms of the paper and a uniform entry point.

pub mod batch;
pub mod bs;
pub mod bu;
pub mod parallel;
pub mod pc;

pub use batch::{
    bit_bu_hybrid, bit_bu_hybrid_observed, bit_bu_plus, bit_bu_plus_observed, bit_bu_plus_opts,
    bit_bu_pp, bit_bu_pp_observed, bit_bu_pp_opts,
};
pub use bs::{bit_bs, bit_bs_observed, PeelStrategy};
pub use bu::{bit_bu, bit_bu_observed, bit_bu_opts};
pub use butterfly::Threads;
pub use parallel::{bit_bu_pp_par, bit_bu_pp_par_observed, bit_bu_pp_par_tuned};
pub use pc::{bit_pc, bit_pc_observed, bit_pc_opts, kmax_bound, DEFAULT_TAU};

use std::fmt;
use std::str::FromStr;

use bigraph::progress::EngineObserver;
use bigraph::{BipartiteGraph, Result};

use crate::decomposition::Decomposition;
use crate::metrics::Metrics;

/// Algorithm selector for [`decompose`] and the
/// [`BitrussEngine`](crate::engine::BitrussEngine).
///
/// Marked `#[non_exhaustive]`: future engines may be added without a
/// semver break, so downstream matches need a wildcard arm. Parse
/// algorithm names with the [`FromStr`] impl (the CLI spelling, e.g.
/// `"bu++"`, `"bu++p"`, `"pc"`) and print them with [`fmt::Display`]
/// (the paper spelling, e.g. `"BU++"`).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// BiT-BS with the intersection peeling of ref.\[5\] (Algorithm 1).
    BsIntersection,
    /// BiT-BS with the pair-enumeration peeling of ref.\[9\].
    BsPairEnumeration,
    /// BiT-BU (Algorithm 4).
    Bu,
    /// BiT-BU+ — batch edge processing only.
    BuPlus,
    /// BiT-BU++ (Algorithm 5) — both batch optimizations.
    BuPlusPlus,
    /// BiT-BU++/P (extension): the shared-memory parallel engine —
    /// parallel counting, parallel index construction and parallel batch
    /// bloom processing across the configured worker threads.
    BuPlusPlusPar {
        /// Worker-thread configuration (`Threads(0)` = auto-detect).
        threads: Threads,
    },
    /// BiT-BU# (extension): one bloom traversal per batch (as BU++) with
    /// writes aggregated per affected edge (as BU+).
    BuHybrid,
    /// BiT-BU++2P (extension): the two-phase partition-parallel engine —
    /// a coarse scan splits the φ range into contiguous bands, each band
    /// peels independently with partition-local state, and a stitch pass
    /// settles the exact values. See [`crate::partition`].
    BuPlusPlusTwoPhase {
        /// Worker-thread configuration (`Threads(0)` = auto-detect).
        threads: Threads,
    },
    /// BiT-PC (Algorithm 7) with compression parameter τ.
    Pc {
        /// Compression parameter in `(0, 1]`; see [`DEFAULT_TAU`].
        tau: f64,
    },
}

impl Algorithm {
    /// BiT-PC with the paper's default τ.
    pub fn pc_default() -> Algorithm {
        Algorithm::Pc { tau: DEFAULT_TAU }
    }

    /// BiT-BU++/P with auto-detected worker threads.
    pub fn parallel_auto() -> Algorithm {
        Algorithm::BuPlusPlusPar {
            threads: Threads::AUTO,
        }
    }

    /// BiT-BU++2P with auto-detected worker threads.
    pub fn two_phase_auto() -> Algorithm {
        Algorithm::BuPlusPlusTwoPhase {
            threads: Threads::AUTO,
        }
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::BsIntersection => "BS",
            Algorithm::BsPairEnumeration => "BS-pair",
            Algorithm::Bu => "BU",
            Algorithm::BuPlus => "BU+",
            Algorithm::BuPlusPlus => "BU++",
            Algorithm::BuPlusPlusPar { .. } => "BU++/P",
            Algorithm::BuHybrid => "BU#",
            Algorithm::BuPlusPlusTwoPhase { .. } => "BU++2P",
            Algorithm::Pc { .. } => "PC",
        }
    }

    /// The four algorithms compared in Figure 9, in plot order.
    pub fn figure9_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::BsIntersection,
            Algorithm::Bu,
            Algorithm::BuPlusPlus,
            Algorithm::pc_default(),
        ]
    }
}

/// Prints the paper-style name ([`Algorithm::name`]); parameters (τ,
/// thread count) are not rendered, matching the figure labels.
impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when an algorithm name cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    name: String,
}

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown algorithm {:?} (expected bs, bs-pair, bu, bu+, bu++, bu++p, bu++2p, bu#, or pc)",
            self.name
        )
    }
}

impl std::error::Error for ParseAlgorithmError {}

/// Parses the CLI spelling of an algorithm name, case-insensitively:
/// `bs`, `bs-pair`, `bu`, `bu+`, `bu++`, `bu++p` (or `bu++/p`),
/// `bu++2p`, `bu#` (or `bu-hybrid`), `pc`. The paper spellings produced
/// by [`Algorithm::name`] round-trip. Parameterized variants parse with
/// their defaults — `pc` gets [`DEFAULT_TAU`], `bu++p` and `bu++2p` get
/// [`Threads::AUTO`] — and callers override the fields afterwards.
impl FromStr for Algorithm {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> std::result::Result<Algorithm, ParseAlgorithmError> {
        match s.to_ascii_lowercase().as_str() {
            "bs" => Ok(Algorithm::BsIntersection),
            "bs-pair" => Ok(Algorithm::BsPairEnumeration),
            "bu" => Ok(Algorithm::Bu),
            "bu+" => Ok(Algorithm::BuPlus),
            "bu++" => Ok(Algorithm::BuPlusPlus),
            "bu++p" | "bu++/p" => Ok(Algorithm::parallel_auto()),
            "bu++2p" => Ok(Algorithm::two_phase_auto()),
            "bu#" | "bu-hybrid" => Ok(Algorithm::BuHybrid),
            "pc" => Ok(Algorithm::pc_default()),
            _ => Err(ParseAlgorithmError {
                name: s.to_string(),
            }),
        }
    }
}

/// Dispatches one observed run; the single place every entry point —
/// the engine, [`decompose`], [`decompose_observed`] — funnels through.
pub(crate) fn run_algorithm(
    g: &BipartiteGraph,
    algorithm: Algorithm,
    histogram_bounds: Option<&[u64]>,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    // The BiT-BS variants and the parallel/hybrid engines do not support
    // histogram collection; they run plain (matching the Figure 7 scope).
    match algorithm {
        Algorithm::BsIntersection => bs::bit_bs_observed(g, PeelStrategy::Intersection, observer),
        Algorithm::BsPairEnumeration => {
            bs::bit_bs_observed(g, PeelStrategy::PairEnumeration, observer)
        }
        Algorithm::Bu => bu::bit_bu_run(g, histogram_bounds, observer),
        Algorithm::BuPlus => batch::bit_bu_plus_run(g, histogram_bounds, observer),
        Algorithm::BuPlusPlus => batch::bit_bu_pp_run(g, histogram_bounds, observer),
        Algorithm::BuPlusPlusPar { threads } => {
            parallel::bit_bu_pp_par_observed(g, threads, observer)
        }
        Algorithm::BuHybrid => batch::bit_bu_hybrid_run(g, observer),
        Algorithm::BuPlusPlusTwoPhase { threads } => {
            crate::partition::bit_bu_pp_2p_observed(g, threads, observer)
        }
        Algorithm::Pc { tau } => pc::bit_pc_run(g, tau, histogram_bounds, observer),
    }
}

/// Runs bitruss decomposition with the selected algorithm. All algorithms
/// return identical φ arrays; they differ in how the peeling work is
/// organized, which the returned [`Metrics`] quantify.
///
/// This is the one-shot convenience entry point; for sessions that also
/// query, snapshot, or need progress/cancellation, use
/// [`BitrussEngine`](crate::engine::BitrussEngine).
pub fn decompose(g: &BipartiteGraph, algorithm: Algorithm) -> (Decomposition, Metrics) {
    crate::engine::BitrussEngine::builder()
        .algorithm(algorithm)
        .build_borrowed(g)
        .expect("NoopObserver never cancels and the configuration is valid") // xtask:allow(no-panic-lib) legacy wrapper, documented to panic on invalid configuration; EngineBuilder::build is the Err-returning path
        .into_parts()
}

/// [`decompose`] with an [`EngineObserver`] receiving phase events and
/// able to cancel the run.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial result is discarded.
pub fn decompose_observed(
    g: &BipartiteGraph,
    algorithm: Algorithm,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    run_algorithm(g, algorithm, None, observer)
}

/// [`decompose`] with an update histogram bucketed by the given bounds on
/// original supports (Figure 7 instrumentation). Not supported for the
/// BiT-BS variants, which fall back to plain runs.
#[deprecated(note = "use BitrussEngine with EngineBuilder::histogram_bounds")]
pub fn decompose_with_histogram(
    g: &BipartiteGraph,
    algorithm: Algorithm,
    bounds: &[u64],
) -> (Decomposition, Metrics) {
    crate::engine::BitrussEngine::builder()
        .algorithm(algorithm)
        .histogram_bounds(bounds.to_vec())
        .build_borrowed(g)
        .expect("NoopObserver never cancels and the configuration is valid") // xtask:allow(no-panic-lib) legacy wrapper, documented to panic on invalid configuration; EngineBuilder::build is the Err-returning path
        .into_parts()
}

/// [`decompose`] with (2,2)-core pre-pruning (extension): every butterfly
/// lies inside the (2,2)-core, so edges outside it have `φ = 0` and can
/// be dropped before counting and peeling. On butterfly-sparse graphs
/// this shrinks the working graph substantially at `O(n + m)` cost.
#[deprecated(note = "use BitrussEngine with EngineBuilder::pruned(true)")]
pub fn decompose_pruned(g: &BipartiteGraph, algorithm: Algorithm) -> (Decomposition, Metrics) {
    crate::engine::BitrussEngine::builder()
        .algorithm(algorithm)
        .pruned(true)
        .build_borrowed(g)
        .expect("NoopObserver never cancels and the configuration is valid") // xtask:allow(no-panic-lib) legacy wrapper, documented to panic on invalid configuration; EngineBuilder::build is the Err-returning path
        .into_parts()
}

/// The (2,2)-core pre-pruning wrapper around [`run_algorithm`], shared by
/// the engine's `pruned` option and the deprecated [`decompose_pruned`].
pub(crate) fn prune_and_run(
    g: &BipartiteGraph,
    algorithm: Algorithm,
    histogram_bounds: Option<&[u64]>,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    let core = bigraph::alpha_beta_core(g, 2, 2);
    let (sub_dec, metrics) = run_algorithm(&core.graph, algorithm, histogram_bounds, observer)?;
    let mut phi = vec![0u64; g.num_edges() as usize];
    for (i, &old) in core.new_to_old.iter().enumerate() {
        phi[old.index()] = sub_dec.phi[i];
    }
    Ok((Decomposition::new(phi), metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_decomposition;

    #[test]
    fn core_pruning_preserves_phi() {
        for seed in 0..5 {
            let g = datagen::powerlaw::chung_lu(60, 60, 500, 2.2, 2.2, seed);
            let (plain, _) = decompose(&g, Algorithm::BuPlusPlus);
            for alg in [
                Algorithm::Bu,
                Algorithm::BuPlusPlus,
                Algorithm::Pc { tau: 0.2 },
            ] {
                let pruned = crate::engine::BitrussEngine::builder()
                    .algorithm(alg)
                    .pruned(true)
                    .build_borrowed(&g)
                    .unwrap();
                assert_eq!(plain.phi, pruned.phi(), "seed {seed} {}", alg.name());
            }
        }
    }

    #[test]
    fn every_algorithm_agrees_via_the_dispatcher() {
        let g = datagen::random::uniform(12, 12, 55, 99);
        let expect = reference_decomposition(&g);
        for alg in [
            Algorithm::BsIntersection,
            Algorithm::BsPairEnumeration,
            Algorithm::Bu,
            Algorithm::BuPlus,
            Algorithm::BuPlusPlus,
            Algorithm::BuPlusPlusPar {
                threads: Threads(3),
            },
            Algorithm::parallel_auto(),
            Algorithm::BuHybrid,
            Algorithm::BuPlusPlusTwoPhase {
                threads: Threads(2),
            },
            Algorithm::two_phase_auto(),
            Algorithm::pc_default(),
            Algorithm::Pc { tau: 1.0 },
        ] {
            let (d, _) = decompose(&g, alg);
            assert_eq!(d, expect, "{}", alg.name());
        }
    }

    #[test]
    fn names_and_lineup() {
        assert_eq!(Algorithm::Bu.name(), "BU");
        assert_eq!(Algorithm::pc_default().name(), "PC");
        let lineup = Algorithm::figure9_lineup();
        assert_eq!(lineup.len(), 4);
        assert_eq!(lineup[0].name(), "BS");
    }

    #[test]
    fn display_matches_name() {
        for alg in [
            Algorithm::BsIntersection,
            Algorithm::BsPairEnumeration,
            Algorithm::Bu,
            Algorithm::BuPlus,
            Algorithm::BuPlusPlus,
            Algorithm::parallel_auto(),
            Algorithm::BuHybrid,
            Algorithm::two_phase_auto(),
            Algorithm::pc_default(),
        ] {
            assert_eq!(alg.to_string(), alg.name());
        }
    }

    #[test]
    fn from_str_parses_cli_and_paper_spellings() {
        assert_eq!("bs".parse::<Algorithm>(), Ok(Algorithm::BsIntersection));
        assert_eq!(
            "BS-pair".parse::<Algorithm>(),
            Ok(Algorithm::BsPairEnumeration)
        );
        assert_eq!("bu".parse::<Algorithm>(), Ok(Algorithm::Bu));
        assert_eq!("BU+".parse::<Algorithm>(), Ok(Algorithm::BuPlus));
        assert_eq!("bu++".parse::<Algorithm>(), Ok(Algorithm::BuPlusPlus));
        assert_eq!("bu++p".parse::<Algorithm>(), Ok(Algorithm::parallel_auto()));
        assert_eq!(
            "BU++/P".parse::<Algorithm>(),
            Ok(Algorithm::parallel_auto())
        );
        assert_eq!(
            "BU++2P".parse::<Algorithm>(),
            Ok(Algorithm::two_phase_auto())
        );
        assert_eq!("bu#".parse::<Algorithm>(), Ok(Algorithm::BuHybrid));
        assert_eq!("pc".parse::<Algorithm>(), Ok(Algorithm::pc_default()));
        let err = "bu+++".parse::<Algorithm>().unwrap_err();
        assert!(err.to_string().contains("unknown algorithm \"bu+++\""));
    }
}
