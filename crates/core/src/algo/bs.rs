//! BiT-BS — the baseline bottom-up decomposition (Algorithm 1), i.e. the
//! state of the art of Sarıyüce & Pinar (ref.\[5\]) deployed with the fast
//! counting of ref.\[8\], plus the pair-enumeration peeling variant of Zou
//! (ref.\[9\]).
//!
//! Both variants peel the minimum-support edge and enumerate the
//! butterflies containing it *combinatorially* — three edges are combined
//! and the fourth is looked up, wasting work whenever the fourth edge does
//! not exist. This is exactly the cost the BE-Index later removes.

use std::time::Instant;

use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase, CHECK_INTERVAL};
use bigraph::{BipartiteGraph, EdgeId, Result, VertexId};
use butterfly::count_per_edge_observed;

use crate::bucket_queue::BucketQueue;
use crate::decomposition::Decomposition;
use crate::metrics::Metrics;

/// How BiT-BS enumerates the butterflies containing a removed edge.
///
/// Marked `#[non_exhaustive]`: future peeling strategies may be added
/// without a semver break.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeelStrategy {
    /// Ref.\[5\]: for each `w ∈ N(v)\u`, merge-intersect `N(u) ∩ N(w)` —
    /// `O(Σ_{w∈N(v)} max{d(u), d(w)})` per removal.
    Intersection,
    /// Ref.\[9\]: test every pair `(x ∈ N(u)\v, w ∈ N(v)\u)` for the edge
    /// `(w, x)` — `O(d(u)·d(v))` membership checks per removal.
    PairEnumeration,
}

/// Runs BiT-BS (Algorithm 1) with the chosen peeling strategy.
pub fn bit_bs(g: &BipartiteGraph, strategy: PeelStrategy) -> (Decomposition, Metrics) {
    // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
    bit_bs_observed(g, strategy, &NoopObserver).expect("NoopObserver never cancels")
}

/// [`bit_bs`] with an [`EngineObserver`]: phase events for counting and
/// peeling, with a cancellation poll every [`CHECK_INTERVAL`] removals.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial φ assignment is discarded.
pub fn bit_bs_observed(
    g: &BipartiteGraph,
    strategy: PeelStrategy,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    let mut metrics = Metrics::default();
    let m = g.num_edges() as usize;

    let t0 = Instant::now();
    let counts = count_per_edge_observed(g, observer)?;
    metrics.counting_time = t0.elapsed();

    let t1 = Instant::now();
    observer.on_phase_start(Phase::Peeling, m as u64);
    let mut supp = counts.per_edge;
    let mut removed = vec![false; m];
    let mut phi = vec![0u64; m];
    let mut queue = BucketQueue::new(&supp, |_| true);
    metrics.iterations = 1;

    let mut popped = 0u64;
    while let Some((level, e)) = queue.pop_min(&supp) {
        popped += 1;
        if popped.is_multiple_of(CHECK_INTERVAL) {
            checkpoint(observer)?;
            observer.on_phase_progress(Phase::Peeling, popped, m as u64);
        }
        phi[e.index()] = level;
        removed[e.index()] = true;
        let update =
            |e2: EdgeId, supp: &mut [u64], queue: &mut BucketQueue, metrics: &mut Metrics| {
                if supp[e2.index()] > level {
                    let old = supp[e2.index()];
                    supp[e2.index()] = old - 1;
                    queue.decrease(e2, old, old - 1);
                    metrics.record_update(e2);
                }
            };
        let (u, v) = g.edge(e);
        match strategy {
            PeelStrategy::Intersection => {
                // For each wedge (u, v, w), find x ∈ N(u) ∩ N(w) closing
                // the butterfly [u, v, w, x].
                for (w, e_vw) in g.neighbors(v) {
                    if w == u || removed[e_vw.index()] {
                        continue;
                    }
                    intersect_neighbors(g, u, w, |x, e_ux, e_wx| {
                        if x == v || removed[e_ux.index()] || removed[e_wx.index()] {
                            return;
                        }
                        update(e_vw, &mut supp, &mut queue, &mut metrics);
                        update(e_ux, &mut supp, &mut queue, &mut metrics);
                        update(e_wx, &mut supp, &mut queue, &mut metrics);
                    });
                }
            }
            PeelStrategy::PairEnumeration => {
                for (x, e_ux) in g.neighbors(u) {
                    if x == v || removed[e_ux.index()] {
                        continue;
                    }
                    for (w, e_vw) in g.neighbors(v) {
                        if w == u || removed[e_vw.index()] {
                            continue;
                        }
                        // The fourth edge: does (w, x) exist and survive?
                        if let Some(e_wx) = g.edge_between(w, x) {
                            if !removed[e_wx.index()] {
                                update(e_vw, &mut supp, &mut queue, &mut metrics);
                                update(e_ux, &mut supp, &mut queue, &mut metrics);
                                update(e_wx, &mut supp, &mut queue, &mut metrics);
                            }
                        }
                    }
                }
            }
        }
    }
    metrics.peeling_time = t1.elapsed();
    observer.on_phase_end(Phase::Peeling);
    Ok((Decomposition::new(phi), metrics))
}

/// Merge-intersects the id-sorted adjacency lists of `a` and `b` (same
/// layer), invoking `f(x, e_ax, e_bx)` for every common neighbour `x`.
fn intersect_neighbors<F: FnMut(VertexId, EdgeId, EdgeId)>(
    g: &BipartiteGraph,
    a: VertexId,
    b: VertexId,
    mut f: F,
) {
    let (na, ea) = (g.neighbor_slice(a), g.neighbor_edge_slice(a));
    let (nb, eb) = (g.neighbor_slice(b), g.neighbor_edge_slice(b));
    let (mut i, mut j) = (0usize, 0usize);
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(VertexId(na[i]), EdgeId(ea[i]), EdgeId(eb[j]));
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{reference_decomposition, validate_decomposition};
    use bigraph::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn both_strategies_match_reference_on_fig1() {
        let g = fig1();
        let expect = reference_decomposition(&g);
        for strat in [PeelStrategy::Intersection, PeelStrategy::PairEnumeration] {
            let (d, m) = bit_bs(&g, strat);
            assert_eq!(d, expect, "{strat:?}");
            assert_eq!(m.iterations, 1);
            validate_decomposition(&g, &d).unwrap();
        }
    }

    #[test]
    fn complete_biclique() {
        let mut b = GraphBuilder::new();
        for u in 0..4 {
            for v in 0..4 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let (d, _) = bit_bs(&g, PeelStrategy::Intersection);
        assert!(d.phi.iter().all(|&p| p == 9)); // (4-1)(4-1)
    }

    #[test]
    fn butterfly_free_graph_is_all_zero() {
        let mut b = GraphBuilder::new();
        for v in 0..10 {
            b.push_edge(0, v);
        }
        let g = b.build().unwrap();
        let (d, m) = bit_bs(&g, PeelStrategy::Intersection);
        assert!(d.phi.iter().all(|&p| p == 0));
        assert_eq!(m.support_updates, 0);
    }

    #[test]
    fn phase_times_are_recorded() {
        let g = fig1();
        let (_, m) = bit_bs(&g, PeelStrategy::Intersection);
        // Both phases ran (durations are non-zero on any real clock, but
        // at minimum they were written).
        assert!(m.total_time() >= m.peeling_time);
        assert_eq!(m.peak_index_bytes, 0); // BS uses no index
    }
}
