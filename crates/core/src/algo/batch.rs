//! BiT-BU+ and BiT-BU++ — the batch-based optimizations of §V-B.
//!
//! *Batch edge processing* (BiT-BU+): all edges at the minimum support
//! level are peeled as one set `S` (Lemma 9: removing an edge never
//! changes φ of another edge at the same support), and the support
//! deltas they cause are aggregated per affected edge so each affected
//! edge receives **one** write per batch instead of one per removal.
//!
//! *Batch bloom processing* (BiT-BU++, Algorithm 5): additionally, each
//! bloom touched by the batch is traversed **once**: `C(B)` counts the
//! wedge pairs the batch removed from `B`, twins are settled immediately
//! with `−(k−1)` (line 12), and every surviving edge of `B` receives a
//! single `−C(B)` (line 18), with all supports clamped at the batch level
//! `MBS` (the `max(MBS, ·)` rule).
//!
//! Both produce supports identical to sequential BiT-BU — clamped
//! decrements compose: `max(f, max(f, s−a)−b) = max(f, s−a−b)` — which
//! the cross-algorithm tests exploit.

use std::time::Instant;

use beindex::{BeIndex, BloomId, WedgeId};
use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase};
use bigraph::{BipartiteGraph, EdgeId, Result};
use butterfly::count_per_edge_observed;

use crate::bucket_queue::BucketQueue;
use crate::decomposition::Decomposition;
use crate::metrics::Metrics;

/// Runs BiT-BU+ (batch edge processing only — the `BU+` series of
/// Figure 13).
pub fn bit_bu_plus(g: &BipartiteGraph) -> (Decomposition, Metrics) {
    bit_bu_plus_opts(g, None)
}

/// [`bit_bu_plus`] with optional update-histogram bucket bounds.
pub fn bit_bu_plus_opts(
    g: &BipartiteGraph,
    histogram_bounds: Option<&[u64]>,
) -> (Decomposition, Metrics) {
    // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
    bit_bu_plus_run(g, histogram_bounds, &NoopObserver).expect("NoopObserver never cancels")
}

/// [`bit_bu_plus`] with an [`EngineObserver`]: phase events for counting,
/// index construction and peeling, with a cancellation poll per batch.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial φ assignment is discarded.
pub fn bit_bu_plus_observed(
    g: &BipartiteGraph,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    bit_bu_plus_run(g, None, observer)
}

pub(crate) fn bit_bu_plus_run(
    g: &BipartiteGraph,
    histogram_bounds: Option<&[u64]>,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    let mut metrics = Metrics::default();
    let m = g.num_edges() as usize;

    let t0 = Instant::now();
    let counts = count_per_edge_observed(g, observer)?;
    metrics.counting_time = t0.elapsed();
    if let Some(bounds) = histogram_bounds {
        metrics.enable_histogram(bounds.to_vec(), &counts.per_edge);
    }

    let t1 = Instant::now();
    let mut index = BeIndex::build_observed(g, observer)?;
    metrics.index_time = t1.elapsed();
    metrics.peak_index_bytes = index.memory_bytes();
    metrics.iterations = 1;

    let t2 = Instant::now();
    observer.on_phase_start(Phase::Peeling, m as u64);
    let mut supp = counts.per_edge;
    let mut phi = vec![0u64; m];
    let mut queue = BucketQueue::new(&supp, |_| true);

    // Aggregated per-edge deltas for the current batch.
    let mut delta = vec![0u64; m];
    let mut touched: Vec<u32> = Vec::new();
    let mut batch: Vec<EdgeId> = Vec::new();

    let mut popped = 0u64;
    while let Some(level) = queue.pop_level(&supp, &mut batch) {
        checkpoint(observer)?;
        popped += batch.len() as u64;
        observer.on_phase_progress(Phase::Peeling, popped, m as u64);
        for &e in &batch {
            phi[e.index()] = level;
        }
        // Sequential traversal with aggregated writes.
        for &e in &batch {
            for li in 0..index.links(e).len() {
                let w0 = WedgeId(index.links(e)[li]);
                if !index.wedge_alive(w0) {
                    continue;
                }
                let b = index.wedge_bloom(w0);
                let k = index.bloom_k(b) as u64;
                let twin = index.wedge_twin(w0, e);
                index.kill_wedge(w0);
                index.sub_bloom_k(b, 1);
                if k >= 2 && index.in_index(twin) {
                    if delta[twin.index()] == 0 {
                        touched.push(twin.0);
                    }
                    delta[twin.index()] += k - 1;
                }
                for w in index.bloom_wedges(b) {
                    if !index.wedge_alive(w) {
                        continue;
                    }
                    let (e1, e2) = index.wedge_members(w);
                    for other in [e1, e2] {
                        if index.in_index(other) {
                            if delta[other.index()] == 0 {
                                touched.push(other.0);
                            }
                            delta[other.index()] += 1;
                        }
                    }
                }
            }
            index.remove_edge_links(e);
        }
        // One write per affected surviving edge.
        for &t in &touched {
            let e = EdgeId(t);
            let d = std::mem::take(&mut delta[e.index()]);
            if d > 0 && index.in_index(e) && supp[e.index()] > level {
                let old = supp[e.index()];
                let new = level.max(old.saturating_sub(d));
                supp[e.index()] = new;
                queue.decrease(e, old, new);
                metrics.record_update(e);
            }
        }
        touched.clear();
    }
    metrics.peeling_time = t2.elapsed();
    observer.on_phase_end(Phase::Peeling);
    Ok((Decomposition::new(phi), metrics))
}

/// Runs BiT-BU++ (Algorithm 5: batch edge *and* batch bloom processing).
pub fn bit_bu_pp(g: &BipartiteGraph) -> (Decomposition, Metrics) {
    bit_bu_pp_opts(g, None)
}

/// [`bit_bu_pp`] with optional update-histogram bucket bounds.
pub fn bit_bu_pp_opts(
    g: &BipartiteGraph,
    histogram_bounds: Option<&[u64]>,
) -> (Decomposition, Metrics) {
    // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
    bit_bu_pp_run(g, histogram_bounds, &NoopObserver).expect("NoopObserver never cancels")
}

/// [`bit_bu_pp`] with an [`EngineObserver`]: phase events for counting,
/// index construction and peeling, with a cancellation poll per batch.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial φ assignment is discarded.
pub fn bit_bu_pp_observed(
    g: &BipartiteGraph,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    bit_bu_pp_run(g, None, observer)
}

pub(crate) fn bit_bu_pp_run(
    g: &BipartiteGraph,
    histogram_bounds: Option<&[u64]>,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    let mut metrics = Metrics::default();
    let m = g.num_edges() as usize;

    let t0 = Instant::now();
    let counts = count_per_edge_observed(g, observer)?;
    metrics.counting_time = t0.elapsed();
    if let Some(bounds) = histogram_bounds {
        metrics.enable_histogram(bounds.to_vec(), &counts.per_edge);
    }

    let t1 = Instant::now();
    let mut index = BeIndex::build_observed(g, observer)?;
    metrics.index_time = t1.elapsed();
    metrics.peak_index_bytes = index.memory_bytes();
    metrics.iterations = 1;

    let t2 = Instant::now();
    observer.on_phase_start(Phase::Peeling, m as u64);
    let mut supp = counts.per_edge;
    let mut phi = vec![0u64; m];
    let mut queue = BucketQueue::new(&supp, |_| true);
    let mut state = BatchState::new(index.num_blooms());
    let mut batch: Vec<EdgeId> = Vec::new();

    let mut popped = 0u64;
    while let Some(level) = queue.pop_level(&supp, &mut batch) {
        checkpoint(observer)?;
        popped += batch.len() as u64;
        observer.on_phase_progress(Phase::Peeling, popped, m as u64);
        for &e in &batch {
            phi[e.index()] = level;
        }
        peel_batch_pp(
            &mut index,
            &mut supp,
            &mut queue,
            &mut state,
            &batch,
            level,
            &mut metrics,
            None,
        );
    }
    metrics.peeling_time = t2.elapsed();
    observer.on_phase_end(Phase::Peeling);
    Ok((Decomposition::new(phi), metrics))
}

/// Runs BiT-BU# — an extension beyond the paper combining both batch
/// optimizations at their best: each touched bloom is traversed **once**
/// per batch (as in BiT-BU++) *and* the resulting deltas are aggregated
/// per affected edge across blooms so each edge receives **one** write
/// per batch (as in BiT-BU+). Strictly fewer bloom traversals than BU+
/// and strictly fewer queue writes than BU++.
pub fn bit_bu_hybrid(g: &BipartiteGraph) -> (Decomposition, Metrics) {
    bit_bu_hybrid_run(g, &NoopObserver).expect("NoopObserver never cancels") // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
}

/// [`bit_bu_hybrid`] with an [`EngineObserver`]: phase events for
/// counting, index construction and peeling, with a cancellation poll per
/// batch.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial φ assignment is discarded.
pub fn bit_bu_hybrid_observed(
    g: &BipartiteGraph,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    bit_bu_hybrid_run(g, observer)
}

pub(crate) fn bit_bu_hybrid_run(
    g: &BipartiteGraph,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    let mut metrics = Metrics::default();
    let m = g.num_edges() as usize;

    let t0 = Instant::now();
    let counts = count_per_edge_observed(g, observer)?;
    metrics.counting_time = t0.elapsed();

    let t1 = Instant::now();
    let mut index = BeIndex::build_observed(g, observer)?;
    metrics.index_time = t1.elapsed();
    metrics.peak_index_bytes = index.memory_bytes();
    metrics.iterations = 1;

    let t2 = Instant::now();
    observer.on_phase_start(Phase::Peeling, m as u64);
    let mut supp = counts.per_edge;
    let mut phi = vec![0u64; m];
    let mut queue = BucketQueue::new(&supp, |_| true);
    let mut state = BatchState::new(index.num_blooms());
    let mut delta = vec![0u64; m];
    let mut touched_edges: Vec<u32> = Vec::new();
    let mut batch: Vec<EdgeId> = Vec::new();

    let mut popped = 0u64;
    while let Some(level) = queue.pop_level(&supp, &mut batch) {
        checkpoint(observer)?;
        popped += batch.len() as u64;
        observer.on_phase_progress(Phase::Peeling, popped, m as u64);
        for &e in &batch {
            phi[e.index()] = level;
        }
        let bump = |delta: &mut Vec<u64>, touched: &mut Vec<u32>, e: EdgeId, by: u64| {
            if delta[e.index()] == 0 {
                touched.push(e.0);
            }
            delta[e.index()] += by;
        };
        // Phase 1: kill wedges, count C(B), accumulate twin deltas.
        for &e in &batch {
            for li in 0..index.links(e).len() {
                let w0 = WedgeId(index.links(e)[li]);
                if !index.wedge_alive(w0) {
                    continue;
                }
                let b = index.wedge_bloom(w0);
                let k = index.bloom_k(b) as u64;
                let twin = index.wedge_twin(w0, e);
                index.kill_wedge(w0);
                if state.c[b.index()] == 0 {
                    state.touched_blooms.push(b.0);
                }
                state.c[b.index()] += 1;
                if k >= 2 && index.in_index(twin) {
                    bump(&mut delta, &mut touched_edges, twin, k - 1);
                }
            }
            index.remove_edge_links(e);
        }
        // Phase 2: one traversal per touched bloom, accumulating −C(B)
        // per surviving member edge.
        for i in 0..state.touched_blooms.len() {
            let b = BloomId(state.touched_blooms[i]);
            let c = std::mem::take(&mut state.c[b.index()]) as u64;
            index.sub_bloom_k(b, c as u32);
            for w in index.bloom_wedges(b) {
                if !index.wedge_alive(w) {
                    continue;
                }
                let (e1, e2) = index.wedge_members(w);
                for other in [e1, e2] {
                    if index.in_index(other) {
                        bump(&mut delta, &mut touched_edges, other, c);
                    }
                }
            }
        }
        state.touched_blooms.clear();
        // Phase 3: one clamped write per affected edge.
        for &t in &touched_edges {
            let e = EdgeId(t);
            let d = std::mem::take(&mut delta[e.index()]);
            if d > 0 && index.in_index(e) && supp[e.index()] > level {
                let old = supp[e.index()];
                let new = level.max(old.saturating_sub(d));
                supp[e.index()] = new;
                queue.decrease(e, old, new);
                metrics.record_update(e);
            }
        }
        touched_edges.clear();
    }
    metrics.peeling_time = t2.elapsed();
    observer.on_phase_end(Phase::Peeling);
    Ok((Decomposition::new(phi), metrics))
}

/// Reusable per-bloom batch counters (`C(B∗)` of Algorithm 5).
pub(crate) struct BatchState {
    /// `c[b]` = wedge pairs removed from bloom `b` in the current batch.
    c: Vec<u32>,
    touched_blooms: Vec<u32>,
}

impl BatchState {
    pub(crate) fn new(num_blooms: u32) -> Self {
        Self {
            c: vec![0; num_blooms as usize],
            touched_blooms: Vec::new(),
        }
    }
}

/// One BiT-BU++ batch (Algorithm 5 lines 6–21), shared with BiT-PC.
///
/// `map`, when present, translates index edge ids to global edge ids for
/// histogram attribution.
#[allow(clippy::too_many_arguments)]
pub(crate) fn peel_batch_pp(
    index: &mut BeIndex,
    supp: &mut [u64],
    queue: &mut BucketQueue,
    state: &mut BatchState,
    batch: &[EdgeId],
    level: u64,
    metrics: &mut Metrics,
    map: Option<&[EdgeId]>,
) {
    let record = |metrics: &mut Metrics, e: EdgeId| {
        metrics.record_update(match map {
            Some(m) => m[e.index()],
            None => e,
        });
    };

    // Phase 1 (lines 6–13): count removed wedge pairs per bloom and settle
    // twins with −(k−1), k taken at batch start (bloom_k untouched here).
    for &e in batch {
        for li in 0..index.links(e).len() {
            let w0 = WedgeId(index.links(e)[li]);
            if !index.wedge_alive(w0) {
                continue; // twin also in S and processed first
            }
            let b = index.wedge_bloom(w0);
            let k = index.bloom_k(b) as u64;
            let twin = index.wedge_twin(w0, e);
            index.kill_wedge(w0);
            if state.c[b.index()] == 0 {
                state.touched_blooms.push(b.0);
            }
            state.c[b.index()] += 1;
            if k >= 2 && index.in_index(twin) && supp[twin.index()] > level {
                let old = supp[twin.index()];
                let new = level.max(old.saturating_sub(k - 1));
                supp[twin.index()] = new;
                queue.decrease(twin, old, new);
                record(metrics, twin);
            }
        }
        index.remove_edge_links(e);
    }

    // Phase 2 (lines 14–18): one traversal per touched bloom; surviving
    // edges lose C(B) each.
    for i in 0..state.touched_blooms.len() {
        let b = BloomId(state.touched_blooms[i]);
        let c = std::mem::take(&mut state.c[b.index()]) as u64;
        index.sub_bloom_k(b, c as u32);
        for w in index.bloom_wedges(b) {
            if !index.wedge_alive(w) {
                continue;
            }
            let (e1, e2) = index.wedge_members(w);
            for other in [e1, e2] {
                if index.in_index(other) && supp[other.index()] > level {
                    let old = supp[other.index()];
                    let new = level.max(old.saturating_sub(c));
                    supp[other.index()] = new;
                    queue.decrease(other, old, new);
                    record(metrics, other);
                }
            }
        }
    }
    state.touched_blooms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bu::bit_bu;
    use crate::verify::{reference_decomposition, validate_decomposition};
    use bigraph::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn example3_batches() {
        // Example 3: the batch {e6,e7,e8} at support 1 updates only e5;
        // the next batch {e0..e5} at support 2 needs no updates at all.
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
            ])
            .build()
            .unwrap();
        let (d, m) = bit_bu_pp(&g);
        assert_eq!(d.phi, vec![2, 2, 2, 2, 2, 2, 1, 1, 1]);
        // Exactly one support update in the whole run (e5: 3 → 2).
        assert_eq!(m.support_updates, 1);
    }

    #[test]
    fn all_variants_agree_on_fig1() {
        let g = fig1();
        let expect = reference_decomposition(&g);
        let (d_plus, m_plus) = bit_bu_plus(&g);
        let (d_pp, m_pp) = bit_bu_pp(&g);
        let (d_bu, m_bu) = bit_bu(&g);
        assert_eq!(d_plus, expect);
        assert_eq!(d_pp, expect);
        assert_eq!(d_bu, expect);
        validate_decomposition(&g, &d_pp).unwrap();
        // Batching can only reduce the number of updates relative to
        // per-removal peeling. (BU+ aggregates to one write per affected
        // edge per batch — the minimum — while BU++ writes once per
        // touched (bloom, edge) pair, trading a few extra writes for
        // visiting each bloom once; so both are ≤ BU but BU++ is not
        // necessarily ≤ BU+.)
        assert!(m_plus.support_updates <= m_bu.support_updates);
        assert!(m_pp.support_updates <= m_bu.support_updates);
    }

    #[test]
    fn random_graphs_match_reference() {
        for seed in 0..8 {
            let g = datagen::random::uniform(13, 15, 70, seed);
            let expect = reference_decomposition(&g);
            let (d_plus, _) = bit_bu_plus(&g);
            let (d_pp, _) = bit_bu_pp(&g);
            assert_eq!(d_plus, expect, "BU+ seed {seed}");
            assert_eq!(d_pp, expect, "BU++ seed {seed}");
        }
    }

    #[test]
    fn batching_reduces_updates_on_skewed_graphs() {
        let g = datagen::powerlaw::chung_lu(80, 80, 1_200, 1.9, 1.9, 5);
        let (d_bu, m_bu) = bit_bu(&g);
        let (d_plus, m_plus) = bit_bu_plus(&g);
        let (d_pp, m_pp) = bit_bu_pp(&g);
        assert_eq!(d_bu, d_plus);
        assert_eq!(d_bu, d_pp);
        assert!(m_plus.support_updates <= m_bu.support_updates);
        assert!(m_pp.support_updates <= m_bu.support_updates);
    }

    #[test]
    fn hybrid_agrees_and_minimizes_updates() {
        for seed in 0..6 {
            let g = datagen::random::uniform(13, 14, 65, seed);
            let expect = reference_decomposition(&g);
            let (d, _) = bit_bu_hybrid(&g);
            assert_eq!(d, expect, "seed {seed}");
        }
        // On a skewed graph: same φ, and write count equal to BU+'s
        // (both aggregate to one write per affected edge per batch)
        // which lower-bounds BU++'s per-bloom writes.
        let g = datagen::powerlaw::chung_lu(90, 90, 1_400, 1.9, 1.9, 8);
        let (d_h, m_h) = bit_bu_hybrid(&g);
        let (d_plus, m_plus) = bit_bu_plus(&g);
        let (d_pp, m_pp) = bit_bu_pp(&g);
        assert_eq!(d_h, d_plus);
        assert_eq!(d_h, d_pp);
        assert_eq!(m_h.support_updates, m_plus.support_updates);
        assert!(m_h.support_updates <= m_pp.support_updates);
    }
}
