//! BiT-PC — the progressive compression decomposition (Algorithm 7).
//!
//! Instead of peeling from the globally minimum support upward, BiT-PC
//! processes *hub edges first*, inside small cohesive candidate subgraphs:
//!
//! 1. `kmax` — the largest possible bitruss number — is the h-index of the
//!    support multiset (there must be at least `kmax` edges with support
//!    `≥ kmax`);
//! 2. iteration `i` extracts the candidate graph `G≥εᵢ` of edges whose
//!    *original* support is `≥ εᵢ` (assigned edges included), recounts
//!    supports inside it and drops unassigned edges below εᵢ **to a
//!    fixpoint** (Algorithm 7 line 6) — the surviving subgraph is exactly
//!    the εᵢ-bitruss plus the already-assigned edges; then it builds the
//!    **compressed** BE-Index (Algorithm 6), in which assigned edges keep
//!    their blooms alive but receive no links, and peels bottom-up.
//!    Because every remaining unassigned edge has support `≥ εᵢ` and
//!    updates clamp at the peel level, every pop happens at level `≥ εᵢ`
//!    and receives its final φ — no edge is ever ground below εᵢ;
//! 3. `εᵢ₊₁ = max(εᵢ − ⌈kmax·τ⌉, 0)` until everything is assigned.
//!
//! Because an assigned edge is never updated again, the expensive hub
//! edges stop costing support updates the moment their φ is known — the
//! >90 % update reduction of Figure 10.
//!
//! **Interpretation note.** The paper states the candidate cleanup as a
//! single recount-and-remove pass; read literally, cascading support
//! drops would then be *deferred* mid-peel and re-ground in every later
//! iteration, making the update count grow as τ shrinks — the opposite of
//! the paper's measured Figure 14(b). Running the cleanup to a fixpoint
//! (a pure counting loop, no support updates) reproduces the published
//! behaviour and is what we implement; DESIGN.md records the choice.

use std::time::Instant;

use beindex::BeIndex;
use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase};
use bigraph::{edge_subgraph, BipartiteGraph, EdgeId, Error, Result};
use butterfly::{count_per_edge, count_per_edge_observed};

use crate::algo::batch::{peel_batch_pp, BatchState};
use crate::bucket_queue::BucketQueue;
use crate::decomposition::Decomposition;
use crate::metrics::Metrics;

/// The paper's default τ (§VI-A: "we set τ as 0.02 by default").
pub const DEFAULT_TAU: f64 = 0.02;

/// Largest possible bitruss number: the h-index of the support multiset —
/// the largest `k` such that at least `k` edges have support `≥ k`
/// (Algorithm 7 step 1). Upper-bounds `φ_max` because a `φ_max`-bitruss
/// contains more than `φ_max` edges of support `≥ φ_max`.
pub fn kmax_bound(supports: &[u64]) -> u64 {
    let mut sorted: Vec<u64> = supports.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut k = 0u64;
    for (i, &s) in sorted.iter().enumerate() {
        if s >= (i + 1) as u64 {
            k = (i + 1) as u64;
        } else {
            break;
        }
    }
    k
}

/// Runs BiT-PC (Algorithm 7) with compression parameter `τ ∈ (0, 1]`.
pub fn bit_pc(g: &BipartiteGraph, tau: f64) -> (Decomposition, Metrics) {
    bit_pc_opts(g, tau, None)
}

/// [`bit_pc`] with optional update-histogram bucket bounds over original
/// (whole-graph) supports.
pub fn bit_pc_opts(
    g: &BipartiteGraph,
    tau: f64,
    histogram_bounds: Option<&[u64]>,
) -> (Decomposition, Metrics) {
    // xtask:allow(no-panic-lib) legacy wrapper, documented to panic on invalid configuration; EngineBuilder::build is the Err-returning path
    bit_pc_run(g, tau, histogram_bounds, &NoopObserver).expect("NoopObserver never cancels")
}

/// [`bit_pc`] with an [`EngineObserver`]. BiT-PC revisits its phases once
/// per ε-iteration, so observers see repeated
/// [`Phase::Extraction`]/[`Phase::IndexBuild`]/[`Phase::Peeling`] cycles
/// after the single global [`Phase::Counting`]; peeling progress reports
/// the cumulative number of assigned edges out of `m`. Cancellation is
/// polled per fixpoint round, per index build, and per peel batch.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial φ assignment is discarded.
pub fn bit_pc_observed(
    g: &BipartiteGraph,
    tau: f64,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    bit_pc_run(g, tau, None, observer)
}

pub(crate) fn bit_pc_run(
    g: &BipartiteGraph,
    tau: f64,
    histogram_bounds: Option<&[u64]>,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    if !(tau > 0.0 && tau <= 1.0) {
        return Err(Error::Invariant(format!("τ must lie in (0, 1], got {tau}")));
    }
    let mut metrics = Metrics::default();
    let m = g.num_edges() as usize;

    // Step 0: global counting, done once.
    let t0 = Instant::now();
    let global = count_per_edge_observed(g, observer)?;
    metrics.counting_time = t0.elapsed();
    if let Some(bounds) = histogram_bounds {
        metrics.enable_histogram(bounds.to_vec(), &global.per_edge);
    }

    let mut phi = vec![0u64; m];
    let mut assigned = vec![false; m];
    let mut num_assigned = 0usize;

    let kmax = kmax_bound(&global.per_edge);
    let alpha = ((kmax as f64 * tau).ceil() as u64).max(1);
    let mut eps = kmax;

    let mut alive = vec![false; m];
    loop {
        metrics.iterations += 1;

        // Step 1: candidate graph by *original* support, assigned edges
        // included so their butterflies keep supporting the rest.
        for (a, &s) in alive.iter_mut().zip(&global.per_edge) {
            *a = s >= eps;
        }

        // Recount within the candidate graph and drop unassigned edges
        // below εᵢ, to a fixpoint (Algorithm 7 line 6): the survivor is
        // the εᵢ-bitruss together with the assigned edges (whose φ ≥ εᵢ
        // already certifies their membership).
        let (sub, counts) = loop {
            checkpoint(observer)?;
            observer.on_phase_start(Phase::Extraction, m as u64);
            let t1 = Instant::now();
            let sub = edge_subgraph(g, |e| alive[e.index()]);
            metrics.extraction_time += t1.elapsed();
            observer.on_phase_end(Phase::Extraction);

            let t2 = Instant::now();
            let counts = count_per_edge(&sub.graph);
            metrics.counting_time += t2.elapsed();

            let mut changed = false;
            for (i, &s) in counts.per_edge.iter().enumerate() {
                let orig = sub.new_to_old[i];
                if s < eps && !assigned[orig.index()] {
                    alive[orig.index()] = false;
                    changed = true;
                }
            }
            if !changed {
                break (sub, counts);
            }
        };
        let to_global: &[EdgeId] = &sub.new_to_old;
        let sub_assigned: Vec<bool> = to_global.iter().map(|&e| assigned[e.index()]).collect();

        // Step 2: compressed index (Algorithm 6) and bottom-up peel. The
        // derived supports equal the fixpoint counts for unassigned edges.
        let t4 = Instant::now();
        let mut index = BeIndex::build_compressed_observed(&sub.graph, &sub_assigned, observer)?;
        metrics.index_time += t4.elapsed();
        metrics.peak_index_bytes = metrics.peak_index_bytes.max(index.memory_bytes());
        debug_assert!({
            let derived = index.derive_supports();
            to_global
                .iter()
                .enumerate()
                .filter(|&(_, &g_e)| !assigned[g_e.index()])
                .all(|(i, _)| derived[i] == counts.per_edge[i])
        });

        let t5 = Instant::now();
        observer.on_phase_start(Phase::Peeling, m as u64);
        let mut supp = counts.per_edge;
        let mut queue = BucketQueue::new(&supp, |e| index.in_index(e));
        let mut state = BatchState::new(index.num_blooms());
        let mut batch: Vec<EdgeId> = Vec::new();

        while let Some(level) = queue.pop_level(&supp, &mut batch) {
            checkpoint(observer)?;
            // Every unassigned edge entered with support ≥ εᵢ and clamping
            // keeps supports at or above the peel level, so every pop is
            // final (no deferral).
            debug_assert!(level >= eps);
            for &e in &batch {
                let global_e = to_global[e.index()];
                phi[global_e.index()] = level;
                assigned[global_e.index()] = true;
                num_assigned += 1;
            }
            peel_batch_pp(
                &mut index,
                &mut supp,
                &mut queue,
                &mut state,
                &batch,
                level,
                &mut metrics,
                Some(to_global),
            );
            observer.on_phase_progress(Phase::Peeling, num_assigned as u64, m as u64);
        }
        metrics.peeling_time += t5.elapsed();
        observer.on_phase_end(Phase::Peeling);

        if num_assigned == m || eps == 0 {
            break;
        }
        eps = eps.saturating_sub(alpha);
    }

    debug_assert_eq!(num_assigned, m);
    Ok((Decomposition::new(phi), metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{reference_decomposition, validate_decomposition};
    use bigraph::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn kmax_is_an_h_index() {
        assert_eq!(kmax_bound(&[]), 0);
        assert_eq!(kmax_bound(&[0, 0, 0]), 0);
        assert_eq!(kmax_bound(&[5, 5, 5, 5, 5]), 5);
        assert_eq!(kmax_bound(&[9, 7, 6, 2, 1]), 3);
        assert_eq!(kmax_bound(&[1, 1, 1, 1]), 1);
    }

    #[test]
    fn kmax_bounds_phi_max() {
        for seed in 0..6 {
            let g = datagen::random::uniform(12, 12, 50, seed);
            let counts = butterfly::count_per_edge(&g);
            let d = reference_decomposition(&g);
            assert!(
                kmax_bound(&counts.per_edge) >= d.max_bitruss(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_reference_on_fig1_for_every_tau() {
        let g = fig1();
        let expect = reference_decomposition(&g);
        for tau in [0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
            let (d, m) = bit_pc(&g, tau);
            assert_eq!(d, expect, "tau {tau}");
            assert!(m.iterations >= 1);
        }
        validate_decomposition(&g, &expect).unwrap();
    }

    #[test]
    fn random_graphs_match_reference() {
        for seed in 0..8 {
            let g = datagen::random::uniform(14, 13, 65, seed);
            let expect = reference_decomposition(&g);
            for tau in [0.02, 0.3, 1.0] {
                let (d, _) = bit_pc(&g, tau);
                assert_eq!(d, expect, "seed {seed} tau {tau}");
            }
        }
    }

    #[test]
    fn smaller_tau_means_more_iterations() {
        let g = datagen::powerlaw::chung_lu(70, 70, 1_000, 1.9, 1.9, 2);
        let (d_small, m_small) = bit_pc(&g, 0.02);
        let (d_large, m_large) = bit_pc(&g, 1.0);
        assert_eq!(d_small, d_large);
        assert!(m_small.iterations >= m_large.iterations);
    }

    #[test]
    fn pc_reduces_updates_when_cores_dominate() {
        // Nested dense cores hold the butterfly mass (sup ≈ φ inside the
        // cores) with power-law noise around them — the shape of the
        // paper's datasets. PC assigns the cores in its first iterations
        // and compresses them, saving the bulk of the updates.
        use datagen::block::Block;
        let mut b = bigraph::GraphBuilder::new()
            .with_upper(1_500)
            .with_lower(800);
        b = b.add_edges(datagen::powerlaw::chung_lu(1_500, 800, 6_000, 2.1, 2.1, 13).edge_pairs());
        let blocks = [
            Block::full(100, 30, 100, 30),
            Block::full(110, 20, 110, 20),
            Block::full(300, 22, 300, 24),
            Block::full(500, 16, 400, 16),
        ];
        b = b.add_edges(datagen::block::planted_blocks(1_500, 800, &blocks, 0, 14).edge_pairs());
        let g = b.build().unwrap();

        let (d_bu, m_bu) = crate::algo::batch::bit_bu_pp(&g);
        let (d_pc, m_pc) = bit_pc(&g, 0.05);
        assert_eq!(d_bu, d_pc);
        assert!(
            2 * m_pc.support_updates <= m_bu.support_updates,
            "PC {} vs BU++ {}",
            m_pc.support_updates,
            m_bu.support_updates
        );
    }

    #[test]
    fn updates_grow_with_tau_when_cores_dominate() {
        // Figure 14(b): fewer compression iterations (larger τ) means
        // more support updates.
        use datagen::block::Block;
        let mut b = bigraph::GraphBuilder::new().with_upper(900).with_lower(700);
        b = b.add_edges(datagen::powerlaw::chung_lu(900, 700, 4_000, 2.2, 2.2, 21).edge_pairs());
        let blocks = [Block::full(50, 24, 50, 24), Block::full(58, 14, 58, 14)];
        b = b.add_edges(datagen::block::planted_blocks(900, 700, &blocks, 0, 22).edge_pairs());
        let g = b.build().unwrap();

        let (d_small, m_small) = bit_pc(&g, 0.02);
        let (d_big, m_big) = bit_pc(&g, 1.0);
        assert_eq!(d_small, d_big);
        assert!(
            m_small.support_updates < m_big.support_updates,
            "τ=0.02 {} vs τ=1 {}",
            m_small.support_updates,
            m_big.support_updates
        );
    }

    #[test]
    #[should_panic(expected = "τ must lie in (0, 1]")]
    fn invalid_tau_panics() {
        bit_pc(&fig1(), 0.0);
    }

    #[test]
    fn butterfly_free_graph() {
        let mut b = GraphBuilder::new();
        for v in 0..6 {
            b.push_edge(0, v);
            b.push_edge(v + 1, v);
        }
        let g = b.build().unwrap();
        let (d, m) = bit_pc(&g, 0.1);
        assert!(d.phi.iter().all(|&p| p == 0));
        assert_eq!(m.iterations, 1); // kmax = 0 ⇒ single ε = 0 iteration
    }
}
