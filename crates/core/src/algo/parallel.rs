//! BiT-BU++/P — the shared-memory parallel decomposition engine.
//!
//! All three phases of BiT-BU++ get a parallel counterpart:
//!
//! 1. **Counting** uses `butterfly::count_per_edge_parallel` (sharded
//!    wedge enumeration, parallel reduction).
//! 2. **Index construction** uses [`BeIndex::build_parallel`] — bit-
//!    identical to the sequential build for every thread count.
//! 3. **Peeling** exploits Lemma 9 exactly like the batch algorithms of
//!    §V-B: all edges popped at one support level peel independently, so
//!    the per-bloom traversals of Algorithm 5 lines 14–18 are partitioned
//!    across workers. Each worker accumulates its support deltas in a
//!    thread-local sparse buffer (`delta`/`touched` pairs, as in
//!    `batch.rs`); the buffers are then merged and every affected edge
//!    receives **one** clamped write. The `max(MBS, ·)` rule composes —
//!    `max(f, max(f, s−a)−b) = max(f, s−a−b)` — so the merged write
//!    produces the identical support the sequential per-(bloom, edge)
//!    writes would, and the resulting [`Decomposition`] is bit-identical
//!    to [`bit_bu_pp`](crate::algo::bit_bu_pp) regardless of thread count.
//!
//! Light batches (few wedge slots to traverse) skip the fan-out: spawning
//! scoped threads costs more than the traversal itself, so a work estimate
//! gates the parallel path per batch.

use std::time::Instant;

use beindex::{BeIndex, BloomId, WedgeId};
use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase};
use bigraph::{BipartiteGraph, EdgeId, Result};
use butterfly::{count_per_edge_parallel_observed, Threads};

use crate::bucket_queue::BucketQueue;
use crate::decomposition::Decomposition;
use crate::metrics::Metrics;

/// Minimum phase-2 work (wedge slots across the batch's touched blooms)
/// before the bloom traversal is fanned out to worker threads. Below it
/// the per-batch `thread::scope` spawn overhead outweighs the traversal.
/// Shared with the two-phase engine's coarse partition scan, whose
/// sub-rounds fan out the same way.
pub(crate) const PAR_BATCH_MIN_WORK: usize = 4096;

/// Phase 2 of one batch (Algorithm 5 lines 14–18) for the blooms at
/// positions `start, start + stride, …` of `blooms`: every surviving
/// member edge of bloom `B` accumulates a `−C(B)` delta into the sparse
/// `delta`/`touched` buffer. Read-only on the index, so the sequential
/// path (`start = 0, stride = 1`, global buffer) and each parallel worker
/// (`start = worker, stride = threads`, thread-local buffer) share it —
/// one body, one set of filter rules.
pub(crate) fn accumulate_bloom_deltas(
    index: &BeIndex,
    c: &[u32],
    blooms: &[u32],
    start: usize,
    stride: usize,
    delta: &mut [u64],
    touched: &mut Vec<u32>,
) {
    let mut bi = start;
    while bi < blooms.len() {
        let b = BloomId(blooms[bi]);
        bi += stride;
        let cb = c[b.index()] as u64;
        for w in index.bloom_wedges(b) {
            if !index.wedge_alive(w) {
                continue;
            }
            let (e1, e2) = index.wedge_members(w);
            for other in [e1, e2] {
                if index.in_index(other) {
                    if delta[other.index()] == 0 {
                        touched.push(other.0);
                    }
                    delta[other.index()] += cb;
                }
            }
        }
    }
}

/// Runs BiT-BU++/P: BiT-BU++ with parallel counting, parallel index
/// construction and parallel batch bloom processing.
///
/// The returned decomposition is bit-identical to
/// [`bit_bu_pp`](crate::algo::bit_bu_pp) for every thread count
/// (`Threads(0)` = auto, `Threads(1)` = sequential engine on one worker).
/// `support_updates` counts one write per affected edge per batch — the
/// aggregated-write semantics of BiT-BU# — and is likewise independent of
/// the thread count.
pub fn bit_bu_pp_par(g: &BipartiteGraph, threads: Threads) -> (Decomposition, Metrics) {
    bit_bu_pp_par_tuned(g, threads, PAR_BATCH_MIN_WORK)
}

/// [`bit_bu_pp_par`] with an [`EngineObserver`]: phase events for
/// counting, index construction and peeling. Counting and index-build
/// workers poll for cancellation from their shards; peeling polls once
/// per batch.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial φ assignment is discarded.
pub fn bit_bu_pp_par_observed(
    g: &BipartiteGraph,
    threads: Threads,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    bit_bu_pp_par_run(g, threads, PAR_BATCH_MIN_WORK, observer)
}

/// [`bit_bu_pp_par`] with an explicit fan-out threshold: batches whose
/// phase-2 work estimate is below `par_batch_min_work` wedge slots are
/// traversed inline. `0` forces every batch through the parallel path
/// (useful for determinism testing and for machines with very cheap
/// thread spawns); `usize::MAX` pins peeling to one thread while keeping
/// counting and index construction parallel.
pub fn bit_bu_pp_par_tuned(
    g: &BipartiteGraph,
    threads: Threads,
    par_batch_min_work: usize,
) -> (Decomposition, Metrics) {
    bit_bu_pp_par_run(g, threads, par_batch_min_work, &NoopObserver)
        .expect("NoopObserver never cancels") // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
}

pub(crate) fn bit_bu_pp_par_run(
    g: &BipartiteGraph,
    threads: Threads,
    par_batch_min_work: usize,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    let t = threads.resolve();
    let mut metrics = Metrics {
        counting_threads: t,
        index_threads: t,
        peeling_threads: t,
        iterations: 1,
        ..Metrics::default()
    };
    let m = g.num_edges() as usize;

    let t0 = Instant::now();
    let counts = count_per_edge_parallel_observed(g, t, observer)?;
    metrics.counting_time = t0.elapsed();

    let t1 = Instant::now();
    let mut index = BeIndex::build_parallel_observed(g, Threads(t), observer)?;
    metrics.index_time = t1.elapsed();
    metrics.peak_index_bytes = index.memory_bytes();

    let t2 = Instant::now();
    observer.on_phase_start(Phase::Peeling, m as u64);
    let mut supp = counts.per_edge;
    let mut phi = vec![0u64; m];
    let mut queue = BucketQueue::new(&supp, |_| true);

    // c[b] = wedges the current batch removed from bloom b (Algorithm 5's
    // C(B∗)), reset per batch via `touched_blooms`.
    let mut c: Vec<u32> = vec![0; index.num_blooms() as usize];
    let mut touched_blooms: Vec<u32> = Vec::new();
    // Global aggregation buffer: one clamped write per edge per batch.
    let mut delta = vec![0u64; m];
    let mut touched_edges: Vec<u32> = Vec::new();
    // Per-worker sparse buffers for the parallel bloom pass, allocated
    // lazily on the first batch heavy enough to fan out.
    let mut worker_bufs: Vec<(Vec<u64>, Vec<u32>)> = Vec::new();
    let mut batch: Vec<EdgeId> = Vec::new();

    let mut popped = 0u64;
    while let Some(level) = queue.pop_level(&supp, &mut batch) {
        checkpoint(observer)?;
        popped += batch.len() as u64;
        observer.on_phase_progress(Phase::Peeling, popped, m as u64);
        for &e in &batch {
            phi[e.index()] = level;
        }

        // Phase 1 (Algorithm 5 lines 6–13, sequential): kill the batch's
        // wedges, count C(B) per touched bloom, and accumulate the twin
        // settlements −(k−1) into the aggregation buffer. Wedge kills
        // race-freely belong here: two batch edges may share a wedge.
        for &e in &batch {
            for li in 0..index.links(e).len() {
                let w0 = WedgeId(index.links(e)[li]);
                if !index.wedge_alive(w0) {
                    continue; // twin also in S and processed first
                }
                let b = index.wedge_bloom(w0);
                let k = index.bloom_k(b) as u64;
                let twin = index.wedge_twin(w0, e);
                index.kill_wedge(w0);
                if c[b.index()] == 0 {
                    touched_blooms.push(b.0);
                }
                c[b.index()] += 1;
                if k >= 2 && index.in_index(twin) {
                    if delta[twin.index()] == 0 {
                        touched_edges.push(twin.0);
                    }
                    delta[twin.index()] += k - 1;
                }
            }
            index.remove_edge_links(e);
        }

        // Phase 2 (lines 14–18): one traversal per touched bloom,
        // accumulating −C(B) per surviving member edge. Blooms are
        // independent here — the traversal only reads the index — so heavy
        // batches partition them across workers (interleaved, like the
        // vertex sharding elsewhere) into thread-local buffers.
        let work: usize = touched_blooms
            .iter()
            .map(|&b| index.bloom_stored_wedges(BloomId(b)) as usize)
            .sum();
        if t > 1 && work >= par_batch_min_work && work > 0 {
            if worker_bufs.is_empty() {
                worker_bufs = (0..t).map(|_| (vec![0u64; m], Vec::new())).collect();
                metrics.scratch_bytes = t * m * std::mem::size_of::<u64>();
            }
            std::thread::scope(|scope| {
                let index = &index;
                let c = &c;
                let blooms = &touched_blooms;
                for (wi, (w_delta, w_touched)) in worker_bufs.iter_mut().enumerate() {
                    scope.spawn(move || {
                        accumulate_bloom_deltas(index, c, blooms, wi, t, w_delta, w_touched);
                    });
                }
            });
            // Merge the worker buffers into the global aggregation buffer
            // (addition commutes, so merge order cannot affect results).
            for (w_delta, w_touched) in &mut worker_bufs {
                for &e in w_touched.iter() {
                    let d = std::mem::take(&mut w_delta[e as usize]);
                    if delta[e as usize] == 0 {
                        touched_edges.push(e);
                    }
                    delta[e as usize] += d;
                }
                w_touched.clear();
            }
        } else {
            accumulate_bloom_deltas(
                &index,
                &c,
                &touched_blooms,
                0,
                1,
                &mut delta,
                &mut touched_edges,
            );
        }
        // Settle bloom sizes and reset the batch counters.
        for &b in &touched_blooms {
            let cb = std::mem::take(&mut c[b as usize]);
            index.sub_bloom_k(BloomId(b), cb);
        }
        touched_blooms.clear();

        // Phase 3: one merged clamped write per affected edge.
        for &te in &touched_edges {
            let e = EdgeId(te);
            let d = std::mem::take(&mut delta[e.index()]);
            if d > 0 && index.in_index(e) && supp[e.index()] > level {
                let old = supp[e.index()];
                let new = level.max(old.saturating_sub(d));
                supp[e.index()] = new;
                queue.decrease(e, old, new);
                metrics.record_update(e);
            }
        }
        touched_edges.clear();
    }
    metrics.peeling_time = t2.elapsed();
    observer.on_phase_end(Phase::Peeling);
    Ok((Decomposition::new(phi), metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::batch::{bit_bu_hybrid, bit_bu_pp};
    use crate::verify::{reference_decomposition, validate_decomposition};

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..6 {
            let g = datagen::random::uniform(13, 15, 70, seed);
            let (seq, _) = bit_bu_pp(&g);
            for threads in [1, 2, 3, 8] {
                // min_work = 0 forces the parallel fan-out on every batch
                // so small graphs exercise it too.
                let (par, m) = bit_bu_pp_par_tuned(&g, Threads(threads), 0);
                assert_eq!(par, seq, "seed {seed} threads {threads}");
                assert_eq!(m.peeling_threads, threads);
            }
        }
    }

    #[test]
    fn matches_reference_on_skewed_graphs() {
        for seed in 0..3 {
            let g = datagen::powerlaw::chung_lu(80, 80, 1_200, 1.9, 1.9, seed);
            let expect = reference_decomposition(&g);
            let (par, _) = bit_bu_pp_par_tuned(&g, Threads(4), 0);
            assert_eq!(par, expect, "seed {seed}");
            validate_decomposition(&g, &par).unwrap();
        }
    }

    #[test]
    fn update_count_is_thread_count_independent_and_matches_hybrid() {
        // The aggregated-write semantics are exactly BiT-BU#'s, so the
        // update count must match it and be identical across thread
        // counts.
        let g = datagen::powerlaw::chung_lu(90, 90, 1_400, 1.9, 1.9, 8);
        let (d_h, m_h) = bit_bu_hybrid(&g);
        let mut counts = Vec::new();
        for threads in [1, 2, 3, 8] {
            let (d, m) = bit_bu_pp_par_tuned(&g, Threads(threads), 0);
            assert_eq!(d, d_h);
            counts.push(m.support_updates);
        }
        assert!(counts.iter().all(|&u| u == m_h.support_updates));
    }

    #[test]
    fn auto_threads() {
        let g = datagen::random::uniform(12, 12, 55, 3);
        let (seq, _) = bit_bu_pp(&g);
        let (par, m) = bit_bu_pp_par(&g, Threads::AUTO);
        assert_eq!(par, seq);
        assert!(m.counting_threads >= 1);
    }

    #[test]
    fn empty_graph() {
        let g = bigraph::GraphBuilder::new().build().unwrap();
        let (d, _) = bit_bu_pp_par(&g, Threads(4));
        assert_eq!(d.phi.len(), 0);
    }
}
