//! BiT-BU — the BE-Index-based bottom-up decomposition (Algorithm 4).
//!
//! Identical peeling order to BiT-BS, but each edge removal walks the
//! blooms of the BE-Index instead of enumerating butterflies
//! combinatorially, bringing the peeling phase to `O(onG)` total
//! (Lemma 5) and the whole algorithm to
//! `O(Σ_{(u,v)∈E} min{d(u),d(v)} + onG)`.

use std::time::Instant;

use beindex::{BeIndex, UpdateSink};
use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase, CHECK_INTERVAL};
use bigraph::{BipartiteGraph, EdgeId, Result};
use butterfly::count_per_edge_observed;

use crate::bucket_queue::BucketQueue;
use crate::decomposition::Decomposition;
use crate::metrics::Metrics;

/// Update sink wiring support writes into the peeling queue and metrics.
/// `map` translates the index's edge ids to global ids for histogram
/// attribution (identity for BiT-BU, subgraph→parent for BiT-PC).
pub(crate) struct PeelSink<'a> {
    pub queue: &'a mut BucketQueue,
    pub metrics: &'a mut Metrics,
    pub map: Option<&'a [EdgeId]>,
}

impl UpdateSink for PeelSink<'_> {
    #[inline]
    fn on_support_update(&mut self, e: EdgeId, old: u64, new: u64) {
        self.queue.decrease(e, old, new);
        let global = match self.map {
            Some(map) => map[e.index()],
            None => e,
        };
        self.metrics.record_update(global);
    }
}

/// Runs BiT-BU (Algorithm 4).
pub fn bit_bu(g: &BipartiteGraph) -> (Decomposition, Metrics) {
    bit_bu_opts(g, None)
}

/// [`bit_bu`] with optional update-histogram bucket bounds over original
/// supports (Figure 7 instrumentation).
pub fn bit_bu_opts(
    g: &BipartiteGraph,
    histogram_bounds: Option<&[u64]>,
) -> (Decomposition, Metrics) {
    // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
    bit_bu_run(g, histogram_bounds, &NoopObserver).expect("NoopObserver never cancels")
}

/// [`bit_bu`] with an [`EngineObserver`]: phase events for counting,
/// index construction and peeling, with a cancellation poll every
/// [`CHECK_INTERVAL`] removals.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial φ assignment is discarded.
pub fn bit_bu_observed(
    g: &BipartiteGraph,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    bit_bu_run(g, None, observer)
}

pub(crate) fn bit_bu_run(
    g: &BipartiteGraph,
    histogram_bounds: Option<&[u64]>,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    let mut metrics = Metrics::default();
    let m = g.num_edges() as usize;

    let t0 = Instant::now();
    let counts = count_per_edge_observed(g, observer)?;
    metrics.counting_time = t0.elapsed();
    if let Some(bounds) = histogram_bounds {
        metrics.enable_histogram(bounds.to_vec(), &counts.per_edge);
    }

    let t1 = Instant::now();
    let mut index = BeIndex::build_observed(g, observer)?;
    metrics.index_time = t1.elapsed();
    metrics.peak_index_bytes = index.memory_bytes();
    metrics.iterations = 1;

    let t2 = Instant::now();
    observer.on_phase_start(Phase::Peeling, m as u64);
    let mut supp = counts.per_edge;
    let mut phi = vec![0u64; m];
    let mut queue = BucketQueue::new(&supp, |_| true);

    let mut popped = 0u64;
    while let Some((level, e)) = queue.pop_min(&supp) {
        popped += 1;
        if popped.is_multiple_of(CHECK_INTERVAL) {
            checkpoint(observer)?;
            observer.on_phase_progress(Phase::Peeling, popped, m as u64);
        }
        phi[e.index()] = level; // Algorithm 4 line 6: φ_e ← k
        let mut sink = PeelSink {
            queue: &mut queue,
            metrics: &mut metrics,
            map: None,
        };
        index.remove_edge(e, &mut supp, level, &mut sink);
    }
    metrics.peeling_time = t2.elapsed();
    observer.on_phase_end(Phase::Peeling);
    Ok((Decomposition::new(phi), metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bs::{bit_bs, PeelStrategy};
    use crate::verify::{reference_decomposition, validate_decomposition};
    use bigraph::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn matches_reference_and_bs() {
        let g = fig1();
        let expect = reference_decomposition(&g);
        let (d, m) = bit_bu(&g);
        assert_eq!(d, expect);
        assert!(m.peak_index_bytes > 0);
        validate_decomposition(&g, &d).unwrap();
        let (d_bs, _) = bit_bs(&g, PeelStrategy::Intersection);
        assert_eq!(d, d_bs);
    }

    #[test]
    fn nested_bicliques() {
        // K_{5,5} with an extra fringe: inner φ = 16 everywhere in the
        // biclique, fringe lower.
        let mut b = GraphBuilder::new();
        for u in 0..5 {
            for v in 0..5 {
                b.push_edge(u, v);
            }
        }
        b.push_edge(5, 0);
        b.push_edge(5, 1);
        let g = b.build().unwrap();
        let (d, _) = bit_bu(&g);
        let expect = reference_decomposition(&g);
        assert_eq!(d, expect);
        assert_eq!(d.max_bitruss(), 16);
    }

    #[test]
    fn random_graphs_match_reference() {
        for seed in 0..8 {
            let g = datagen::random::uniform(14, 14, 60, seed);
            let (d, _) = bit_bu(&g);
            let expect = reference_decomposition(&g);
            assert_eq!(d, expect, "seed {seed}");
        }
    }

    #[test]
    fn updates_are_fewer_than_bs_pair_enumeration_cost() {
        // Sanity: BU performs at most as many updates as butterflies ×4.
        let g = datagen::powerlaw::chung_lu(60, 60, 700, 2.0, 2.0, 3);
        let (_, m) = bit_bu(&g);
        let total = butterfly::count_total(&g);
        assert!(m.support_updates <= 4 * total);
    }
}
