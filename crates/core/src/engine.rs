//! [`BitrussEngine`] — the typed session API owning the full lifecycle
//! **decompose → hierarchy → query → snapshot**.
//!
//! The free functions of [`crate::algo`] each answer one question; a
//! production query server needs all of them against one graph, without
//! re-doing work: decompose once, build the hierarchy index once, answer
//! many queries, persist a snapshot, resume from it later. The engine is
//! that owning entry point:
//!
//! ```
//! use bigraph::GraphBuilder;
//! use bitruss_core::engine::BitrussEngine;
//! use bitruss_core::Algorithm;
//!
//! let g = GraphBuilder::new()
//!     .add_edges([
//!         (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
//!         (2, 2), (2, 3), (3, 1), (3, 2), (3, 4),
//!     ])
//!     .build()
//!     .unwrap();
//!
//! // Configure → run → serve.
//! let session = BitrussEngine::builder()
//!     .algorithm(Algorithm::BuPlusPlus)
//!     .build(g)
//!     .unwrap();
//! assert_eq!(session.max_bitruss(), 2);
//! assert_eq!(session.k_bitruss_count(2).unwrap(), 6);
//!
//! // Persist the session and resume it elsewhere.
//! let mut bytes = Vec::new();
//! session.save_snapshot_to(&mut bytes).unwrap();
//! let resumed = BitrussEngine::from_snapshot_reader(&bytes[..]).unwrap();
//! assert_eq!(resumed.phi(), session.phi());
//! assert_eq!(resumed.k_bitruss_count(2).unwrap(), 6);
//! ```
//!
//! # Observability and cancellation
//!
//! [`EngineBuilder::progress`] attaches an [`EngineObserver`] that is
//! threaded through counting, BE-Index construction, peeling and the
//! hierarchy build: it receives phase boundaries and coarse progress
//! ticks, and may request cooperative cancellation at any poll, which
//! surfaces as [`Error::Cancelled`] instead of aborting the process.
//!
//! # Generations and cheap sharing
//!
//! A session's state — graph, φ, and the lazily-built hierarchy — is
//! held behind [`Arc`]s internally, so
//! [`BitrussEngine::clone_shared`] produces an independent, immutable
//! handle to the *same* state in `O(1)`. Serving layers use this to
//! publish each committed generation to concurrent readers while a
//! single writer advances its own session with
//! [`BitrussEngine::replace_state`] (which installs fresh state and
//! leaves every previously shared clone untouched).
//!
//! # Relation to the legacy free functions
//!
//! [`decompose`](crate::decompose) and friends remain as thin wrappers
//! over the same dispatch the engine uses, so results are bit-identical;
//! `decompose_pruned` and `decompose_with_histogram` are deprecated in
//! favour of [`EngineBuilder::pruned`] and
//! [`EngineBuilder::histogram_bounds`].

use std::fmt;
use std::io::{BufRead, Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

use bigraph::progress::checkpoint;
use bigraph::vfs::{StdVfs, Vfs};
use bigraph::{BipartiteGraph, EdgeId, Error, Result, VertexId};
use bitruss_storage::MemoryReport;

pub use bigraph::progress::{EngineObserver, NoopObserver, Phase};

use crate::algo::{self, Algorithm, Threads};
use crate::decomposition::{Community, Decomposition};
use crate::hierarchy::BitrussHierarchy;
use crate::metrics::Metrics;
use crate::persist::binary::{
    read_snapshot, read_snapshot_file, write_snapshot, write_snapshot_file,
};

/// When the session builds its [`BitrussHierarchy`] index.
///
/// Marked `#[non_exhaustive]`: future modes (e.g. persisted-only) may be
/// added without a semver break.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HierarchyMode {
    /// Build on the first query that needs it, then cache (the default).
    #[default]
    Lazy,
    /// Build eagerly inside [`EngineBuilder::build`], so the first query
    /// pays no latency spike and cancellation covers the index build too.
    Eager,
}

/// Typed builder for a [`BitrussEngine`] session.
///
/// Obtained from [`BitrussEngine::builder`]; every option has a sensible
/// default (BiT-BU++, no pruning, lazy hierarchy, no observer).
pub struct EngineBuilder {
    algorithm: Algorithm,
    threads: Option<Threads>,
    pruned: bool,
    hierarchy_mode: HierarchyMode,
    histogram_bounds: Option<Vec<u64>>,
    observer: Option<Arc<dyn EngineObserver + Send + Sync>>,
    memory_budget: Option<usize>,
    scratch: Option<(Arc<dyn Vfs>, PathBuf)>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            algorithm: Algorithm::BuPlusPlus,
            threads: None,
            pruned: false,
            hierarchy_mode: HierarchyMode::Lazy,
            histogram_bounds: None,
            observer: None,
            memory_budget: None,
            scratch: None,
        }
    }
}

impl EngineBuilder {
    /// Selects the decomposition algorithm (default:
    /// [`Algorithm::BuPlusPlus`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Configures worker threads. Mirrors the CLI's `--threads` rule: it
    /// upgrades the default [`Algorithm::BuPlusPlus`] to the parallel
    /// engine (bit-identical results) or overrides the thread count of an
    /// explicit [`Algorithm::BuPlusPlusPar`] or
    /// [`Algorithm::BuPlusPlusTwoPhase`]; combining it with any other
    /// algorithm is rejected by [`EngineBuilder::build`].
    ///
    /// ```
    /// use bigraph::GraphBuilder;
    /// use bitruss_core::{Algorithm, BitrussEngine, Threads};
    ///
    /// let g = GraphBuilder::new()
    ///     .add_edges([(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)])
    ///     .build()
    ///     .unwrap();
    /// // Select the two-phase partition engine with 2 workers; φ is
    /// // bit-identical to the sequential BU++ run.
    /// let session = BitrussEngine::builder()
    ///     .algorithm(Algorithm::two_phase_auto())
    ///     .threads(Threads(2))
    ///     .build(g)
    ///     .unwrap();
    /// assert_eq!(session.max_bitruss(), 2);
    /// assert!(matches!(
    ///     session.algorithm(),
    ///     Some(Algorithm::BuPlusPlusTwoPhase { threads: Threads(2) })
    /// ));
    /// ```
    pub fn threads(mut self, threads: impl Into<Threads>) -> Self {
        self.threads = Some(threads.into());
        self
    }

    /// Enables (2,2)-core pre-pruning: edges outside the core have
    /// `φ = 0` and are dropped before counting and peeling.
    pub fn pruned(mut self, pruned: bool) -> Self {
        self.pruned = pruned;
        self
    }

    /// Chooses when the hierarchy index is built (default: lazily).
    pub fn hierarchy(mut self, mode: HierarchyMode) -> Self {
        self.hierarchy_mode = mode;
        self
    }

    /// Enables the per-original-support update histogram (Figure 7
    /// instrumentation) with the given ascending bucket bounds. Ignored
    /// by the BiT-BS variants and the parallel/hybrid engines.
    pub fn histogram_bounds(mut self, bounds: Vec<u64>) -> Self {
        self.histogram_bounds = Some(bounds);
        self
    }

    /// Attaches an [`EngineObserver`] receiving phase events and able to
    /// cancel the run. Keep a clone of the `Arc` to flip your
    /// cancellation flag from another thread.
    pub fn progress(mut self, observer: Arc<dyn EngineObserver + Send + Sync>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Caps the decomposition's working set at roughly `bytes`, routing
    /// the run through the out-of-core storage tier when the in-memory
    /// footprint would exceed the budget: the graph is streamed from a
    /// paged compressed file through a budget-sized page cache and the
    /// BE-Index is built with a spill-to-disk arena. Results are
    /// bit-identical to the unbudgeted run for every budget; when the
    /// estimated footprint already fits, nothing changes. Only the
    /// default sequential [`Algorithm::BuPlusPlus`] supports budgeting —
    /// combining a budget with another algorithm, with
    /// [`EngineBuilder::threads`], or with [`EngineBuilder::pruned`] is
    /// rejected by [`EngineBuilder::build`].
    ///
    /// ```
    /// use bigraph::GraphBuilder;
    /// use bitruss_core::BitrussEngine;
    ///
    /// let g = GraphBuilder::new()
    ///     .add_edges([(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)])
    ///     .build()
    ///     .unwrap();
    /// let session = BitrussEngine::builder()
    ///     .memory_budget(1024) // tiny: forces the out-of-core path
    ///     .build(g)
    ///     .unwrap();
    /// assert_eq!(session.max_bitruss(), 2);
    /// let report = session.metrics().unwrap().memory.unwrap();
    /// assert_eq!(report.budget_bytes, 1024);
    /// ```
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Overrides where the out-of-core path keeps its scratch files
    /// (paged graph, spill runs). Defaults to a process-unique directory
    /// under the system temp dir on the real filesystem; tests inject a
    /// [`MemVfs`](bigraph::vfs::MemVfs) here for determinism and fault
    /// injection. No effect without [`EngineBuilder::memory_budget`].
    pub fn scratch(mut self, vfs: Arc<dyn Vfs>, dir: PathBuf) -> Self {
        self.scratch = Some((vfs, dir));
        self
    }

    /// Runs the configured decomposition on an owned graph and returns
    /// the serving session.
    ///
    /// # Errors
    ///
    /// [`Error::Cancelled`] when the observer cancels the run, or
    /// [`Error::Invariant`] for invalid configurations (e.g.
    /// [`EngineBuilder::threads`] with a non-parallel algorithm).
    pub fn build(self, graph: BipartiteGraph) -> Result<BitrussEngine<'static>> {
        self.run(SessionGraph::Shared(Arc::new(graph)))
    }

    /// [`EngineBuilder::build`] borrowing the graph instead of owning it
    /// — zero-copy for callers that keep the graph alive themselves (the
    /// legacy free functions delegate here).
    ///
    /// # Errors
    ///
    /// Same contract as [`EngineBuilder::build`].
    pub fn build_borrowed(self, graph: &BipartiteGraph) -> Result<BitrussEngine<'_>> {
        self.run(SessionGraph::Borrowed(graph))
    }

    /// Resolves the `--threads`-style upgrade rule against the selected
    /// algorithm.
    fn effective_algorithm(&self) -> Result<Algorithm> {
        match (self.threads, self.algorithm) {
            (None, algorithm) => Ok(algorithm),
            (Some(threads), Algorithm::BuPlusPlus | Algorithm::BuPlusPlusPar { .. }) => {
                Ok(Algorithm::BuPlusPlusPar { threads })
            }
            (Some(threads), Algorithm::BuPlusPlusTwoPhase { .. }) => {
                Ok(Algorithm::BuPlusPlusTwoPhase { threads })
            }
            (Some(_), other) => Err(Error::Invariant(format!(
                "threads only apply to the parallel engines (bu++, bu++p, or bu++2p), not {other}"
            ))),
        }
    }

    fn run(self, graph: SessionGraph<'_>) -> Result<BitrussEngine<'_>> {
        let algorithm = self.effective_algorithm()?;
        if let Some(budget) = self.memory_budget {
            if algorithm != Algorithm::BuPlusPlus {
                return Err(Error::Invariant(format!(
                    "a memory budget only applies to the sequential bu++ engine, not {algorithm}"
                )));
            }
            if self.pruned {
                return Err(Error::Invariant(
                    "a memory budget cannot be combined with (2,2)-core pruning".to_string(),
                ));
            }
            if crate::ooc::estimate_in_memory_bytes(graph.get()) > budget {
                return self.run_out_of_core(graph, budget);
            }
        }
        let observer: Arc<dyn EngineObserver + Send + Sync> =
            self.observer.unwrap_or_else(|| Arc::new(NoopObserver));
        let bounds = self.histogram_bounds.as_deref();
        let budget = self.memory_budget;
        let (decomposition, mut metrics) = if self.pruned {
            algo::prune_and_run(graph.get(), algorithm, bounds, &*observer)?
        } else {
            algo::run_algorithm(graph.get(), algorithm, bounds, &*observer)?
        };
        metrics.memory = Some(MemoryReport {
            graph_bytes: graph.get().memory_bytes(),
            index_peak_bytes: metrics.peak_index_bytes,
            page_cache_bytes: 0,
            spill_bytes_written: 0,
            budget_bytes: budget.unwrap_or(0),
        });
        let engine = BitrussEngine {
            graph,
            algorithm: Some(algorithm),
            decomposition: Arc::new(decomposition),
            metrics: Some(metrics),
            hierarchy: Arc::new(OnceLock::new()),
            observer,
        };
        if self.hierarchy_mode == HierarchyMode::Eager {
            engine.hierarchy()?;
        }
        Ok(engine)
    }

    /// The budgeted dispatch: stream the graph from a paged file and
    /// spill the index build, then peel as usual. Bit-identical to the
    /// in-memory run (see [`crate::ooc`]).
    fn run_out_of_core(self, graph: SessionGraph<'_>, budget: usize) -> Result<BitrussEngine<'_>> {
        let observer: Arc<dyn EngineObserver + Send + Sync> =
            self.observer.unwrap_or_else(|| Arc::new(NoopObserver));
        let (vfs, dir): (Arc<dyn Vfs>, PathBuf) = match self.scratch {
            Some((vfs, dir)) => (vfs, dir),
            None => (
                Arc::new(StdVfs),
                std::env::temp_dir().join(format!("bitruss-ooc-{}", std::process::id())),
            ),
        };
        let (decomposition, metrics) = crate::ooc::decompose_out_of_core(
            graph.get(),
            budget,
            &*vfs,
            &dir,
            self.histogram_bounds.as_deref(),
            &*observer,
        )?;
        let engine = BitrussEngine {
            graph,
            algorithm: Some(Algorithm::BuPlusPlus),
            decomposition: Arc::new(decomposition),
            metrics: Some(metrics),
            hierarchy: Arc::new(OnceLock::new()),
            observer,
        };
        if self.hierarchy_mode == HierarchyMode::Eager {
            engine.hierarchy()?;
        }
        Ok(engine)
    }
}

/// How a session holds its graph: borrowed from the caller
/// ([`EngineBuilder::build_borrowed`]) or shared behind an [`Arc`]
/// (everything else). The `Arc` is what makes
/// [`BitrussEngine::clone_shared`] `O(1)`.
enum SessionGraph<'g> {
    /// A caller-owned graph the session merely borrows.
    Borrowed(&'g BipartiteGraph),
    /// Session-owned, shareable state.
    Shared(Arc<BipartiteGraph>),
}

impl SessionGraph<'_> {
    fn get(&self) -> &BipartiteGraph {
        match self {
            SessionGraph::Borrowed(g) => g,
            SessionGraph::Shared(g) => g,
        }
    }

    /// An `Arc` of the graph, copying it once for borrowed sessions.
    fn to_shared(&self) -> Arc<BipartiteGraph> {
        match self {
            SessionGraph::Borrowed(g) => Arc::new((*g).clone()),
            SessionGraph::Shared(g) => Arc::clone(g),
        }
    }
}

/// A decomposition session: the graph, its bitruss numbers, run metrics,
/// and a lazily-built-and-cached [`BitrussHierarchy`] behind one typed
/// API — see the [module docs](self) for the lifecycle.
///
/// The lifetime parameter tracks graph ownership:
/// [`EngineBuilder::build`] and [`BitrussEngine::from_snapshot`] produce
/// self-contained `BitrussEngine<'static>` sessions, while
/// [`EngineBuilder::build_borrowed`] borrows a caller-owned graph. All
/// query methods take `&self`; the session is `Sync`, so a server can
/// share it across request threads — and
/// [`BitrussEngine::clone_shared`] hands out `O(1)` immutable clones of
/// the current state for generation-snapshot serving.
pub struct BitrussEngine<'g> {
    graph: SessionGraph<'g>,
    /// `None` for sessions resumed from a snapshot (the snapshot does not
    /// record which algorithm produced φ).
    algorithm: Option<Algorithm>,
    decomposition: Arc<Decomposition>,
    /// `None` for sessions resumed from a snapshot (no run happened).
    metrics: Option<Metrics>,
    /// Shared with [`BitrussEngine::clone_shared`] clones of the same
    /// generation, so whichever handle builds the index first serves it
    /// to all of them.
    hierarchy: Arc<OnceLock<BitrussHierarchy>>,
    observer: Arc<dyn EngineObserver + Send + Sync>,
}

impl fmt::Debug for BitrussEngine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitrussEngine")
            .field("num_edges", &self.graph.get().num_edges())
            .field("algorithm", &self.algorithm)
            .field("max_bitruss", &self.decomposition.max_bitruss())
            .field("hierarchy_built", &self.hierarchy.get().is_some())
            .finish_non_exhaustive()
    }
}

impl BitrussEngine<'static> {
    /// Resumes a session from a binary snapshot file written by
    /// [`BitrussEngine::save_snapshot`] (or the lower-level
    /// [`write_snapshot_file`]). A hierarchy
    /// persisted in the snapshot is adopted directly — the index build is
    /// never repeated; [`BitrussEngine::metrics`] and
    /// [`BitrussEngine::algorithm`] are `None` because no run happened.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on I/O failures, [`Error::Corrupt`] when the
    /// snapshot fails validation.
    pub fn from_snapshot<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::adopt(read_snapshot_file(path)?)
    }

    /// [`BitrussEngine::from_snapshot`] over any reader.
    ///
    /// # Errors
    ///
    /// Same contract as [`BitrussEngine::from_snapshot`].
    pub fn from_snapshot_reader<R: Read>(reader: R) -> Result<Self> {
        Self::adopt(read_snapshot(reader)?)
    }

    /// Builds a session directly from an already-loaded
    /// [`Snapshot`](crate::persist::binary::Snapshot) — the entry point
    /// durable stores use after
    /// [`crate::persist::store::SnapshotStore::recover`] has validated
    /// the bytes. A persisted hierarchy is adopted without a rebuild;
    /// [`BitrussEngine::metrics`] and [`BitrussEngine::algorithm`] are
    /// `None` because no run happened.
    ///
    /// # Errors
    ///
    /// Currently infallible (the snapshot was validated on load), but
    /// typed as [`Result`] to keep room for cross-checks.
    pub fn from_snapshot_parts(snapshot: crate::persist::binary::Snapshot) -> Result<Self> {
        Self::adopt(snapshot)
    }

    fn adopt(snapshot: crate::persist::binary::Snapshot) -> Result<Self> {
        let hierarchy = OnceLock::new();
        if let Some(h) = snapshot.hierarchy {
            let _ = hierarchy.set(h);
        }
        Ok(BitrussEngine {
            graph: SessionGraph::Shared(Arc::new(snapshot.graph)),
            algorithm: None,
            decomposition: Arc::new(snapshot.decomposition),
            metrics: None,
            hierarchy: Arc::new(hierarchy),
            observer: Arc::new(NoopObserver),
        })
    }
}

impl<'g> BitrussEngine<'g> {
    /// Starts configuring a new session.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The graph this session serves.
    pub fn graph(&self) -> &BipartiteGraph {
        self.graph.get()
    }

    /// An independent, immutable handle to this session's *current*
    /// state — graph, φ, and the (possibly not-yet-built) hierarchy
    /// cache — in `O(1)`: the state is `Arc`-shared, not copied. The
    /// clone stays pinned to this generation even if the original
    /// session later advances via [`BitrussEngine::replace_state`]
    /// (which installs fresh state rather than mutating the shared
    /// one), so serving layers publish each committed generation with
    /// this and let concurrent readers query it without ever blocking a
    /// writer.
    ///
    /// Clones of the same generation share one lazy hierarchy cache:
    /// whichever handle builds the index first serves it to all. For
    /// borrowed sessions ([`EngineBuilder::build_borrowed`]) the graph
    /// is copied once to make the clone self-contained.
    pub fn clone_shared(&self) -> BitrussEngine<'static> {
        BitrussEngine {
            graph: SessionGraph::Shared(self.graph.to_shared()),
            algorithm: self.algorithm,
            decomposition: Arc::clone(&self.decomposition),
            metrics: self.metrics.clone(),
            hierarchy: Arc::clone(&self.hierarchy),
            observer: Arc::clone(&self.observer),
        }
    }

    /// The algorithm that produced φ (`None` when resumed from a
    /// snapshot).
    pub fn algorithm(&self) -> Option<Algorithm> {
        self.algorithm
    }

    /// The bitruss number of every edge, indexed by edge id.
    pub fn phi(&self) -> &[u64] {
        &self.decomposition.phi
    }

    /// The full decomposition result.
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomposition
    }

    /// Metrics of the decomposition run (`None` when resumed from a
    /// snapshot — no run happened in this session).
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// The observer attached to this session ([`NoopObserver`] when none
    /// was configured). Maintenance layers thread it through their own
    /// passes so progress and cancellation keep working across updates.
    pub fn observer(&self) -> Arc<dyn EngineObserver + Send + Sync> {
        Arc::clone(&self.observer)
    }

    /// Replaces the session's graph and decomposition in one step — the
    /// splice point for dynamic maintenance layers (e.g. the
    /// `bitruss_dynamic` crate's `apply`), which compute an updated
    /// `(graph, φ)` pair and hand the session its next generation.
    ///
    /// The cached hierarchy index is invalidated (the next query or
    /// snapshot rebuilds it lazily), [`BitrussEngine::metrics`] is set to
    /// `metrics` (maintenance layers report their own phase times and
    /// affected/reused counts there), and
    /// [`BitrussEngine::algorithm`] is cleared — φ no longer comes from a
    /// single from-scratch run.
    ///
    /// Fresh state is *installed*, never written through the shared
    /// `Arc`s, so every [`BitrussEngine::clone_shared`] handle taken
    /// before this call keeps serving the previous generation
    /// unchanged.
    ///
    /// # Errors
    ///
    /// [`Error::Invariant`] when the decomposition does not belong to the
    /// graph (φ length differs from the edge count).
    pub fn replace_state(
        &mut self,
        graph: BipartiteGraph,
        decomposition: Decomposition,
        metrics: Option<Metrics>,
    ) -> Result<()> {
        if decomposition.phi.len() != graph.num_edges() as usize {
            return Err(Error::Invariant(format!(
                "{} φ values for {} edges",
                decomposition.phi.len(),
                graph.num_edges()
            )));
        }
        self.graph = SessionGraph::Shared(Arc::new(graph));
        self.decomposition = Arc::new(decomposition);
        self.metrics = metrics;
        self.algorithm = None;
        self.hierarchy = Arc::new(OnceLock::new());
        Ok(())
    }

    /// The maximum bitruss number over all edges.
    pub fn max_bitruss(&self) -> u64 {
        self.decomposition.max_bitruss()
    }

    /// Edge count per distinct bitruss number. Served from the hierarchy
    /// when it is already built (`O(L)`), otherwise from one φ scan.
    pub fn level_sizes(&self) -> std::collections::BTreeMap<u64, usize> {
        match self.hierarchy.get() {
            Some(h) => h.level_sizes(),
            None => self.decomposition.level_sizes(),
        }
    }

    /// The hierarchy index, building and caching it on first use.
    /// Subsequent calls are lock-free reads.
    ///
    /// # Errors
    ///
    /// [`Error::Cancelled`] when the session's observer cancels the
    /// build.
    pub fn hierarchy(&self) -> Result<&BitrussHierarchy> {
        if self.hierarchy.get().is_none() {
            let observer = &*self.observer;
            checkpoint(observer)?;
            observer.on_phase_start(Phase::HierarchyBuild, self.graph.get().num_edges() as u64);
            let h = BitrussHierarchy::new(self.graph.get(), &self.decomposition)?;
            observer.on_phase_end(Phase::HierarchyBuild);
            // A concurrent caller may have won the race; first write wins
            // and both results are identical.
            let _ = self.hierarchy.set(h);
        }
        self.hierarchy
            .get()
            .ok_or_else(|| Error::Invariant("hierarchy cache empty after initialization".into()))
    }

    /// The number of edges in the k-bitruss, in `O(log L)`.
    ///
    /// # Errors
    ///
    /// See [`BitrussEngine::hierarchy`].
    pub fn k_bitruss_count(&self, k: u64) -> Result<usize> {
        Ok(self.hierarchy()?.k_bitruss_count(k))
    }

    /// The edges of the k-bitruss (ascending edge ids), output-
    /// sensitively.
    ///
    /// # Errors
    ///
    /// See [`BitrussEngine::hierarchy`].
    pub fn k_bitruss_edges(&self, k: u64) -> Result<Vec<EdgeId>> {
        Ok(self.hierarchy()?.k_bitruss_edges(k))
    }

    /// The largest `k` whose k-bitruss contains an edge incident to `v`
    /// (`None` for isolated vertices), in `O(1)` after the hierarchy is
    /// built.
    ///
    /// # Errors
    ///
    /// See [`BitrussEngine::hierarchy`].
    pub fn max_k(&self, v: VertexId) -> Result<Option<u64>> {
        Ok(self.hierarchy()?.max_k(v))
    }

    /// The connected component of the k-bitruss containing edge `e`
    /// (`None` when `φ(e) < k`), output-sensitively.
    ///
    /// # Errors
    ///
    /// See [`BitrussEngine::hierarchy`].
    pub fn community_of(&self, e: EdgeId, k: u64) -> Result<Option<Community>> {
        Ok(self.hierarchy()?.community_of(self.graph.get(), e, k))
    }

    /// All connected components of the k-bitruss, output-sensitively.
    ///
    /// # Errors
    ///
    /// See [`BitrussEngine::hierarchy`].
    pub fn communities(&self, k: u64) -> Result<Vec<Community>> {
        Ok(self.hierarchy()?.communities(self.graph.get(), k))
    }

    /// Executes one typed query. `Levels`/`Edges` answer from the
    /// hierarchy index; `Community` resolves the edge first (producing
    /// the miss variants of [`QueryAnswer`] rather than errors, so batch
    /// serving survives bad inputs).
    ///
    /// # Errors
    ///
    /// [`Error::Invariant`] when a `Community` query addresses a vertex
    /// outside the graph's layers, or [`Error::Cancelled`] from a
    /// cancelled lazy hierarchy build.
    pub fn execute(&self, query: &Query) -> Result<QueryAnswer> {
        match *query {
            // level_sizes answers without forcing the lazy hierarchy
            // build (one φ scan until the index exists, O(L) after).
            Query::Levels => Ok(QueryAnswer::Levels(
                self.level_sizes().into_iter().collect(),
            )),
            Query::Edges { k } => Ok(QueryAnswer::Count {
                k,
                count: self.k_bitruss_count(k)?,
            }),
            Query::Community { upper, lower, k } => {
                let g = self.graph();
                if upper >= g.num_upper() as u64 || lower >= g.num_lower() as u64 {
                    return Err(Error::Invariant(format!(
                        "vertex ({upper}, {lower}) out of range"
                    )));
                }
                let Some(e) = g.edge_between(g.upper(upper as u32), g.lower(lower as u32)) else {
                    return Ok(QueryAnswer::NoSuchEdge { upper, lower, k });
                };
                let h = self.hierarchy()?;
                match h.community_of(g, e, k) {
                    None => Ok(QueryAnswer::NotInTruss {
                        upper,
                        lower,
                        k,
                        phi: h.phi_of(e),
                    }),
                    Some(c) => Ok(QueryAnswer::Community {
                        upper,
                        lower,
                        k,
                        num_upper: c.upper_members(g).count(),
                        num_lower: c.lower_members(g).count(),
                        num_edges: c.edges.len(),
                    }),
                }
            }
        }
    }

    /// Serves one line of the batch query language (see [`Query`]).
    /// Returns `Ok(None)` for blank/comment lines and `Ok(Some(text))`
    /// otherwise — malformed queries render as `error: …` text instead of
    /// failing, so a bad line never kills a server loop.
    ///
    /// # Errors
    ///
    /// Only engine-level failures (a cancelled lazy hierarchy build).
    pub fn query_line(&self, line: &str) -> Result<Option<String>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            return Ok(None);
        }
        let query = match line.parse::<Query>() {
            Ok(q) => q,
            Err(e) => return Ok(Some(format!("error: {e}"))),
        };
        match self.execute(&query) {
            Ok(answer) => Ok(Some(answer.to_string())),
            // Out-of-range community vertices are data errors, not engine
            // failures — keep the batch alive (execute only returns
            // Invariant for them).
            Err(Error::Invariant(msg)) => Ok(Some(format!("error: community: {msg}"))),
            Err(e) => Err(e),
        }
    }

    /// Serves a whole batch: one query per line from `reader`, one
    /// rendered answer per query to `writer`, **flushed after every
    /// answer** so interactive stdin and socket sessions see each
    /// response as soon as it is computed instead of when the writer's
    /// buffer happens to fill. Returns the number of queries answered
    /// (comments and blank lines excluded). This is the exact serving
    /// loop of the CLI `query` subcommand and the server's per-
    /// connection read path.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on reader/writer failures, or a cancelled lazy
    /// hierarchy build.
    pub fn run_queries<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> Result<u64> {
        let mut answered = 0u64;
        for line in reader.lines() {
            let line = line?;
            if let Some(answer) = self.query_line(&line)? {
                writeln!(writer, "{answer}")?;
                writer.flush()?;
                answered += 1;
            }
        }
        Ok(answered)
    }

    /// Writes a versioned, checksummed binary snapshot of the session —
    /// graph, φ, and the hierarchy index — so a query server can resume
    /// with [`BitrussEngine::from_snapshot`] without recomputing
    /// anything. Builds the hierarchy first if it is not cached yet.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on write failures, or a cancelled hierarchy build.
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let h = self.hierarchy()?;
        write_snapshot_file(self.graph.get(), &self.decomposition, Some(h), path)
    }

    /// [`BitrussEngine::save_snapshot`] over any writer.
    ///
    /// # Errors
    ///
    /// Same contract as [`BitrussEngine::save_snapshot`].
    pub fn save_snapshot_to<W: Write>(&self, writer: W) -> Result<()> {
        let h = self.hierarchy()?;
        write_snapshot(self.graph.get(), &self.decomposition, Some(h), writer)
    }

    /// Consumes the session, returning the decomposition and the run
    /// metrics ([`Metrics::default`] when resumed from a snapshot). The
    /// legacy `decompose*` wrappers are implemented with this. When the
    /// state is still shared with [`BitrussEngine::clone_shared`]
    /// handles, the decomposition is copied out; otherwise it is moved.
    pub fn into_parts(self) -> (Decomposition, Metrics) {
        let decomposition =
            Arc::try_unwrap(self.decomposition).unwrap_or_else(|shared| (*shared).clone());
        (decomposition, self.metrics.unwrap_or_default())
    }
}

/// One query of the batch language served by [`BitrussEngine::execute`]
/// and the CLI `query` subcommand:
///
/// ```text
/// levels                  # edge count per bitruss number
/// edges <k>               # size of the k-bitruss
/// community <u> <v> <k>   # the k-bitruss community around edge (u, v)
/// ```
///
/// Marked `#[non_exhaustive]`: new query verbs may be added without a
/// semver break.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Edge count per distinct bitruss number.
    Levels,
    /// Size of the k-bitruss.
    Edges {
        /// The truss level.
        k: u64,
    },
    /// The k-bitruss community containing the edge between upper vertex
    /// `upper` and lower vertex `lower` (layer-local indices).
    Community {
        /// Layer-local upper vertex index.
        upper: u64,
        /// Layer-local lower vertex index.
        lower: u64,
        /// The truss level.
        k: u64,
    },
}

/// Parses one line of the batch query language. The error string names
/// the offending verb and argument (e.g. `edges: missing k`), ready to
/// print after an `error: ` prefix.
impl FromStr for Query {
    type Err = String;

    fn from_str(line: &str) -> std::result::Result<Query, String> {
        let mut it = line.split_whitespace();
        let verb = it.next().unwrap_or_default();
        let mut num = |what: &str| -> std::result::Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("missing {what}"))?
                .parse::<u64>()
                .map_err(|_| format!("invalid {what}"))
        };
        match verb {
            "levels" => Ok(Query::Levels),
            "edges" => num("k")
                .map(|k| Query::Edges { k })
                .map_err(|e| format!("edges: {e}")),
            "community" => (|| {
                Ok(Query::Community {
                    upper: num("upper index")?,
                    lower: num("lower index")?,
                    k: num("k")?,
                })
            })()
            .map_err(|e: String| format!("community: {e}")),
            other => Err(format!(
                "unknown query {other:?} (expected levels | edges | community)"
            )),
        }
    }
}

/// The typed answer to a [`Query`]; its [`fmt::Display`] renders the
/// exact line format the CLI `query` subcommand prints.
///
/// Marked `#[non_exhaustive]`: new query verbs bring new answers.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// `(k, edge count)` per distinct bitruss number, ascending.
    Levels(Vec<(u64, usize)>),
    /// Size of the k-bitruss.
    Count {
        /// The queried truss level.
        k: u64,
        /// Number of edges with `φ ≥ k`.
        count: usize,
    },
    /// The addressed vertex pair is in range but not connected.
    NoSuchEdge {
        /// Layer-local upper vertex index.
        upper: u64,
        /// Layer-local lower vertex index.
        lower: u64,
        /// The queried truss level.
        k: u64,
    },
    /// The edge exists but its bitruss number is below `k`.
    NotInTruss {
        /// Layer-local upper vertex index.
        upper: u64,
        /// Layer-local lower vertex index.
        lower: u64,
        /// The queried truss level.
        k: u64,
        /// The edge's actual bitruss number.
        phi: u64,
    },
    /// The community summary.
    Community {
        /// Layer-local upper vertex index.
        upper: u64,
        /// Layer-local lower vertex index.
        lower: u64,
        /// The queried truss level.
        k: u64,
        /// Upper-layer members of the community.
        num_upper: usize,
        /// Lower-layer members of the community.
        num_lower: usize,
        /// Edges of the community.
        num_edges: usize,
    },
}

impl fmt::Display for QueryAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryAnswer::Levels(levels) => {
                for (i, (k, n)) in levels.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "phi = {k}: {n} edges")?;
                }
                Ok(())
            }
            QueryAnswer::Count { k, count } => write!(f, "{count} edges with phi >= {k}"),
            QueryAnswer::NoSuchEdge { upper, lower, k } => {
                write!(f, "community ({upper}, {lower}) k={k}: no such edge")
            }
            QueryAnswer::NotInTruss {
                upper,
                lower,
                k,
                phi,
            } => write!(
                f,
                "community ({upper}, {lower}) k={k}: edge not in the {k}-bitruss (phi = {phi})"
            ),
            QueryAnswer::Community {
                upper,
                lower,
                k,
                num_upper,
                num_lower,
                num_edges,
            } => write!(
                f,
                "community ({upper}, {lower}) k={k}: {num_upper} upper + {num_lower} lower vertices, {num_edges} edges"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn session_lifecycle_on_fig1() {
        let session = BitrussEngine::builder().build(fig1()).unwrap();
        assert_eq!(session.algorithm(), Some(Algorithm::BuPlusPlus));
        assert_eq!(session.max_bitruss(), 2);
        assert_eq!(session.phi().len(), 11);
        assert!(session.metrics().is_some());
        assert_eq!(session.k_bitruss_count(2).unwrap(), 6);
        assert_eq!(session.k_bitruss_edges(2).unwrap().len(), 6);
        let communities = session.communities(2).unwrap();
        assert_eq!(communities.len(), 1);
        let g = session.graph();
        let e = g.edge_between(g.upper(0), g.lower(0)).unwrap();
        assert!(session.community_of(e, 2).unwrap().is_some());
        assert!(session.community_of(e, 3).unwrap().is_none());
        assert_eq!(session.max_k(g.upper(0)).unwrap(), Some(2));
    }

    #[test]
    fn borrowed_sessions_leave_the_graph_to_the_caller() {
        let g = fig1();
        let session = BitrussEngine::builder().build_borrowed(&g).unwrap();
        assert_eq!(session.max_bitruss(), 2);
        drop(session);
        assert_eq!(g.num_edges(), 11); // still ours
    }

    #[test]
    fn threads_upgrade_rule() {
        let session = BitrussEngine::builder()
            .threads(Threads(2))
            .build(fig1())
            .unwrap();
        assert!(matches!(
            session.algorithm(),
            Some(Algorithm::BuPlusPlusPar {
                threads: Threads(2)
            })
        ));

        let session = BitrussEngine::builder()
            .algorithm(Algorithm::two_phase_auto())
            .threads(Threads(4))
            .build(fig1())
            .unwrap();
        assert!(matches!(
            session.algorithm(),
            Some(Algorithm::BuPlusPlusTwoPhase {
                threads: Threads(4)
            })
        ));

        let err = BitrussEngine::builder()
            .algorithm(Algorithm::Bu)
            .threads(Threads(2))
            .build(fig1())
            .unwrap_err();
        assert!(matches!(err, Error::Invariant(_)), "{err}");
    }

    #[test]
    fn memory_budget_rules() {
        // Budget + non-default algorithm / threads / pruning → Invariant.
        let err = BitrussEngine::builder()
            .algorithm(Algorithm::Bu)
            .memory_budget(1024)
            .build(fig1())
            .unwrap_err();
        assert!(matches!(err, Error::Invariant(_)), "{err}");
        let err = BitrussEngine::builder()
            .threads(Threads(2))
            .memory_budget(1024)
            .build(fig1())
            .unwrap_err();
        assert!(matches!(err, Error::Invariant(_)), "{err}");
        let err = BitrussEngine::builder()
            .pruned(true)
            .memory_budget(1024)
            .build(fig1())
            .unwrap_err();
        assert!(matches!(err, Error::Invariant(_)), "{err}");
    }

    #[test]
    fn under_budget_runs_in_memory_over_budget_spills_and_both_agree() {
        let baseline = BitrussEngine::builder().build(fig1()).unwrap();
        let report = baseline.metrics().unwrap().memory.unwrap();
        assert_eq!(report.budget_bytes, 0);
        assert_eq!(report.page_cache_bytes, 0);
        assert_eq!(report.spill_bytes_written, 0);
        assert_eq!(report.graph_bytes, fig1().memory_bytes());

        // A huge budget fits the estimate: the in-memory path runs and
        // records the budget it was checked against.
        let roomy = BitrussEngine::builder()
            .memory_budget(usize::MAX)
            .build(fig1())
            .unwrap();
        let roomy_report = roomy.metrics().unwrap().memory.unwrap();
        assert_eq!(roomy_report.budget_bytes, usize::MAX);
        assert_eq!(roomy_report.page_cache_bytes, 0);
        assert_eq!(roomy_report.spill_bytes_written, 0);
        assert_eq!(roomy.phi(), baseline.phi());

        // A tiny budget routes out of core on a MemVfs scratch; φ and
        // the hierarchy answers are bit-identical.
        let vfs = Arc::new(bigraph::vfs::MemVfs::new());
        let tight = BitrussEngine::builder()
            .memory_budget(64)
            .scratch(vfs, PathBuf::from("scratch"))
            .build(fig1())
            .unwrap();
        assert_eq!(tight.phi(), baseline.phi());
        assert_eq!(tight.max_bitruss(), baseline.max_bitruss());
        let tight_report = tight.metrics().unwrap().memory.unwrap();
        assert_eq!(tight_report.budget_bytes, 64);
        assert!(tight_report.spill_bytes_written > 0);
        assert!(tight_report.graph_bytes < fig1().memory_bytes());
        assert_eq!(
            tight.k_bitruss_count(2).unwrap(),
            baseline.k_bitruss_count(2).unwrap()
        );
    }

    #[test]
    fn eager_hierarchy_is_prebuilt() {
        let session = BitrussEngine::builder()
            .hierarchy(HierarchyMode::Eager)
            .build(fig1())
            .unwrap();
        assert!(session.hierarchy.get().is_some());
        assert_eq!(session.level_sizes()[&2], 6);
    }

    #[test]
    fn pruned_sessions_match_plain() {
        let g = datagen::powerlaw::chung_lu(50, 50, 320, 2.1, 2.1, 9);
        let plain = BitrussEngine::builder().build_borrowed(&g).unwrap();
        let pruned = BitrussEngine::builder()
            .pruned(true)
            .build_borrowed(&g)
            .unwrap();
        assert_eq!(plain.phi(), pruned.phi());
    }

    #[test]
    fn histogram_bounds_are_collected() {
        let session = BitrussEngine::builder()
            .histogram_bounds(vec![1, 2])
            .build(fig1())
            .unwrap();
        assert!(session.metrics().unwrap().histogram.is_some());
    }

    #[test]
    fn query_language_round_trip() {
        let session = BitrussEngine::builder().build(fig1()).unwrap();
        assert_eq!("levels".parse::<Query>(), Ok(Query::Levels));
        assert_eq!("edges 2".parse::<Query>(), Ok(Query::Edges { k: 2 }));
        assert_eq!(
            "community 0 0 2".parse::<Query>(),
            Ok(Query::Community {
                upper: 0,
                lower: 0,
                k: 2
            })
        );
        assert_eq!(
            "edges".parse::<Query>().unwrap_err(),
            "edges: missing k".to_string()
        );
        assert_eq!(
            "community 0 x 2".parse::<Query>().unwrap_err(),
            "community: invalid lower index".to_string()
        );

        let answer = session.execute(&Query::Edges { k: 2 }).unwrap();
        assert_eq!(answer.to_string(), "6 edges with phi >= 2");
        assert_eq!(
            session
                .execute(&Query::Community {
                    upper: 0,
                    lower: 0,
                    k: 2
                })
                .unwrap()
                .to_string(),
            "community (0, 0) k=2: 3 upper + 2 lower vertices, 6 edges"
        );
        assert_eq!(
            session
                .execute(&Query::Community {
                    upper: 3,
                    lower: 4,
                    k: 2
                })
                .unwrap(),
            QueryAnswer::NotInTruss {
                upper: 3,
                lower: 4,
                k: 2,
                phi: 0
            }
        );
        assert_eq!(
            session
                .execute(&Query::Community {
                    upper: 0,
                    lower: 4,
                    k: 1
                })
                .unwrap(),
            QueryAnswer::NoSuchEdge {
                upper: 0,
                lower: 4,
                k: 1
            }
        );
        assert!(matches!(
            session.execute(&Query::Community {
                upper: 99,
                lower: 0,
                k: 1
            }),
            Err(Error::Invariant(_))
        ));
    }

    #[test]
    fn batch_serving_matches_line_protocol() {
        let session = BitrussEngine::builder().build(fig1()).unwrap();
        let input =
            "% a comment\n\nlevels\nedges 2\ncommunity 0 0 2\nbogus\nedges\ncommunity 99 0 1\n";
        let mut out = Vec::new();
        let answered = session.run_queries(input.as_bytes(), &mut out).unwrap();
        assert_eq!(answered, 6);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "phi = 0: 2 edges");
        assert_eq!(lines[1], "phi = 1: 3 edges");
        assert_eq!(lines[2], "phi = 2: 6 edges");
        assert_eq!(lines[3], "6 edges with phi >= 2");
        assert_eq!(
            lines[4],
            "community (0, 0) k=2: 3 upper + 2 lower vertices, 6 edges"
        );
        assert!(lines[5].starts_with("error: unknown query \"bogus\""));
        assert_eq!(lines[6], "error: edges: missing k");
        assert_eq!(lines[7], "error: community: vertex (99, 0) out of range");
        assert_eq!(lines.len(), 8);
    }

    #[test]
    fn snapshot_round_trip_through_the_engine() {
        let g = datagen::random::uniform(12, 12, 55, 5);
        let session = BitrussEngine::builder().build_borrowed(&g).unwrap();
        let mut bytes = Vec::new();
        session.save_snapshot_to(&mut bytes).unwrap();
        let resumed = BitrussEngine::from_snapshot_reader(&bytes[..]).unwrap();
        assert_eq!(resumed.phi(), session.phi());
        assert!(resumed.metrics().is_none());
        assert!(resumed.algorithm().is_none());
        // The persisted hierarchy was adopted — queries agree.
        assert!(resumed.hierarchy.get().is_some());
        for k in 0..=session.max_bitruss() {
            assert_eq!(
                resumed.k_bitruss_edges(k).unwrap(),
                session.k_bitruss_edges(k).unwrap()
            );
        }
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitrussEngine<'static>>();
        assert_send_sync::<EngineBuilder>();
    }
}
