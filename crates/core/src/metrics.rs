//! Instrumentation shared by every decomposition algorithm.
//!
//! The paper's evaluation plots three internal quantities besides wall
//! time: the number of butterfly-support updates (Figures 7, 10, 14b),
//! the split between counting and peeling time (Figure 5), and the BE-
//! Index size (Figure 11). [`Metrics`] collects all of them.

use std::time::Duration;

use bigraph::EdgeId;

/// Histogram of support updates bucketed by each edge's *original*
/// butterfly support — Figure 7's "number of updates per range of original
/// butterfly supports", which exposes the hub-edge problem.
#[derive(Debug, Clone)]
pub struct UpdateHistogram {
    /// Upper bounds of the buckets (exclusive), ascending; one final
    /// implicit bucket catches everything above the last bound.
    bounds: Vec<u64>,
    /// Precomputed bucket of each edge (global edge ids).
    bucket_of_edge: Vec<u8>,
    /// Update counts per bucket (`bounds.len() + 1` entries).
    counts: Vec<u64>,
}

impl UpdateHistogram {
    /// Creates a histogram with the given bucket bounds over edges whose
    /// original supports are `original_supports`.
    pub fn new(bounds: Vec<u64>, original_supports: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        debug_assert!(bounds.len() < 255, "too many buckets");
        let bucket_of_edge = original_supports
            .iter()
            .map(|&s| bounds.partition_point(|&b| b <= s) as u8)
            .collect();
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            bucket_of_edge,
            counts,
        }
    }

    /// Records one update to a (global) edge.
    #[inline]
    pub fn record(&mut self, e: EdgeId) {
        self.counts[self.bucket_of_edge[e.index()] as usize] += 1;
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Update counts per bucket (last bucket = above the last bound).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Human-readable labels like `"<5000"`, `"5000-9999"`, `">=20000"`.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.counts.len());
        for (i, &b) in self.bounds.iter().enumerate() {
            if i == 0 {
                labels.push(format!("<{b}"));
            } else {
                labels.push(format!("{}-{}", self.bounds[i - 1], b - 1));
            }
        }
        labels.push(match self.bounds.last() {
            Some(&b) => format!(">={b}"),
            None => "all".to_string(),
        });
        labels
    }
}

/// Phase timings and counters for one decomposition run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Total butterfly-support updates performed during peeling.
    pub support_updates: u64,
    /// Time spent counting supports (includes BiT-PC's recounts).
    pub counting_time: Duration,
    /// Time spent constructing BE-Indexes (zero for BiT-BS).
    pub index_time: Duration,
    /// Time spent peeling (removal operations and queue work). For the
    /// two-phase engine this is the per-band peel (its phase 2).
    pub peeling_time: Duration,
    /// Time spent in the coarse band-partitioning scan (the two-phase
    /// engine's phase 1; zero for every other algorithm).
    pub partition_time: Duration,
    /// Time spent stitching per-band φ results and settling boundary
    /// migrations (the two-phase engine only; zero otherwise).
    pub stitch_time: Duration,
    /// Number of φ bands the two-phase engine partitioned the range into
    /// (0 for every other algorithm).
    pub bands: usize,
    /// Time spent extracting candidate subgraphs (BiT-PC only).
    pub extraction_time: Duration,
    /// Number of ε-iterations (BiT-PC; 1 for the others).
    pub iterations: u32,
    /// Peak BE-Index size in bytes over the run (0 for BiT-BS).
    pub peak_index_bytes: usize,
    /// Worker threads the counting phase was *configured* with (0 = the
    /// sequential engine, which does not set the per-phase counts). Small
    /// inputs may still run sequentially under the hood — the parallel
    /// entry points fall back below their size thresholds.
    pub counting_threads: usize,
    /// Worker threads the index-construction phase was configured with
    /// (0 = sequential engine; same fallback caveat as counting).
    pub index_threads: usize,
    /// Worker threads the peeling phase can fan out to (0 = sequential
    /// engine; light batches run inline even when this is > 1).
    pub peeling_threads: usize,
    /// Thread-local scratch allocated by the parallel peeling engine, in
    /// bytes (0 until a batch is heavy enough to fan out). Reported
    /// separately from [`Metrics::peak_index_bytes`] so the parallel
    /// engine's true memory footprint stays visible next to the index's.
    pub scratch_bytes: usize,
    /// Dynamic maintenance only: edges the affected-region analyzer
    /// marked for re-peeling (0 for full decomposition runs).
    pub affected_edges: u64,
    /// Dynamic maintenance only: edges whose φ was carried over from the
    /// previous decomposition without re-peeling (0 for full runs).
    pub reused_edges: u64,
    /// Optional per-original-support update histogram (Figure 7).
    pub histogram: Option<UpdateHistogram>,
    /// Memory accounting of the run (graph residency, index peak, page
    /// cache, spill traffic). Filled by the engine for both the
    /// in-memory and the budgeted path; `None` for direct algorithm
    /// calls that bypass the engine.
    pub memory: Option<bitruss_storage::MemoryReport>,
}

impl Metrics {
    /// Total wall time across the phases.
    pub fn total_time(&self) -> Duration {
        self.counting_time
            + self.index_time
            + self.partition_time
            + self.peeling_time
            + self.stitch_time
            + self.extraction_time
    }

    /// Fraction of edges whose φ survived a maintenance run untouched
    /// (`reused / (reused + affected)`); 0.0 for full decomposition runs
    /// (which reuse nothing).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.affected_edges + self.reused_edges;
        if total == 0 {
            0.0
        } else {
            self.reused_edges as f64 / total as f64
        }
    }

    /// Enables histogram collection with the given bucket bounds over the
    /// original supports.
    pub fn enable_histogram(&mut self, bounds: Vec<u64>, original_supports: &[u64]) {
        self.histogram = Some(UpdateHistogram::new(bounds, original_supports));
    }

    /// Records one support update attributed to global edge `e`.
    #[inline]
    pub fn record_update(&mut self, e: EdgeId) {
        self.support_updates += 1;
        if let Some(h) = &mut self.histogram {
            h.record(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let orig = vec![0, 4999, 5000, 19_999, 20_000, 100_000];
        let mut h = UpdateHistogram::new(vec![5_000, 10_000, 15_000, 20_000], &orig);
        for (e, _) in orig.iter().enumerate() {
            h.record(EdgeId(e as u32));
        }
        assert_eq!(h.counts(), &[2, 1, 0, 1, 2]);
        assert_eq!(
            h.labels(),
            vec![
                "<5000",
                "5000-9999",
                "10000-14999",
                "15000-19999",
                ">=20000"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "bounds must ascend")]
    fn unsorted_bounds_panic() {
        UpdateHistogram::new(vec![10, 5], &[1, 2]);
    }

    #[test]
    fn metrics_totals() {
        let mut m = Metrics {
            counting_time: Duration::from_millis(5),
            peeling_time: Duration::from_millis(7),
            partition_time: Duration::from_millis(2),
            stitch_time: Duration::from_millis(1),
            ..Metrics::default()
        };
        assert_eq!(m.total_time(), Duration::from_millis(15));
        m.enable_histogram(vec![10], &[3, 30]);
        m.record_update(EdgeId(0));
        m.record_update(EdgeId(1));
        m.record_update(EdgeId(1));
        assert_eq!(m.support_updates, 3);
        assert_eq!(m.histogram.as_ref().unwrap().counts(), &[1, 2]);
    }
}
