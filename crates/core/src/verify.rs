//! Brute-force reference decomposition and validators, used to certify
//! every fast algorithm in the suite.

use bigraph::{edge_subgraph, BipartiteGraph};
use butterfly::count_per_edge;

use crate::decomposition::Decomposition;

/// Textbook bottom-up peeling that recounts all supports from scratch
/// after every single removal. Obviously correct, hopelessly slow —
/// strictly for test-sized graphs.
pub fn reference_decomposition(g: &BipartiteGraph) -> Decomposition {
    let m = g.num_edges() as usize;
    let mut alive = vec![true; m];
    let mut phi = vec![0u64; m];
    let mut remaining = m;
    let mut level = 0u64;

    while remaining > 0 {
        let sub = edge_subgraph(g, |e| alive[e.index()]);
        let counts = count_per_edge(&sub.graph);
        // Minimum support among alive edges, smallest original edge id on
        // ties (matches the deterministic order of the fast algorithms).
        // `remaining > 0` keeps the subgraph non-empty; an empty
        // iterator would mean nothing is left to peel, so stopping is
        // the faithful (and panic-free) response.
        let Some((pos, &s)) = counts
            .per_edge
            .iter()
            .enumerate()
            .min_by_key(|&(i, &s)| (s, sub.new_to_old[i]))
        else {
            break;
        };
        level = level.max(s);
        let victim = sub.new_to_old[pos];
        phi[victim.index()] = level;
        alive[victim.index()] = false;
        remaining -= 1;
    }
    Decomposition::new(phi)
}

/// Computes the k-bitruss directly from Definition 4: repeatedly delete
/// edges whose support inside the current subgraph is below `k`, until a
/// fixpoint. Returns the alive mask over `g`'s edges.
pub fn k_bitruss_fixpoint(g: &BipartiteGraph, k: u64) -> Vec<bool> {
    let m = g.num_edges() as usize;
    let mut alive = vec![true; m];
    loop {
        let sub = edge_subgraph(g, |e| alive[e.index()]);
        let counts = count_per_edge(&sub.graph);
        let mut changed = false;
        for (i, &s) in counts.per_edge.iter().enumerate() {
            if s < k {
                alive[sub.new_to_old[i].index()] = false;
                changed = true;
            }
        }
        if !changed {
            return alive;
        }
    }
}

/// Validates a decomposition against Definitions 4–5 directly: for every
/// level `k` present, the edge set `{e : φ(e) ≥ k}` must equal the
/// k-bitruss fixpoint (soundness *and* maximality).
pub fn validate_decomposition(g: &BipartiteGraph, d: &Decomposition) -> Result<(), String> {
    if d.phi.len() != g.num_edges() as usize {
        return Err(format!(
            "φ has {} entries for {} edges",
            d.phi.len(),
            g.num_edges()
        ));
    }
    for k in d.levels() {
        if k == 0 {
            continue; // the 0-bitruss is the whole graph by definition
        }
        let expect = k_bitruss_fixpoint(g, k);
        for e in g.edges() {
            let claimed = d.phi[e.index()] >= k;
            if claimed != expect[e.index()] {
                return Err(format!(
                    "edge {e:?}: claimed {}∈H_{k} but fixpoint says {}",
                    claimed,
                    expect[e.index()]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn reference_matches_paper_example() {
        let g = fig1();
        let d = reference_decomposition(&g);
        // Figure 1: blue edges φ=2, yellow φ=1, gray φ=0.
        // Sorted edge order: (0,0),(0,1),(1,0),(1,1),(2,0),(2,1),(2,2),
        // (2,3),(3,1),(3,2),(3,4).
        assert_eq!(d.phi, vec![2, 2, 2, 2, 2, 2, 1, 0, 1, 1, 0]);
    }

    #[test]
    fn reference_is_self_consistent() {
        let g = fig1();
        let d = reference_decomposition(&g);
        validate_decomposition(&g, &d).unwrap();
    }

    #[test]
    fn fixpoint_matches_figure4() {
        // Figure 4: H_1 is everything except the two pendant edges; H_2 is
        // the {u0,u1,u2}×{v0,v1} block.
        let g = fig1();
        let h1 = k_bitruss_fixpoint(&g, 1);
        assert_eq!(h1.iter().filter(|&&a| a).count(), 9);
        let h2 = k_bitruss_fixpoint(&g, 2);
        assert_eq!(h2.iter().filter(|&&a| a).count(), 6);
        let h3 = k_bitruss_fixpoint(&g, 3);
        assert_eq!(h3.iter().filter(|&&a| a).count(), 0);
    }

    #[test]
    fn validator_rejects_wrong_phi() {
        let g = fig1();
        let mut d = reference_decomposition(&g);
        d.phi[0] = 5; // nonsense
        assert!(validate_decomposition(&g, &d).is_err());
    }

    #[test]
    fn complete_biclique_reference() {
        // K_{3,3}: every edge has φ = (3-1)(3-1) = 4.
        let mut b = GraphBuilder::new();
        for u in 0..3 {
            for v in 0..3 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let d = reference_decomposition(&g);
        assert!(d.phi.iter().all(|&p| p == 4));
        validate_decomposition(&g, &d).unwrap();
    }
}
