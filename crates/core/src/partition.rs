//! BiT-BU++2P — two-phase partition-parallel peeling (RECEIPT/PBNG
//! style).
//!
//! The per-batch fork/join of [`BiT-BU++/P`](crate::algo::bit_bu_pp_par)
//! synchronizes workers at every support level; on graphs with many
//! small batches the joins dominate and two threads can run *slower*
//! than one. This module replaces per-batch fan-out with two coarse
//! phases separated by a single barrier:
//!
//! 1. **Partition** ([`Phase::Partition`]): one coarse bottom-up scan
//!    splits the φ range into `P` contiguous *bands*
//!    `(t₀, t₁], (t₁, t₂], …` chosen from support quantiles, and assigns
//!    every edge its band by running the peeling fixpoint to each
//!    threshold in turn. Removing every edge with support ≤ t leaves the
//!    maximal subgraph in which all supports exceed t, so the edges
//!    removed while working towards threshold `t_p` are **exactly**
//!    `{e : t_{p−1} < φ(e) ≤ t_p}` — band assignment is not a heuristic.
//!    The scan records each band edge's *entry support* (its butterfly
//!    support in the residual graph `G_p` at the moment band `p`
//!    started) as the seed for phase 2.
//! 2. **Band peel** ([`Phase::Peeling`]): every band is peeled
//!    independently with partition-local state — a local bucket queue
//!    over the band's edges, local delta buffers, and per-band BE-Index
//!    *slices* (each bloom's wedges pre-sorted by band so a band worker
//!    traverses only wedges still alive at its band's start). Workers
//!    pull whole bands off a shared counter; there is **no
//!    cross-partition synchronization** — higher-band edges are
//!    read-only context and lower-band edges are already gone from the
//!    slices.
//!
//! A final **stitch** pass ([`Phase::Stitch`]) merges the per-band φ
//! fragments and validates the *band invariant*: every edge's φ must lie
//! inside its assigned band. The invariant is a theorem of the
//! construction (see below), so the validation normally finds nothing;
//! if a violation is ever observed, the offending edges are re-peeled
//! against the frozen remainder via
//! [`repeel_region`] — the same
//! frozen-boundary mechanics the dynamic maintenance layer uses — and
//! the migration is recorded in the returned [`StitchLog`].
//!
//! # Why the per-band peel is exact
//!
//! At band `p`'s start the residual graph `G_p` contains exactly the
//! edges with φ > t_{p−1}. Every surviving edge's tracked support equals
//! its true support in `G_p` (all clamp floors so far are ≤ t_{p−1} <
//! φ(e) ≤ true support). During the levels of band `p` the global peel
//! removes only band-`p` edges, so the support trajectories of band-`p`
//! edges depend only on `G_p`'s topology and the band's own removals —
//! both of which the band worker reproduces: entry supports come from
//! the partition scan, bloom sizes at band start equal the count of
//! wedges whose *both* members sit in bands ≥ p (the sorted slice
//! prefix), and the worker then replays Algorithm 5's batch accounting
//! with the aggregated one-write-per-edge deltas of BiT-BU#. The
//! `max(MBS, ·)` clamp composes across merged writes, so the resulting
//! φ is bit-identical to sequential BiT-BU++ for every thread count and
//! every band count.
//!
//! Because a band worker never tracks supports of higher-band edges,
//! the hub-edge write traffic that dominates the sequential peel (low
//! levels repeatedly decrementing high-support edges) disappears:
//! `support_updates` drops well below even BiT-BU#'s aggregated count,
//! which is what makes the engine faster at one *and* two threads.
//!
//! (Missing-docs enforcement moved to the crate root — see
//! `missing-docs-parity` in docs/LINTS.md.)

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use beindex::{BeIndex, BloomId, WedgeId};
use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase};
use bigraph::{BipartiteGraph, EdgeId, Result};
use butterfly::{count_per_edge_parallel_observed, Threads};

use crate::algo::parallel::{accumulate_bloom_deltas, PAR_BATCH_MIN_WORK};
use crate::bucket_queue::BucketQueue;
use crate::decomposition::Decomposition;
use crate::metrics::Metrics;
use crate::repeel::repeel_region;

/// Default number of φ bands the partition scan aims for. Constant (not
/// a function of the thread count) so φ *and* `support_updates` are
/// identical across thread counts; 16 bands load-balance up to ~8
/// workers through the shared band counter.
pub const DEFAULT_NUM_BANDS: usize = 16;

/// One edge the stitch pass found outside its assigned band (never
/// produced by a correct build — kept so tests can assert the invariant
/// and any regression is observable instead of silent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StitchMigration {
    /// The out-of-band edge.
    pub edge: EdgeId,
    /// The band the partition scan assigned it.
    pub band: u32,
    /// The φ the band peel produced for it (outside the band's range).
    pub phi: u64,
}

/// Record of the stitch pass: which edges (if any) escaped their band
/// and were settled by a frozen-boundary re-peel.
#[derive(Debug, Clone, Default)]
pub struct StitchLog {
    /// Out-of-band edges, ascending by edge id; empty on every correct
    /// run (the band invariant is a theorem, see the module docs).
    pub migrations: Vec<StitchMigration>,
}

/// The partition produced by phase 1, returned alongside the
/// decomposition by [`bit_bu_pp_2p_with_outcome`] so tests and tools can
/// audit band assignment.
#[derive(Debug, Clone, Default)]
pub struct BandPartition {
    /// Ascending inclusive upper thresholds `t_0 < t_1 < …` of bands
    /// `0 … P−2`; band `P−1` is unbounded above. Empty means a single
    /// band covered everything.
    pub bounds: Vec<u64>,
    /// Band index of every edge (indexed by edge id).
    pub band_of_edge: Vec<u32>,
    /// What the stitch pass had to settle (normally nothing).
    pub stitch: StitchLog,
}

impl BandPartition {
    /// Number of bands.
    pub fn num_bands(&self) -> usize {
        self.bounds.len() + 1
    }

    /// The inclusive φ range `(lo, hi)` of band `p`; `hi` is `None` for
    /// the last (unbounded) band.
    pub fn band_range(&self, p: u32) -> (u64, Option<u64>) {
        let lo = if p == 0 {
            0
        } else {
            self.bounds[p as usize - 1] + 1
        };
        (lo, self.bounds.get(p as usize).copied())
    }

    /// Whether `phi` lies inside band `p`.
    pub fn in_band(&self, p: u32, phi: u64) -> bool {
        let (lo, hi) = self.band_range(p);
        phi >= lo && hi.is_none_or(|h| phi <= h)
    }
}

/// Runs BiT-BU++2P: the two-phase partition-parallel engine with the
/// default band count. The decomposition is bit-identical to
/// [`bit_bu_pp`](crate::algo::bit_bu_pp) for every thread count
/// (`Threads(0)` = auto).
pub fn bit_bu_pp_2p(g: &BipartiteGraph, threads: Threads) -> (Decomposition, Metrics) {
    bit_bu_pp_2p_tuned(g, threads, DEFAULT_NUM_BANDS)
}

/// [`bit_bu_pp_2p`] with an explicit band count. More bands mean less
/// support-update work per band but more per-band setup; the default
/// [`DEFAULT_NUM_BANDS`] is a good trade for graphs up to millions of
/// edges. `num_bands ≤ 1` degenerates to a single band (one sequential
/// BiT-BU#-style peel). φ is identical for every band count.
pub fn bit_bu_pp_2p_tuned(
    g: &BipartiteGraph,
    threads: Threads,
    num_bands: usize,
) -> (Decomposition, Metrics) {
    let (d, m, _) =
        bit_bu_pp_2p_run(g, threads, num_bands, &NoopObserver).expect("NoopObserver never cancels"); // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
    (d, m)
}

/// [`bit_bu_pp_2p`] with an [`EngineObserver`]: phase events for
/// counting, index build, partition, per-band peeling and stitch, with
/// cancellation polls every sub-round/batch in every band worker.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial φ assignment is discarded.
pub fn bit_bu_pp_2p_observed(
    g: &BipartiteGraph,
    threads: Threads,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics)> {
    bit_bu_pp_2p_run(g, threads, DEFAULT_NUM_BANDS, observer).map(|(d, m, _)| (d, m))
}

/// The fully instrumented entry point: like [`bit_bu_pp_2p_observed`]
/// but also returns the [`BandPartition`] (band bounds, per-edge band
/// assignment, stitch log) for auditing.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation.
pub fn bit_bu_pp_2p_with_outcome(
    g: &BipartiteGraph,
    threads: Threads,
    num_bands: usize,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics, BandPartition)> {
    bit_bu_pp_2p_run(g, threads, num_bands, observer)
}

pub(crate) fn bit_bu_pp_2p_run(
    g: &BipartiteGraph,
    threads: Threads,
    num_bands: usize,
    observer: &dyn EngineObserver,
) -> Result<(Decomposition, Metrics, BandPartition)> {
    // Cap workers at the machine's parallelism: the engine is CPU-bound
    // end to end, so oversubscribed workers only add scheduling overhead
    // — and φ, band assignment, and `support_updates` are all
    // independent of the worker count by construction.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t = threads.resolve().min(hw).max(1);
    let mut metrics = Metrics {
        counting_threads: t,
        index_threads: t,
        peeling_threads: t,
        iterations: 1,
        ..Metrics::default()
    };
    let m = g.num_edges() as usize;

    let t0 = Instant::now();
    let counts = count_per_edge_parallel_observed(g, t, observer)?;
    metrics.counting_time = t0.elapsed();

    let t1 = Instant::now();
    let mut index = BeIndex::build_parallel_observed(g, Threads(t), observer)?;
    metrics.index_time = t1.elapsed();
    metrics.peak_index_bytes = index.memory_bytes();

    // Phase 1: coarse threshold peeling assigns every edge a band.
    let t2 = Instant::now();
    observer.on_phase_start(Phase::Partition, m as u64);
    let bounds = band_bounds(&counts.per_edge, num_bands);
    let nb = bounds.len() + 1;
    metrics.bands = nb;
    let mut coarse_scratch_bytes = 0usize;
    let coarse = coarse_partition(
        &mut index,
        counts.per_edge,
        &bounds,
        t,
        observer,
        &mut coarse_scratch_bytes,
    )?;
    // Per-band BE-Index slices: each bloom's wedges sorted by band so a
    // band worker traverses only wedges alive at its band's start.
    let slices = BandSlices::build(&index, &coarse.band);
    metrics.partition_time = t2.elapsed();
    metrics.support_updates += coarse.updates;
    observer.on_phase_end(Phase::Partition);

    // Phase 2: peel every band with partition-local state.
    let t3 = Instant::now();
    observer.on_phase_start(Phase::Peeling, m as u64);
    let mut band_edges: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for e in 0..m {
        band_edges[coarse.band[e] as usize].push(e as u32);
    }
    let ctx = BandContext {
        index: &index,
        band: &coarse.band,
        band_edges: &band_edges,
        start_supp: &coarse.start_supp,
        slices: &slices,
        popped: AtomicU64::new(0),
        total: m as u64,
        observer,
    };
    let (per_band, band_updates, peel_scratch_bytes) = peel_bands(&ctx, &coarse.work, t)?;
    metrics.peeling_time = t3.elapsed();
    metrics.support_updates += band_updates;
    metrics.scratch_bytes = coarse_scratch_bytes.max(peel_scratch_bytes + slices.memory_bytes());
    observer.on_phase_end(Phase::Peeling);

    // Stitch: merge per-band φ fragments and enforce the band invariant.
    let t4 = Instant::now();
    observer.on_phase_start(Phase::Stitch, m as u64);
    checkpoint(observer)?;
    let mut phi = vec![0u64; m];
    for pairs in &per_band {
        for &(e, v) in pairs {
            phi[e as usize] = v;
        }
    }
    let mut outcome = BandPartition {
        bounds,
        band_of_edge: coarse.band,
        stitch: StitchLog::default(),
    };
    let mut region: Vec<bool> = Vec::new();
    for e in 0..m {
        let p = outcome.band_of_edge[e];
        if !outcome.in_band(p, phi[e]) {
            if region.is_empty() {
                region = vec![false; m];
            }
            region[e] = true;
            outcome.stitch.migrations.push(StitchMigration {
                edge: EdgeId(e as u32),
                band: p,
                phi: phi[e],
            });
        }
    }
    if !outcome.stitch.migrations.is_empty() {
        // Fallback repair (unreachable on a correct build, see module
        // docs): replay the escaped edges against the frozen remainder.
        let (fixed, _) = repeel_region(g, &phi, &region, observer)?;
        phi = fixed;
    }
    metrics.stitch_time = t4.elapsed();
    observer.on_phase_end(Phase::Stitch);

    Ok((Decomposition::new(phi), metrics, outcome))
}

/// Picks ascending band thresholds from the support distribution's
/// quantiles — the same "bucket edges by original support" histogram
/// view Figure 7 uses, here as a *work estimate*: φ(e) ≤ sup(e), and
/// equal-mass support buckets give bands of roughly equal peel work.
/// Thresholds at or above the maximum support are dropped (the last
/// band is unbounded); duplicate quantiles collapse, so skewed
/// distributions simply yield fewer bands.
fn band_bounds(supports: &[u64], num_bands: usize) -> Vec<u64> {
    if supports.is_empty() || num_bands <= 1 {
        return Vec::new();
    }
    let mut sorted = supports.to_vec();
    sorted.sort_unstable();
    let m = sorted.len();
    let max = sorted[m - 1];
    let mut bounds = Vec::new();
    for p in 1..num_bands {
        let q = sorted[(p * m / num_bands).min(m - 1)];
        if q < max && bounds.last() != Some(&q) {
            bounds.push(q);
        }
    }
    bounds
}

/// Output of the coarse partition scan.
struct CoarseOutcome {
    /// Band index per edge.
    band: Vec<u32>,
    /// Butterfly support of each edge in `G_band(e)` — the residual
    /// graph at its band's start; the seed supports for phase 2.
    start_supp: Vec<u64>,
    /// Work estimate per band (edges + entry supports), used to order
    /// bands largest-first for the phase-2 scheduler.
    work: Vec<u64>,
    /// Support updates the scan performed.
    updates: u64,
}

/// The coarse bottom-up scan: for each threshold `t_p` in turn, run the
/// peeling fixpoint in huge sub-rounds (everything at support ≤ `t_p`
/// peels together) with BiT-BU#-style aggregated deltas. Supports are
/// **exact** here (no clamping): the scan tracks true residual supports
/// so each band's entry supports can be snapshotted for phase 2. Heavy
/// sub-rounds fan their bloom traversals out across workers exactly as
/// BiT-BU++/P does per batch — but there are only a handful of
/// sub-rounds per band, so the fork/join cost is amortized thousands of
/// times better.
fn coarse_partition(
    index: &mut BeIndex,
    mut supp: Vec<u64>,
    bounds: &[u64],
    threads: usize,
    observer: &dyn EngineObserver,
    scratch_bytes: &mut usize,
) -> Result<CoarseOutcome> {
    let m = supp.len();
    let nb = bounds.len() + 1;
    let last = (nb - 1) as u32;
    let mut band = vec![last; m];
    let mut start_supp = vec![0u64; m];
    let mut work = vec![0u64; nb];
    let mut updates = 0u64;
    // `queued[e]`: e has been claimed by some band (sticky).
    let mut queued = vec![false; m];
    // Lazy entry-support snapshots: `snap[e]` holds e's support at the
    // start of band `snap_band[e] − 1`'s fixpoint, captured on the first
    // delta that band applies to e (stamp 0 = never).
    let mut snap = vec![0u64; m];
    let mut snap_band = vec![0u32; m];

    let mut c: Vec<u32> = vec![0; index.num_blooms() as usize];
    let mut touched_blooms: Vec<u32> = Vec::new();
    let mut delta = vec![0u64; m];
    let mut touched_edges: Vec<u32> = Vec::new();
    let mut pending: Vec<EdgeId> = Vec::new();
    let mut batch: Vec<EdgeId> = Vec::new();
    let mut worker_bufs: Vec<(Vec<u64>, Vec<u32>)> = Vec::new();
    let mut assigned = 0u64;

    for (p, &t_p) in bounds.iter().enumerate() {
        let p = p as u32;
        let stamp = p + 1;
        for e in 0..m {
            if !queued[e] && supp[e] <= t_p {
                queued[e] = true;
                pending.push(EdgeId(e as u32));
            }
        }
        while !pending.is_empty() {
            checkpoint(observer)?;
            std::mem::swap(&mut batch, &mut pending);
            assigned += batch.len() as u64;
            observer.on_phase_progress(Phase::Partition, assigned, m as u64);
            for &e in &batch {
                band[e.index()] = p;
                // Entry support: the value before this band's first
                // delta (the snapshot), or the current value if the
                // band never touched it.
                let s = if snap_band[e.index()] == stamp {
                    snap[e.index()]
                } else {
                    supp[e.index()]
                };
                start_supp[e.index()] = s;
                work[p as usize] += 1 + s;
            }
            // Kill the sub-round's wedges, count C(B), settle twins
            // with −(k−1) into the aggregation buffer (Algorithm 5
            // lines 6–13, deltas aggregated as in BiT-BU#).
            for &e in &batch {
                for li in 0..index.links(e).len() {
                    let w0 = WedgeId(index.links(e)[li]);
                    if !index.wedge_alive(w0) {
                        continue;
                    }
                    let b = index.wedge_bloom(w0);
                    let k = index.bloom_k(b) as u64;
                    let twin = index.wedge_twin(w0, e);
                    index.kill_wedge(w0);
                    if c[b.index()] == 0 {
                        touched_blooms.push(b.0);
                    }
                    c[b.index()] += 1;
                    if k >= 2 && index.in_index(twin) {
                        if delta[twin.index()] == 0 {
                            touched_edges.push(twin.0);
                        }
                        delta[twin.index()] += k - 1;
                    }
                }
                index.remove_edge_links(e);
            }
            batch.clear();
            // One traversal per touched bloom, −C(B) per surviving
            // member; fanned out across workers when heavy.
            let traversal_work: usize = touched_blooms
                .iter()
                .map(|&b| index.bloom_stored_wedges(BloomId(b)) as usize)
                .sum();
            if threads > 1 && traversal_work >= PAR_BATCH_MIN_WORK {
                if worker_bufs.is_empty() {
                    worker_bufs = (0..threads).map(|_| (vec![0u64; m], Vec::new())).collect();
                    *scratch_bytes = threads * m * std::mem::size_of::<u64>();
                }
                std::thread::scope(|scope| {
                    let index = &*index;
                    let c = &c;
                    let blooms = &touched_blooms;
                    for (wi, (w_delta, w_touched)) in worker_bufs.iter_mut().enumerate() {
                        scope.spawn(move || {
                            accumulate_bloom_deltas(
                                index, c, blooms, wi, threads, w_delta, w_touched,
                            );
                        });
                    }
                });
                for (w_delta, w_touched) in &mut worker_bufs {
                    for &e in w_touched.iter() {
                        let d = std::mem::take(&mut w_delta[e as usize]);
                        if delta[e as usize] == 0 {
                            touched_edges.push(e);
                        }
                        delta[e as usize] += d;
                    }
                    w_touched.clear();
                }
            } else {
                accumulate_bloom_deltas(
                    index,
                    &c,
                    &touched_blooms,
                    0,
                    1,
                    &mut delta,
                    &mut touched_edges,
                );
            }
            for &b in &touched_blooms {
                let cb = std::mem::take(&mut c[b as usize]);
                index.sub_bloom_k(BloomId(b), cb);
            }
            touched_blooms.clear();
            // Exact (unclamped) apply; edges crossing the threshold
            // join the next sub-round.
            for &te in &touched_edges {
                let e = te as usize;
                let d = std::mem::take(&mut delta[e]);
                if d > 0 && index.in_index(EdgeId(te)) {
                    if snap_band[e] != stamp {
                        snap_band[e] = stamp;
                        snap[e] = supp[e];
                    }
                    debug_assert!(supp[e] >= d, "coarse support underflow");
                    supp[e] = supp[e].saturating_sub(d);
                    updates += 1;
                    if supp[e] <= t_p && !queued[e] {
                        queued[e] = true;
                        pending.push(EdgeId(te));
                    }
                }
            }
            touched_edges.clear();
        }
    }
    // Everything that survived every threshold is the top band; its
    // residual supports are already exact.
    for e in 0..m {
        if !queued[e] {
            start_supp[e] = supp[e];
            work[last as usize] += 1 + supp[e];
            assigned += 1;
        }
    }
    observer.on_phase_progress(Phase::Partition, assigned, m as u64);
    Ok(CoarseOutcome {
        band,
        start_supp,
        work,
        updates,
    })
}

/// Per-band BE-Index slices: for every bloom, its stored wedge ids
/// re-ordered by wedge band (descending), plus the matching sorted band
/// values. A wedge's band is `min(band(e1), band(e2))` — exactly the
/// band during which the coarse scan kills it — so the wedges alive at
/// band `p`'s start are a *prefix* of the bloom's slice, found by one
/// binary search. Band workers therefore traverse live wedges only,
/// never paying for lower bands' tombstones.
struct BandSlices {
    /// `min(band(e1), band(e2))` per wedge.
    wedge_band: Vec<u32>,
    /// Slice ranges per bloom, length `B + 1`.
    offsets: Vec<u32>,
    /// Wedge ids grouped by bloom, band-descending within each bloom.
    wedges: Vec<u32>,
    /// The band values matching `wedges` (sorted descending per bloom).
    bands: Vec<u32>,
    /// Slice ranges per edge into [`BandSlices::ewedges`], length `m + 1`.
    eoffsets: Vec<u32>,
    /// Per edge `e`: the wedges of `links(e)` whose band equals
    /// `band(e)` — the only links a band peel of `e` can ever act on
    /// (a wedge's band is the min of its members', so no link has a
    /// higher band, and lower-band links died in earlier bands). Hub
    /// edges' link lists are dominated by long-dead low-band wedges;
    /// pre-filtering here keeps phase 1 from rescanning them.
    ewedges: Vec<u32>,
}

impl BandSlices {
    fn build(index: &BeIndex, band: &[u32]) -> BandSlices {
        let nw = index.num_wedges() as usize;
        let nbl = index.num_blooms() as usize;
        let mut wedge_band = vec![0u32; nw];
        for (w, wb) in wedge_band.iter_mut().enumerate() {
            let (e1, e2) = index.wedge_members(WedgeId(w as u32));
            *wb = band[e1.index()].min(band[e2.index()]);
        }
        let mut offsets = vec![0u32; nbl + 1];
        for b in 0..nbl {
            offsets[b + 1] = offsets[b] + index.bloom_stored_wedges(BloomId(b as u32));
        }
        let mut wedges = vec![0u32; nw];
        let mut bands = vec![0u32; nw];
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        // `b` is a bloom id used against three structures; an
        // enumerate-over-offsets rewrite would only obscure that.
        #[allow(clippy::needless_range_loop)]
        for b in 0..nbl {
            pairs.clear();
            for w in index.bloom_wedges(BloomId(b as u32)) {
                pairs.push((wedge_band[w.index()], w.0));
            }
            // Band descending, wedge id ascending within a band — a
            // deterministic order so runs are reproducible.
            pairs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let s = offsets[b] as usize;
            for (i, &(bv, w)) in pairs.iter().enumerate() {
                bands[s + i] = bv;
                wedges[s + i] = w;
            }
        }
        let ne = band.len();
        let mut eoffsets = vec![0u32; ne + 1];
        for e in 0..ne {
            let cnt = index
                .links(EdgeId(e as u32))
                .iter()
                .filter(|&&w| wedge_band[w as usize] == band[e])
                .count();
            eoffsets[e + 1] = eoffsets[e] + cnt as u32;
        }
        let mut ewedges = vec![0u32; eoffsets[ne] as usize];
        for e in 0..ne {
            let mut at = eoffsets[e] as usize;
            for &w in index.links(EdgeId(e as u32)) {
                if wedge_band[w as usize] == band[e] {
                    ewedges[at] = w;
                    at += 1;
                }
            }
        }
        BandSlices {
            wedge_band,
            offsets,
            wedges,
            bands,
            eoffsets,
            ewedges,
        }
    }

    /// The links of `e` whose wedge band equals `e`'s own band — the
    /// only wedges `e`'s removal during its band peel can still kill.
    #[inline]
    fn edge_wedges(&self, e: EdgeId) -> &[u32] {
        &self.ewedges[self.eoffsets[e.index()] as usize..self.eoffsets[e.index() + 1] as usize]
    }

    /// The slice range holding bloom `b`'s wedges alive at band `p`'s
    /// start: `(start, len)` into [`BandSlices::wedges`]. `len` is also
    /// the bloom's wedge count `k` at that moment.
    #[inline]
    fn live_prefix(&self, b: BloomId, p: u32) -> (usize, usize) {
        let s = self.offsets[b.index()] as usize;
        let e = self.offsets[b.index() + 1] as usize;
        let len = self.bands[s..e].partition_point(|&bv| bv >= p);
        (s, len)
    }

    fn memory_bytes(&self) -> usize {
        (self.wedge_band.len()
            + self.wedges.len()
            + self.bands.len()
            + self.offsets.len()
            + self.eoffsets.len()
            + self.ewedges.len())
            * 4
    }
}

/// Read-only context shared by every band worker.
struct BandContext<'a> {
    index: &'a BeIndex,
    band: &'a [u32],
    band_edges: &'a [Vec<u32>],
    start_supp: &'a [u64],
    slices: &'a BandSlices,
    popped: AtomicU64,
    total: u64,
    observer: &'a dyn EngineObserver,
}

/// Partition-local scratch, allocated once per worker and reused across
/// the bands it pulls. All per-edge/per-wedge/per-bloom state resets in
/// O(touched) via stamps (`band + 1`) or take-lists — never an O(m)
/// clear between bands.
struct BandScratch {
    /// Working supports; only the current band's entries are live.
    supp: Vec<u64>,
    /// Aggregated per-edge deltas for the current batch (take-reset).
    delta: Vec<u64>,
    /// Stamp per edge: `band + 1` once the band peel removed it.
    removed: Vec<u32>,
    /// Stamp per wedge: `band + 1` once killed within the band.
    killed: Vec<u32>,
    /// Bloom wedge counts as the band evolves them.
    k_local: Vec<u32>,
    /// Stamp per bloom: `band + 1` once `k_local` was initialized.
    k_seen: Vec<u32>,
    /// Per-bloom removed-wedge counts for the current batch (take-reset).
    c: Vec<u32>,
    touched_blooms: Vec<u32>,
    touched_edges: Vec<u32>,
    batch: Vec<EdgeId>,
    updates: u64,
}

impl BandScratch {
    fn new(m: usize, nw: usize, nbl: usize) -> BandScratch {
        BandScratch {
            supp: vec![0; m],
            delta: vec![0; m],
            removed: vec![0; m],
            killed: vec![0; nw],
            k_local: vec![0; nbl],
            k_seen: vec![0; nbl],
            c: vec![0; nbl],
            touched_blooms: Vec::new(),
            touched_edges: Vec::new(),
            batch: Vec::new(),
            updates: 0,
        }
    }

    fn memory_bytes(m: usize, nw: usize, nbl: usize) -> usize {
        m * 8 + m * 8 + m * 4 + nw * 4 + nbl * 12
    }

    /// Peels band `p` to completion: a full BiT-BU#-style batch peel
    /// restricted to the band's edges, seeded from their entry supports.
    /// Returns `(edge, φ)` pairs for every edge of the band.
    fn peel_band(&mut self, p: u32, ctx: &BandContext<'_>) -> Result<Vec<(u32, u64)>> {
        let stamp = p + 1;
        let members = &ctx.band_edges[p as usize];
        for &e in members {
            self.supp[e as usize] = ctx.start_supp[e as usize];
        }
        let mut queue = BucketQueue::from_members(&self.supp, members);
        let mut pairs: Vec<(u32, u64)> = Vec::with_capacity(members.len());

        while let Some(level) = queue.pop_level(&self.supp, &mut self.batch) {
            checkpoint(ctx.observer)?;
            let done = ctx
                .popped
                .fetch_add(self.batch.len() as u64, Ordering::Relaxed) // Relaxed: advisory progress counter; no memory is published through it
                + self.batch.len() as u64;
            ctx.observer
                .on_phase_progress(Phase::Peeling, done, ctx.total);
            let batch = std::mem::take(&mut self.batch);
            for &e in &batch {
                pairs.push((e.0, level));
            }
            // Phase 1: kill this batch's wedges (pre-filtered to the
            // band's own links), count C(B), settle twins with −(k−1).
            // `k` is the bloom's wedge count at batch start, lazily
            // initialized to the band-start prefix length on the
            // bloom's first touch.
            for &e in &batch {
                for &wraw in ctx.slices.edge_wedges(e) {
                    let w = WedgeId(wraw);
                    if self.killed[w.index()] == stamp {
                        continue;
                    }
                    let b = ctx.index.wedge_bloom(w);
                    if self.k_seen[b.index()] != stamp {
                        self.k_seen[b.index()] = stamp;
                        self.k_local[b.index()] = ctx.slices.live_prefix(b, p).1 as u32;
                    }
                    let k = self.k_local[b.index()] as u64;
                    let twin = ctx.index.wedge_twin(w, e);
                    self.killed[w.index()] = stamp;
                    if self.c[b.index()] == 0 {
                        self.touched_blooms.push(b.0);
                    }
                    self.c[b.index()] += 1;
                    // Only the band's own edges are tracked: higher
                    // bands are frozen context, lower bands are gone.
                    if k >= 2 && ctx.band[twin.index()] == p && self.removed[twin.index()] != stamp
                    {
                        if self.delta[twin.index()] == 0 {
                            self.touched_edges.push(twin.0);
                        }
                        self.delta[twin.index()] += k - 1;
                    }
                }
                self.removed[e.index()] = stamp;
            }
            self.batch = batch;
            // Phase 2: one traversal per touched bloom, −C(B) per
            // surviving tracked member. Only wedges whose min-band is
            // exactly `p` can hold a tracked (band-`p`) edge — wedges
            // further up the band-descending slice are pure frozen
            // context — so the traversal walks just the exact-band tail
            // of the live prefix, skipping the higher-band wedges that
            // dominate low bands' blooms.
            for i in 0..self.touched_blooms.len() {
                let b = BloomId(self.touched_blooms[i]);
                let cb = std::mem::take(&mut self.c[b.index()]) as u64;
                let (s, len) = ctx.slices.live_prefix(b, p);
                let own = s + ctx.slices.bands[s..s + len].partition_point(|&bv| bv > p);
                for &wraw in &ctx.slices.wedges[own..s + len] {
                    let w = WedgeId(wraw);
                    if self.killed[w.index()] == stamp {
                        continue;
                    }
                    let (e1, e2) = ctx.index.wedge_members(w);
                    for other in [e1, e2] {
                        if ctx.band[other.index()] == p && self.removed[other.index()] != stamp {
                            if self.delta[other.index()] == 0 {
                                self.touched_edges.push(other.0);
                            }
                            self.delta[other.index()] += cb;
                        }
                    }
                }
                let k = &mut self.k_local[b.index()];
                *k = k.saturating_sub(cb as u32);
            }
            self.touched_blooms.clear();
            // Phase 3: one merged clamped write per affected edge.
            for i in 0..self.touched_edges.len() {
                let te = self.touched_edges[i];
                let e = te as usize;
                let d = std::mem::take(&mut self.delta[e]);
                if d > 0 && self.removed[e] != stamp && self.supp[e] > level {
                    let old = self.supp[e];
                    let new = level.max(old.saturating_sub(d));
                    self.supp[e] = new;
                    queue.decrease(EdgeId(te), old, new);
                    self.updates += 1;
                }
            }
            self.touched_edges.clear();
        }
        Ok(pairs)
    }
}

/// One band's peel output: the `(edge, φ)` pairs it settled.
type BandPairs = Vec<(u32, u64)>;

/// What one phase-2 worker hands back: its peeled bands (tagged by band
/// index) plus its scratch's support-update count.
type WorkerOutput = Result<(Vec<(u32, BandPairs)>, u64)>;

/// Phase 2 driver: workers pull whole bands (largest estimated work
/// first) off a shared atomic counter and peel them with their own
/// [`BandScratch`]; no synchronization happens inside a band. Returns
/// the per-band `(edge, φ)` fragments, the summed support updates, and
/// the scratch footprint.
fn peel_bands(
    ctx: &BandContext<'_>,
    work: &[u64],
    threads: usize,
) -> Result<(Vec<BandPairs>, u64, usize)> {
    let nb = work.len();
    let m = ctx.band.len();
    let nw = ctx.index.num_wedges() as usize;
    let nbl = ctx.index.num_blooms() as usize;
    let mut order: Vec<u32> = (0..nb as u32).collect();
    order.sort_by_key(|&p| (std::cmp::Reverse(work[p as usize]), p));
    let next = AtomicUsize::new(0);
    let t = threads.max(1).min(nb.max(1));

    let mut per_band: Vec<BandPairs> = vec![Vec::new(); nb];
    let mut updates = 0u64;
    let worker = |scratch: &mut BandScratch| -> Result<Vec<(u32, BandPairs)>> {
        let mut out = Vec::new();
        loop {
            // Relaxed: the counter only hands out disjoint indices; band
            // results travel through the join barrier, not this atomic.
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= order.len() {
                return Ok(out);
            }
            let p = order[i];
            let pairs = scratch.peel_band(p, ctx)?;
            out.push((p, pairs));
        }
    };

    if t <= 1 {
        let mut scratch = BandScratch::new(m, nw, nbl);
        for (p, pairs) in worker(&mut scratch)? {
            per_band[p as usize] = pairs;
        }
        updates += scratch.updates;
    } else {
        let results: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..t)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = BandScratch::new(m, nw, nbl);
                        let out = worker(&mut scratch)?;
                        Ok((out, scratch.updates))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("band worker panicked")) // xtask:allow(no-panic-lib) Err here means a worker panicked; workers are panic-free by this same lint, and propagating a real panic is the correct failure mode
                .collect()
        });
        for r in results {
            let (out, u) = r?;
            for (p, pairs) in out {
                per_band[p as usize] = pairs;
            }
            updates += u;
        }
    }
    Ok((per_band, updates, t * BandScratch::memory_bytes(m, nw, nbl)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::batch::{bit_bu_hybrid, bit_bu_pp};
    use crate::verify::{reference_decomposition, validate_decomposition};

    #[test]
    fn matches_sequential_across_threads_and_bands() {
        for seed in 0..5 {
            let g = datagen::random::uniform(13, 15, 70, seed);
            let (seq, _) = bit_bu_pp(&g);
            for threads in [1, 2, 4, 8] {
                for bands in [1, 2, 3, 16] {
                    let (d, m) = bit_bu_pp_2p_tuned(&g, Threads(threads), bands);
                    assert_eq!(d, seq, "seed {seed} threads {threads} bands {bands}");
                    assert!(m.bands >= 1 && m.bands <= bands.max(1));
                }
            }
        }
    }

    #[test]
    fn matches_reference_on_skewed_graphs() {
        for seed in 0..3 {
            let g = datagen::powerlaw::chung_lu(80, 80, 1_200, 1.9, 1.9, seed);
            let expect = reference_decomposition(&g);
            let (d, _) = bit_bu_pp_2p(&g, Threads(4));
            assert_eq!(d, expect, "seed {seed}");
            validate_decomposition(&g, &d).unwrap();
        }
    }

    #[test]
    fn update_count_is_thread_independent_and_below_hybrid() {
        let g = datagen::powerlaw::chung_lu(90, 90, 1_400, 1.9, 1.9, 8);
        let (d_h, m_h) = bit_bu_hybrid(&g);
        let mut counts = Vec::new();
        for threads in [1, 2, 4, 8] {
            let (d, m) = bit_bu_pp_2p(&g, Threads(threads));
            assert_eq!(d, d_h);
            counts.push(m.support_updates);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        // Untracked cross-band writes are the point of the partition:
        // strictly less write traffic than the aggregated sequential
        // engine on a skewed graph.
        assert!(
            counts[0] < m_h.support_updates,
            "{} >= {}",
            counts[0],
            m_h.support_updates
        );
    }

    #[test]
    fn outcome_respects_band_invariant_with_empty_stitch_log() {
        for seed in 0..4 {
            let g = datagen::powerlaw::chung_lu(60, 60, 700, 2.0, 2.0, seed);
            let (d, _, outcome) =
                bit_bu_pp_2p_with_outcome(&g, Threads(3), 8, &NoopObserver).unwrap();
            assert!(outcome.stitch.migrations.is_empty(), "seed {seed}");
            for e in 0..g.num_edges() as usize {
                let p = outcome.band_of_edge[e];
                assert!(
                    outcome.in_band(p, d.phi[e]),
                    "seed {seed} edge {e}: φ={} outside band {p} {:?}",
                    d.phi[e],
                    outcome.band_range(p)
                );
            }
        }
    }

    #[test]
    fn single_band_and_empty_graph() {
        let g = bigraph::GraphBuilder::new().build().unwrap();
        let (d, _) = bit_bu_pp_2p(&g, Threads(4));
        assert_eq!(d.phi.len(), 0);

        let g = datagen::random::uniform(10, 10, 45, 7);
        let (seq, _) = bit_bu_pp(&g);
        let (one_band, m) = bit_bu_pp_2p_tuned(&g, Threads(2), 1);
        assert_eq!(one_band, seq);
        assert_eq!(m.bands, 1);
    }

    #[test]
    fn band_bounds_are_strictly_ascending_and_below_max() {
        let supports = vec![0u64, 0, 1, 1, 2, 3, 5, 5, 5, 9, 40];
        let bounds = band_bounds(&supports, 4);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        assert!(bounds.iter().all(|&b| b < 40), "{bounds:?}");
        assert!(band_bounds(&supports, 1).is_empty());
        assert!(band_bounds(&[], 8).is_empty());
        assert!(band_bounds(&[7, 7, 7], 8).is_empty());
    }

    #[test]
    fn cancellation_unwinds_from_band_workers() {
        use std::sync::atomic::AtomicU64 as Counter;
        struct CancelAfter {
            polls: Counter,
            after: u64,
        }
        impl EngineObserver for CancelAfter {
            fn is_cancelled(&self) -> bool {
                self.polls.fetch_add(1, Ordering::Relaxed) >= self.after
            }
        }
        let g = datagen::powerlaw::chung_lu(60, 60, 700, 2.0, 2.0, 1);
        // Sweep the cancellation point from "immediately" to "deep in
        // phase 2" — every stop must surface Err(Cancelled).
        let mut cancelled = 0;
        for after in [0, 1, 5, 20, 80, 200] {
            let obs = CancelAfter {
                polls: Counter::new(0),
                after,
            };
            match bit_bu_pp_2p_with_outcome(&g, Threads(4), 8, &obs) {
                Err(bigraph::Error::Cancelled) => cancelled += 1,
                Err(e) => panic!("unexpected error {e}"),
                Ok(_) => {}
            }
        }
        assert!(cancelled >= 4, "only {cancelled} runs cancelled");
    }
}
