//! The bitruss hierarchy index: answer k-bitruss queries without
//! rescanning all edges.
//!
//! The whole point of computing φ for every edge (§II of the paper) is
//! that the nested k-bitruss hierarchy `H_0 ⊇ H_1 ⊇ H_2 ⊇ …` can then be
//! *queried*. [`Decomposition`]'s query methods rescan all `m` edges per
//! call; a [`BitrussHierarchy`] is built once in `O(m α(n) + m log m)`
//! and afterwards answers
//!
//! * [`BitrussHierarchy::k_bitruss_count`] in `O(log L)`,
//! * [`BitrussHierarchy::k_bitruss_edges`] in `O(log L + |answer| log |answer|)`
//!   (the log factor only for returning edges in ascending-id order),
//! * [`BitrussHierarchy::community_of`] and
//!   [`BitrussHierarchy::communities`] output-sensitively — only the
//!   forest nodes and edges of the answer are visited,
//! * [`BitrussHierarchy::max_k`] and [`BitrussHierarchy::level_sizes`] in
//!   `O(1)` / `O(L)`,
//!
//! where `L` is the number of distinct bitruss numbers. Two structures
//! make this work:
//!
//! 1. **a φ-sorted edge permutation** — edge ids ordered by `(φ
//!    descending, id ascending)` with one cumulative count per distinct
//!    level, so `{e : φ(e) ≥ k}` is always a prefix located by binary
//!    search;
//! 2. **a nested community forest** — one node per connected component of
//!    an `H_k` *at the highest level where that component exists in this
//!    shape*. Processing levels from φ_max downward with a union-find,
//!    a new node is created exactly when a component changes (gains
//!    edges, merges with others, or appears); absorbed components become
//!    its children. Each edge is *owned* by the node created at its own
//!    level, so the component of `H_k` containing an edge is the subtree
//!    below the highest ancestor whose level is still `≥ k`, and its
//!    edge set is the union of the owned edges in that subtree.
//!
//! The forest is the in-memory analogue of the tree-shaped community
//! indexes used for output-sensitive community search over cohesion
//! hierarchies; it persists inside [`crate::persist::binary`] snapshots
//! so a query server never rebuilds it.

use std::collections::BTreeMap;

use bigraph::{BipartiteGraph, EdgeId, Error, Result, UnionFind, VertexId};

use crate::decomposition::{Community, Decomposition};
use crate::persist::check_matching;

/// Sentinel for "no node" / "no parent" in the forest arrays.
const NONE: u32 = u32::MAX;

/// Sentinel in `vertex_max_k` for vertices with no incident edge.
const ISOLATED: u64 = u64::MAX;

/// A queryable index over a graph's bitruss decomposition: the φ-sorted
/// edge permutation plus the nested community forest (see the module
/// docs). Built once with [`BitrussHierarchy::new`]; all query methods
/// take `&self`.
///
/// The hierarchy stores edge and vertex *ids* only — pass the graph the
/// decomposition came from to the methods that materialize communities.
///
/// ```
/// use bigraph::GraphBuilder;
/// use bitruss_core::{decompose, Algorithm, BitrussHierarchy};
///
/// let g = GraphBuilder::new()
///     .add_edges([
///         (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
///         (2, 2), (2, 3), (3, 1), (3, 2), (3, 4),
///     ])
///     .build()
///     .unwrap();
/// let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
/// let h = BitrussHierarchy::new(&g, &d).unwrap();
/// assert_eq!(h.max_bitruss(), 2);
/// assert_eq!(h.k_bitruss_count(2), 6);
/// assert_eq!(h.k_bitruss_edges(2), d.k_bitruss_edges(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitrussHierarchy {
    /// Distinct bitruss numbers, ascending.
    pub(crate) levels: Vec<u64>,
    /// `count_ge[i]` = number of edges with `φ ≥ levels[i]`.
    pub(crate) count_ge: Vec<usize>,
    /// Edge ids sorted by `(φ descending, id ascending)`.
    pub(crate) perm: Vec<u32>,
    /// Level of each forest node; non-increasing in node-id order
    /// (nodes are created while sweeping levels downward).
    pub(crate) node_level: Vec<u64>,
    /// Parent of each node ([`NONE`] at roots). Parents have strictly
    /// lower levels and strictly larger node ids than their children.
    pub(crate) node_parent: Vec<u32>,
    /// CSR offsets into [`Self::node_edge_ids`], length `nodes + 1`.
    pub(crate) node_edge_offsets: Vec<usize>,
    /// Edges owned by each node (every edge owned by exactly one node —
    /// the node created at the edge's own φ level).
    pub(crate) node_edge_ids: Vec<u32>,
    /// Owning node of each edge.
    pub(crate) edge_node: Vec<u32>,
    /// Per global vertex id: max φ over incident edges, [`ISOLATED`] for
    /// degree-0 vertices.
    pub(crate) vertex_max_k: Vec<u64>,
    /// CSR child lists, derived from [`Self::node_parent`].
    child_offsets: Vec<usize>,
    children: Vec<u32>,
}

impl BitrussHierarchy {
    /// Builds the hierarchy for `(g, d)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] when `d` does not belong to `g` (φ
    /// array length differs from the edge count).
    pub fn new(g: &BipartiteGraph, d: &Decomposition) -> Result<Self> {
        check_matching(g, d)?;
        let phi = &d.phi;
        let m = phi.len();
        let n = g.num_vertices() as usize;

        let mut perm: Vec<u32> = (0..m as u32).collect();
        perm.sort_unstable_by_key(|&e| (std::cmp::Reverse(phi[e as usize]), e));

        // Distinct levels (ascending) and cumulative ≥-counts from the
        // descending permutation.
        let mut levels: Vec<u64> = Vec::new();
        let mut count_ge: Vec<usize> = Vec::new();
        for (i, &e) in perm.iter().enumerate() {
            let p = phi[e as usize];
            if levels.last() != Some(&p) {
                levels.push(p);
                count_ge.push(i);
            }
        }
        // So far count_ge holds the prefix *start* of each descending
        // level's block; "edges with φ ≥ level" is the start of the next
        // block (m for the smallest level). Flip both to ascending order.
        let mut ge: Vec<usize> = if count_ge.is_empty() {
            Vec::new()
        } else {
            let mut v = count_ge[1..].to_vec();
            v.push(m);
            v
        };
        levels.reverse();
        ge.reverse();
        let count_ge = ge;

        // Nested community forest: sweep levels downward, tracking for
        // each union-find root the most recent node of its component.
        let mut uf = UnionFind::new(n);
        let mut node_of_root: Vec<u32> = vec![NONE; n];
        let mut node_level: Vec<u64> = Vec::new();
        let mut node_parent: Vec<u32> = Vec::new();
        let mut node_edge_offsets: Vec<usize> = vec![0];
        let mut node_edge_ids: Vec<u32> = Vec::with_capacity(m);
        let mut edge_node: Vec<u32> = vec![NONE; m];
        // Generation-stamped scratch: `slot[r]` holds the node created at
        // root `r` during the current level iff `mark[r] == generation`.
        let mut mark: Vec<u32> = vec![0; n];
        let mut slot: Vec<u32> = vec![NONE; n];
        let mut generation: u32 = 0;

        let mut i = 0;
        while i < m {
            let level = phi[perm[i] as usize];
            let mut j = i;
            while j < m && phi[perm[j] as usize] == level {
                j += 1;
            }
            let group = &perm[i..j];
            generation += 1;

            // 1. Components touched by this level's edges become children
            //    of the new nodes — snapshot (node, root) before unions.
            let mut absorbed: Vec<(u32, u32)> = Vec::new();
            for &e in group {
                let (u, v) = g.edge(EdgeId(e));
                for x in [u.0, v.0] {
                    let r = uf.find(x);
                    let nd = node_of_root[r as usize];
                    if nd != NONE {
                        absorbed.push((nd, r));
                    }
                }
            }
            absorbed.sort_unstable();
            absorbed.dedup_by_key(|c| c.0);

            // 2. Merge this level's edges into the union-find.
            for &e in group {
                let (u, v) = g.edge(EdgeId(e));
                uf.union(u.0, v.0);
            }

            // 3. One new node per component that contains a level edge;
            //    edges grouped contiguously per node for the CSR.
            let mut assignment: Vec<(u32, u32)> = Vec::with_capacity(group.len());
            for &e in group {
                let (u, _) = g.edge(EdgeId(e));
                let r = uf.find(u.0) as usize;
                let nd = if mark[r] == generation {
                    slot[r]
                } else {
                    let id = node_level.len() as u32;
                    node_level.push(level);
                    node_parent.push(NONE);
                    mark[r] = generation;
                    slot[r] = id;
                    id
                };
                edge_node[e as usize] = nd;
                assignment.push((nd, e));
            }
            assignment.sort_unstable();
            let mut t = 0;
            while t < assignment.len() {
                let nd = assignment[t].0;
                while t < assignment.len() && assignment[t].0 == nd {
                    node_edge_ids.push(assignment[t].1);
                    t += 1;
                }
                node_edge_offsets.push(node_edge_ids.len());
            }

            // 4. Absorbed components hang below the node now covering
            //    them; 5. that node becomes the component's current node.
            for &(old_node, old_root) in &absorbed {
                let r = uf.find(old_root) as usize;
                debug_assert_eq!(mark[r], generation, "absorbed component got no node");
                node_parent[old_node as usize] = slot[r];
            }
            for &e in group {
                let (u, _) = g.edge(EdgeId(e));
                let r = uf.find(u.0) as usize;
                node_of_root[r] = slot[r];
            }
            i = j;
        }

        let mut vertex_max_k = vec![ISOLATED; n];
        for (e, &p) in phi.iter().enumerate() {
            let (u, v) = g.edge(EdgeId(e as u32));
            for x in [u.index(), v.index()] {
                if vertex_max_k[x] == ISOLATED || vertex_max_k[x] < p {
                    vertex_max_k[x] = p;
                }
            }
        }

        let (child_offsets, children) = derive_children(&node_parent);
        Ok(Self {
            levels,
            count_ge,
            perm,
            node_level,
            node_parent,
            node_edge_offsets,
            node_edge_ids,
            edge_node,
            vertex_max_k,
            child_offsets,
            children,
        })
    }

    /// Reassembles a hierarchy from its persisted arrays, validating
    /// every structural invariant so corrupt snapshots surface as
    /// [`Error::Corrupt`] instead of panics. `m`/`n` are the edge and
    /// vertex counts of the graph the hierarchy claims to describe.
    #[allow(clippy::too_many_arguments)] // one argument per persisted section
    pub(crate) fn from_parts(
        m: usize,
        n: usize,
        levels: Vec<u64>,
        count_ge: Vec<usize>,
        perm: Vec<u32>,
        node_level: Vec<u64>,
        node_parent: Vec<u32>,
        node_edge_offsets: Vec<usize>,
        node_edge_ids: Vec<u32>,
        edge_node: Vec<u32>,
        vertex_max_k: Vec<u64>,
    ) -> Result<Self> {
        let corrupt = |msg: String| Err(Error::Corrupt(msg));
        let nodes = node_level.len();
        if perm.len() != m || node_edge_ids.len() != m || edge_node.len() != m {
            return corrupt(format!(
                "hierarchy edge arrays disagree with the graph's {m} edges"
            ));
        }
        if vertex_max_k.len() != n {
            return corrupt(format!(
                "hierarchy has {} vertex entries for {n} vertices",
                vertex_max_k.len()
            ));
        }
        if levels.len() != count_ge.len() {
            return corrupt("level and count arrays differ in length".into());
        }
        if !levels.windows(2).all(|w| w[0] < w[1]) {
            return corrupt("levels are not strictly ascending".into());
        }
        if !count_ge.windows(2).all(|w| w[0] > w[1]) || count_ge.first().is_some_and(|&c| c != m) {
            return corrupt("per-level counts are not a strict suffix-count chain".into());
        }
        if (m > 0) == levels.is_empty() {
            return corrupt("level list inconsistent with edge count".into());
        }
        if node_parent.len() != nodes {
            return corrupt("node arrays differ in length".into());
        }
        if node_edge_offsets.len() != nodes + 1
            || node_edge_offsets.first() != Some(&0)
            || node_edge_offsets.last() != Some(&m)
            || !node_edge_offsets.windows(2).all(|w| w[0] < w[1])
        {
            // Strictly increasing: every node owns at least one edge.
            return corrupt("node→edge offsets are not a valid CSR over the edges".into());
        }
        if !node_level.windows(2).all(|w| w[0] >= w[1]) {
            return corrupt("node levels are not non-increasing".into());
        }
        for (i, &p) in node_parent.iter().enumerate() {
            if p == NONE {
                continue;
            }
            let p = p as usize;
            if p >= nodes || p <= i || node_level[p] >= node_level[i] {
                return corrupt(format!("node {i} has an impossible parent"));
            }
        }
        for (nd, w) in node_edge_offsets.windows(2).enumerate() {
            for &e in &node_edge_ids[w[0]..w[1]] {
                if e as usize >= m || edge_node[e as usize] != nd as u32 {
                    return corrupt(format!("node {nd} owns edges it is not mapped to"));
                }
            }
        }
        let mut seen = vec![false; m];
        for &e in &perm {
            if e as usize >= m || std::mem::replace(&mut seen[e as usize], true) {
                return corrupt("edge permutation is not a permutation".into());
            }
        }
        let (child_offsets, children) = derive_children(&node_parent);
        Ok(Self {
            levels,
            count_ge,
            perm,
            node_level,
            node_parent,
            node_edge_offsets,
            node_edge_ids,
            edge_node,
            vertex_max_k,
            child_offsets,
            children,
        })
    }

    /// Checks the hierarchy against the graph and φ array it claims to
    /// index: the permutation order, the per-level counts, every edge's
    /// owning node level, and every vertex's max-k must all be derivable
    /// from them. Used when loading snapshots so a valid load
    /// *guarantees* query answers agree with the decomposition.
    pub(crate) fn validate_against_phi(&self, g: &BipartiteGraph, phi: &[u64]) -> Result<()> {
        let corrupt = |msg: &str| Err(Error::Corrupt(msg.into()));
        if phi.len() != self.perm.len() {
            return corrupt("hierarchy and φ array disagree on the edge count");
        }
        let mut derived_levels: Vec<u64> = Vec::new();
        let mut starts: Vec<usize> = Vec::new();
        for (i, w) in self.perm.windows(2).enumerate() {
            let (a, b) = (phi[w[0] as usize], phi[w[1] as usize]);
            if a < b || (a == b && w[0] >= w[1]) {
                return corrupt("edge permutation is not sorted by (φ desc, id asc)");
            }
            if a > b {
                derived_levels.push(a);
                starts.push(i + 1);
            }
        }
        if let Some(&last) = self.perm.last() {
            derived_levels.push(phi[last as usize]);
            starts.push(self.perm.len());
        }
        derived_levels.reverse();
        starts.reverse();
        if derived_levels != self.levels || starts != self.count_ge {
            return corrupt("per-level counts do not match the φ array");
        }
        for (e, &nd) in self.edge_node.iter().enumerate() {
            if nd == NONE || self.node_level[nd as usize] != phi[e] {
                return corrupt("an edge's owning node sits at the wrong level");
            }
        }
        let mut expect = vec![ISOLATED; self.vertex_max_k.len()];
        for (e, &p) in phi.iter().enumerate() {
            let (u, v) = g.edge(EdgeId(e as u32));
            for x in [u.index(), v.index()] {
                if expect[x] == ISOLATED || expect[x] < p {
                    expect[x] = p;
                }
            }
        }
        if expect != self.vertex_max_k {
            return corrupt("per-vertex max-k values do not match the φ array");
        }
        Ok(())
    }

    /// Number of edges the hierarchy indexes.
    pub fn num_edges(&self) -> usize {
        self.perm.len()
    }

    /// Number of nodes in the nested community forest.
    pub fn num_forest_nodes(&self) -> usize {
        self.node_level.len()
    }

    /// The bitruss number of one edge (level of its owning forest node).
    #[inline]
    pub fn phi_of(&self, e: EdgeId) -> u64 {
        self.node_level[self.edge_node[e.index()] as usize]
    }

    /// The largest bitruss number present. 0 for an edgeless graph.
    pub fn max_bitruss(&self) -> u64 {
        self.levels.last().copied().unwrap_or(0)
    }

    /// The distinct bitruss numbers present, ascending.
    pub fn levels(&self) -> &[u64] {
        &self.levels
    }

    /// Number of edges per bitruss number, ascending by `k` — identical
    /// to [`Decomposition::level_sizes`], in `O(L)` instead of `O(m)`.
    pub fn level_sizes(&self) -> BTreeMap<u64, usize> {
        (0..self.levels.len())
            .map(|i| {
                let above = self.count_ge.get(i + 1).copied().unwrap_or(0);
                (self.levels[i], self.count_ge[i] - above)
            })
            .collect()
    }

    /// Number of edges of the k-bitruss `H_k = {e : φ(e) ≥ k}`, in
    /// `O(log L)`.
    pub fn k_bitruss_count(&self, k: u64) -> usize {
        let idx = self.levels.partition_point(|&l| l < k);
        if idx == self.levels.len() {
            0
        } else {
            self.count_ge[idx]
        }
    }

    /// Edge ids of the k-bitruss, ascending — identical to
    /// [`Decomposition::k_bitruss_edges`], but only the answer prefix of
    /// the φ-sorted permutation is touched (the sort restores ascending
    /// id order, so the call is `O(log L + |answer| log |answer|)`).
    pub fn k_bitruss_edges(&self, k: u64) -> Vec<EdgeId> {
        let cnt = self.k_bitruss_count(k);
        let mut out: Vec<EdgeId> = self.perm[..cnt].iter().map(|&e| EdgeId(e)).collect();
        out.sort_unstable();
        out
    }

    /// The largest `k` such that `v` has an edge in the k-bitruss, or
    /// `None` for isolated vertices. `O(1)`.
    pub fn max_k(&self, v: VertexId) -> Option<u64> {
        match self.vertex_max_k.get(v.index()) {
            Some(&ISOLATED) | None => None,
            Some(&k) => Some(k),
        }
    }

    /// The connected component of the k-bitruss containing `e`, or
    /// `None` when `φ(e) < k` (or `e` is out of range). Output-sensitive:
    /// walks up the forest to the shallowest ancestor still at level
    /// `≥ k` and collects its subtree. The returned [`Community`] is
    /// identical to the one [`Decomposition::communities`] would list.
    pub fn community_of(&self, g: &BipartiteGraph, e: EdgeId, k: u64) -> Option<Community> {
        if e.index() >= self.edge_node.len() || self.phi_of(e) < k {
            return None;
        }
        let mut nd = self.edge_node[e.index()];
        loop {
            let p = self.node_parent[nd as usize];
            if p == NONE || self.node_level[p as usize] < k {
                break;
            }
            nd = p;
        }
        Some(self.collect_community(g, nd))
    }

    /// All connected communities of the k-bitruss, largest first —
    /// the same list as [`Decomposition::communities`] (tie order among
    /// equal-sized communities is unspecified in both). Output-sensitive:
    /// nodes at level `≥ k` form a prefix of the forest, so only
    /// `O(|H_k|)` work is done.
    pub fn communities(&self, g: &BipartiteGraph, k: u64) -> Vec<Community> {
        let end = self.node_level.partition_point(|&l| l >= k);
        let mut out: Vec<Community> = (0..end)
            .filter(|&nd| {
                let p = self.node_parent[nd];
                p == NONE || self.node_level[p as usize] < k
            })
            .map(|nd| self.collect_community(g, nd as u32))
            .collect();
        out.sort_by_key(|c| std::cmp::Reverse(c.edges.len()));
        out
    }

    /// Materializes the community rooted at forest node `root`: all owned
    /// edges of the subtree, plus their endpoint vertices.
    fn collect_community(&self, g: &BipartiteGraph, root: u32) -> Community {
        let mut edges: Vec<EdgeId> = Vec::new();
        let mut stack = vec![root];
        while let Some(nd) = stack.pop() {
            let nd = nd as usize;
            let range = self.node_edge_offsets[nd]..self.node_edge_offsets[nd + 1];
            edges.extend(self.node_edge_ids[range].iter().map(|&e| EdgeId(e)));
            let kids = self.child_offsets[nd]..self.child_offsets[nd + 1];
            stack.extend_from_slice(&self.children[kids]);
        }
        edges.sort_unstable();
        let mut vertices: Vec<VertexId> = Vec::with_capacity(edges.len() * 2);
        for &e in &edges {
            let (u, v) = g.edge(e);
            vertices.push(u);
            vertices.push(v);
        }
        vertices.sort_unstable();
        vertices.dedup();
        Community { vertices, edges }
    }

    /// Approximate heap footprint of the hierarchy in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.levels.len() * 8
            + self.count_ge.len() * 8
            + self.perm.len() * 4
            + self.node_level.len() * 8
            + self.node_parent.len() * 4
            + self.node_edge_offsets.len() * 8
            + self.node_edge_ids.len() * 4
            + self.edge_node.len() * 4
            + self.vertex_max_k.len() * 8
            + self.child_offsets.len() * 8
            + self.children.len() * 4
    }
}

/// Builds CSR child lists from the parent array.
fn derive_children(node_parent: &[u32]) -> (Vec<usize>, Vec<u32>) {
    let nodes = node_parent.len();
    let mut offsets = vec![0usize; nodes + 1];
    for &p in node_parent {
        if p != NONE {
            offsets[p as usize + 1] += 1;
        }
    }
    for i in 0..nodes {
        offsets[i + 1] += offsets[i];
    }
    let mut children = vec![0u32; offsets[nodes]];
    let mut cursor = offsets.clone();
    for (c, &p) in node_parent.iter().enumerate() {
        if p != NONE {
            children[cursor[p as usize]] = c as u32;
            cursor[p as usize] += 1;
        }
    }
    (offsets, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{decompose, Algorithm};
    use bigraph::GraphBuilder;

    /// Figure 1/4 fixture with known bitruss numbers 2,2,2,2,2,2,1,0,1,1,0.
    fn fig1() -> (BipartiteGraph, Decomposition) {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap();
        let phi = vec![2, 2, 2, 2, 2, 2, 1, 0, 1, 1, 0];
        (g, Decomposition::new(phi))
    }

    #[test]
    fn prefix_queries_match_the_decomposition() {
        let (g, d) = fig1();
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        assert_eq!(h.max_bitruss(), 2);
        assert_eq!(h.levels(), &[0, 1, 2]);
        assert_eq!(h.level_sizes(), d.level_sizes());
        for k in 0..=3 {
            assert_eq!(h.k_bitruss_count(k), d.k_bitruss_edges(k).len(), "k={k}");
            assert_eq!(h.k_bitruss_edges(k), d.k_bitruss_edges(k), "k={k}");
        }
        for e in g.edges() {
            assert_eq!(h.phi_of(e), d.bitruss_number(e));
        }
    }

    #[test]
    fn forest_communities_match_the_decomposition() {
        let (g, d) = fig1();
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        for k in 0..=2 {
            let want = d.communities(&g, k);
            let got = h.communities(&g, k);
            assert_eq!(got.len(), want.len(), "k={k}");
            // Same multiset of communities (tie order may differ).
            let canon = |mut cs: Vec<Community>| {
                cs.sort_by_key(|c| c.edges[0]);
                cs
            };
            assert_eq!(canon(got), canon(want), "k={k}");
            for e in g.edges() {
                let direct = h.community_of(&g, e, k);
                let scanned = d
                    .communities(&g, k)
                    .into_iter()
                    .find(|c| c.edges.contains(&e));
                assert_eq!(direct, scanned, "k={k} e={e}");
            }
        }
    }

    #[test]
    fn max_k_and_isolated_vertices() {
        let g = GraphBuilder::new()
            .with_upper(3)
            .with_lower(3)
            .add_edges([(0, 0), (0, 1), (1, 0), (1, 1)])
            .build()
            .unwrap();
        let (d, _) = decompose(&g, Algorithm::BuPlusPlus);
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        assert_eq!(h.max_k(g.upper(0)), Some(1));
        assert_eq!(h.max_k(g.lower(1)), Some(1));
        assert_eq!(h.max_k(g.upper(2)), None);
        assert_eq!(h.max_k(g.lower(2)), None);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        let h = BitrussHierarchy::new(&g, &Decomposition::new(vec![])).unwrap();
        assert_eq!(h.max_bitruss(), 0);
        assert_eq!(h.k_bitruss_count(0), 0);
        assert!(h.k_bitruss_edges(0).is_empty());
        assert!(h.communities(&g, 0).is_empty());
        assert_eq!(h.num_forest_nodes(), 0);
    }

    #[test]
    fn mismatched_decomposition_is_rejected() {
        let g = GraphBuilder::new().add_edge(0, 0).build().unwrap();
        let err = BitrussHierarchy::new(&g, &Decomposition::new(vec![0, 1])).unwrap_err();
        assert!(matches!(err, Error::Invariant(_)));
    }

    #[test]
    fn forest_shape_on_the_fixture() {
        let (g, d) = fig1();
        let h = BitrussHierarchy::new(&g, &d).unwrap();
        // Level 2 forms one component, level 1 absorbs it (one node),
        // level 0 has two separate additions: (2,3) attaches to the big
        // component and (3,4) attaches too (via u3) — still one comp.
        assert_eq!(h.node_level.first(), Some(&2));
        assert_eq!(h.node_level.last(), Some(&0));
        // Every edge owned by a node at its own level.
        for e in g.edges() {
            assert_eq!(
                h.node_level[h.edge_node[e.index()] as usize],
                d.phi[e.index()]
            );
        }
        // Exactly one root (the whole graph is connected at k=0).
        let roots = h.node_parent.iter().filter(|&&p| p == NONE).count();
        assert_eq!(roots, 1);
    }
}
