//! Localized butterfly access: enumerate or count the butterflies
//! through *individual* edges without a global counting pass.
//!
//! The global [`count_per_edge`](crate::count_per_edge) pass is the right
//! tool when every support is needed; dynamic maintenance needs the
//! *delta* view instead — the supports of a handful of inserted edges,
//! or the butterfly neighbourhood of an affected edge — at a cost
//! proportional to that edge's own butterfly count, not the graph's.
//! For an edge `(u, v)` the enumeration merges the id-sorted adjacency
//! lists `N(u) ∩ N(w)` for every `w ∈ N(v) \ {u}`, i.e.
//! `O(Σ_{w ∈ N(v)} (d(u) + d(w)))` time.

use bigraph::{BipartiteGraph, EdgeId};

/// Calls `visit(e_ux, e_vw, e_wx)` once for every butterfly of `g`
/// containing edge `e = (u, v)` — the three *other* member edges, where
/// `x ∈ N(u)` and `w ∈ N(v)` close the rectangle `[u, v, w, x]`.
///
/// Every butterfly through `e` is visited exactly once.
pub fn for_each_butterfly_through<F: FnMut(EdgeId, EdgeId, EdgeId)>(
    g: &BipartiteGraph,
    e: EdgeId,
    mut visit: F,
) {
    for_each_butterfly_through_while(g, e, |a, b, c| {
        visit(a, b, c);
        true
    });
}

/// [`for_each_butterfly_through`] with early exit: enumeration stops as
/// soon as `visit` returns `false`. Returns `false` iff the visitor
/// stopped the enumeration. Maintenance uses this for threshold checks
/// ("does `e` still have ≥ k qualifying butterflies?") that would
/// otherwise pay for a hub edge's full butterfly count.
pub fn for_each_butterfly_through_while<F: FnMut(EdgeId, EdgeId, EdgeId) -> bool>(
    g: &BipartiteGraph,
    e: EdgeId,
    visit: F,
) -> bool {
    for_each_butterfly_through_metered(g, e, visit).0
}

/// [`for_each_butterfly_through_while`] that also reports the scan work
/// performed, in list-probe units (merge steps and binary-search
/// probes). Maintenance layers charge this against their work budgets —
/// a hub edge's adjacency can be scanned at length even when few
/// butterflies come out, and that cost must not be invisible.
pub fn for_each_butterfly_through_metered<F: FnMut(EdgeId, EdgeId, EdgeId) -> bool>(
    g: &BipartiteGraph,
    e: EdgeId,
    mut visit: F,
) -> (bool, u64) {
    let mut work = 0u64;
    let (u, v) = g.edge(e);
    let (na, ea) = (g.neighbor_slice(u), g.neighbor_edge_slice(u));
    for (w, e_vw) in g.neighbors(v) {
        work += 1;
        if w == u {
            continue;
        }
        let (nb, eb) = (g.neighbor_slice(w), g.neighbor_edge_slice(w));
        // Heavily skewed lists (one endpoint is a hub): probe the
        // smaller list into the larger by binary search instead of
        // paying the hub's full degree per wedge.
        let skewed = na.len().min(nb.len()) * 32 < na.len().max(nb.len());
        if skewed {
            let (ns, es, nl, el, small_is_u) = if na.len() <= nb.len() {
                (na, ea, nb, eb, true)
            } else {
                (nb, eb, na, ea, false)
            };
            // Binary probes are cache-unfriendly; weight them ×4 so a
            // unit of reported work is roughly one merge step.
            work += 4 * (ns.len() as u64) * (usize::BITS - nl.len().leading_zeros()) as u64;
            for (i, &x) in ns.iter().enumerate() {
                if x == v.0 {
                    continue;
                }
                if let Ok(j) = nl.binary_search(&x) {
                    let (e_ux, e_wx) = if small_is_u {
                        (EdgeId(es[i]), EdgeId(el[j]))
                    } else {
                        (EdgeId(el[j]), EdgeId(es[i]))
                    };
                    if !visit(e_ux, e_vw, e_wx) {
                        return (false, work);
                    }
                }
            }
        } else {
            let (mut i, mut j) = (0, 0);
            while i < na.len() && j < nb.len() {
                work += 1;
                match na[i].cmp(&nb[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if na[i] != v.0 && !visit(EdgeId(ea[i]), e_vw, EdgeId(eb[j])) {
                            return (false, work);
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    (true, work)
}

/// The butterfly support of one edge, counted locally (the number of
/// rectangles through `e`). Matches the per-edge entry of a global
/// counting pass on the same graph.
pub fn count_through_edge(g: &BipartiteGraph, e: EdgeId) -> u64 {
    count_through_edge_metered(g, e).0
}

/// [`count_through_edge`] that also reports the scan work performed
/// (see [`for_each_butterfly_through_metered`]).
pub fn count_through_edge_metered(g: &BipartiteGraph, e: EdgeId) -> (u64, u64) {
    let mut total = 0u64;
    let (_, work) = for_each_butterfly_through_metered(g, e, |_, _, _| {
        total += 1;
        true
    });
    (total, work)
}

/// Delta support counting: the butterfly supports of a *subset* of
/// edges (typically a batch of inserted edges), each counted locally.
/// Equivalent to indexing a global per-edge count at `edges`, at
/// `O(Σ_{e ∈ edges} Σ_{w ∈ N(v_e)} (d(u_e) + d(w)))` cost — independent
/// of the graph's total butterfly count.
pub fn count_for_edges(g: &BipartiteGraph, edges: &[EdgeId]) -> Vec<u64> {
    edges.iter().map(|&e| count_through_edge(g, e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_per_edge;
    use bigraph::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn local_counts_match_the_global_pass() {
        for g in [
            fig1(),
            GraphBuilder::new()
                .add_edges((0..4).flat_map(|u| (0..4).map(move |v| (u, v))))
                .build()
                .unwrap(),
        ] {
            let global = count_per_edge(&g);
            for e in g.edges() {
                assert_eq!(count_through_edge(&g, e), global.per_edge[e.index()], "{e}");
            }
            let all: Vec<EdgeId> = g.edges().collect();
            assert_eq!(count_for_edges(&g, &all), global.per_edge);
        }
    }

    #[test]
    fn enumeration_visits_each_butterfly_once_with_valid_members() {
        let g = fig1();
        for e in g.edges() {
            let mut seen: Vec<[u32; 4]> = Vec::new();
            for_each_butterfly_through(&g, e, |a, b, c| {
                // The four edges form a rectangle: 2 upper, 2 lower
                // endpoints, every combination present.
                let mut quad = [e, a, b, c];
                quad.sort_unstable();
                let mut uppers: Vec<u32> = quad.iter().map(|&x| g.edge(x).0 .0).collect();
                let mut lowers: Vec<u32> = quad.iter().map(|&x| g.edge(x).1 .0).collect();
                uppers.sort_unstable();
                uppers.dedup();
                lowers.sort_unstable();
                lowers.dedup();
                assert_eq!((uppers.len(), lowers.len()), (2, 2));
                seen.push([quad[0].0, quad[1].0, quad[2].0, quad[3].0]);
            });
            let before = seen.len() as u64;
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len() as u64, before, "duplicate butterfly via {e}");
            assert_eq!(before, count_through_edge(&g, e));
        }
    }

    #[test]
    fn early_exit_stops_the_enumeration() {
        let g = GraphBuilder::new()
            .add_edges((0..4).flat_map(|u| (0..4).map(move |v| (u, v))))
            .build()
            .unwrap();
        let e = g.edges().next().unwrap();
        let total = count_through_edge(&g, e);
        assert!(total > 3);
        let mut seen = 0u64;
        let finished = for_each_butterfly_through_while(&g, e, |_, _, _| {
            seen += 1;
            seen < 3
        });
        assert!(!finished);
        assert_eq!(seen, 3);
        let mut all = 0u64;
        assert!(for_each_butterfly_through_while(&g, e, |_, _, _| {
            all += 1;
            true
        }));
        assert_eq!(all, total);
    }

    #[test]
    fn butterfly_free_edges_count_zero() {
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 2)])
            .build()
            .unwrap();
        for e in g.edges() {
            assert_eq!(count_through_edge(&g, e), 0);
            for_each_butterfly_through(&g, e, |_, _, _| panic!("no butterflies exist"));
        }
    }
}
