//! Backend-generic butterfly kernels over [`NeighborAccess`].
//!
//! [`count_per_edge_access`] is the reference counting kernel
//! ([`count_per_edge`](crate::count_per_edge)) re-expressed against the
//! [`NeighborAccess`] loader contract, so the *same* arithmetic runs
//! over the in-memory CSR or over the compressed, disk-paged adjacency
//! of the out-of-core storage tier. The wedge enumeration order, the
//! bloom tally order, and every addition into the support array are
//! identical to the slice kernel — the two produce bit-identical
//! [`ButterflyCounts`] on any graph (pinned by tests here and by
//! proptests in the storage tier).
//!
//! The only structural difference is mechanical: the early-`break` on
//! neighbor priority becomes the loader's `cap` argument (the lists
//! are priority-sorted, so "scan until priority ≥ p(u)" and "load the
//! prefix with priority < p(u)" touch exactly the same entries), and
//! the kernel reads its own buffers instead of borrowed slices.

use crate::support::{choose2, ButterflyCounts};
use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase, CHECK_INTERVAL};
use bigraph::{NeighborAccess, Result, VertexId};

/// [`count_per_edge`](crate::count_per_edge) over any
/// [`NeighborAccess`] backend. Bit-identical to the slice kernel.
///
/// # Errors
///
/// Propagates loader failures ([`bigraph::Error::Io`] /
/// [`bigraph::Error::Corrupt`] from disk-backed backends); the
/// in-memory backend is infallible.
pub fn count_per_edge_access<N: NeighborAccess + ?Sized>(g: &N) -> Result<ButterflyCounts> {
    count_per_edge_access_observed(g, &NoopObserver)
}

/// [`count_per_edge_access`] with an [`EngineObserver`]: reports phase
/// start, coarse per-vertex progress, and polls for cancellation every
/// [`CHECK_INTERVAL`] start vertices — the same cadence as the slice
/// kernel.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation, or a loader failure from the backend; the partial
/// counts are discarded.
pub fn count_per_edge_access_observed<N: NeighborAccess + ?Sized>(
    g: &N,
    observer: &dyn EngineObserver,
) -> Result<ButterflyCounts> {
    let n = g.num_vertices() as usize;
    let m = g.num_edges() as usize;
    observer.on_phase_start(Phase::Counting, n as u64);
    checkpoint(observer)?;
    let mut per_edge = vec![0u64; m];
    let mut total = 0u64;

    // Scratch: wedge counts per end-vertex, reset via `touched`.
    let mut count = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut wedges: Vec<(u32, u32, u32)> = Vec::new(); // (w, e_uv, e_vw)

    // Loader buffers for the two scan levels.
    let mut vs: Vec<u32> = Vec::new();
    let mut ves: Vec<u32> = Vec::new();
    let mut ws: Vec<u32> = Vec::new();
    let mut wes: Vec<u32> = Vec::new();

    for ui in 0..n as u32 {
        let u = VertexId(ui);
        if (ui as u64).is_multiple_of(CHECK_INTERVAL) && ui > 0 {
            checkpoint(observer)?;
            observer.on_phase_progress(Phase::Counting, ui as u64, n as u64);
        }
        let pu = g.priority(u);
        touched.clear();
        wedges.clear();

        // Priority-obeyed wedges (u, v, w): both loads return exactly
        // the prefix the slice kernel's break-scan would visit.
        g.load_pri_neighbors_below(u, pu, &mut vs, &mut ves)?;
        for i in 0..vs.len() {
            let (v, e_uv) = (vs[i], ves[i]);
            g.load_pri_neighbors_below(VertexId(v), pu, &mut ws, &mut wes)?;
            for (&w, &e_vw) in ws.iter().zip(&wes) {
                if count[w as usize] == 0 {
                    touched.push(w);
                }
                count[w as usize] += 1;
                wedges.push((w, e_uv, e_vw));
            }
        }

        // Each bloom (u, w) with c wedges holds C(c,2) butterflies and
        // gives every member edge c−1 supports.
        for &(w, e1, e2) in &wedges {
            let c = count[w as usize] as u64;
            if c >= 2 {
                per_edge[e1 as usize] += c - 1;
                per_edge[e2 as usize] += c - 1;
            }
        }
        for &w in &touched {
            total += choose2(count[w as usize] as u64);
            count[w as usize] = 0;
        }
    }

    observer.on_phase_end(Phase::Counting);
    Ok(ButterflyCounts { per_edge, total })
}

/// Intersects two ascending id-sorted lists into `out` (cleared
/// first), in ascending order. Uses a linear merge for balanced lists
/// and gallops the smaller list through the larger when heavily skewed
/// — the branch choice never changes the output, only the probe count.
pub fn intersect_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.len() * 32 < l.len() {
        // Galloping: for each small element, exponential search forward
        // in the large list from the previous cut, then binary search
        // the bracketed range. Adjacency lists are strictly ascending,
        // so the bracket `l[lo + bound] ≥ x` always contains `x`'s
        // position.
        let mut lo = 0usize;
        for &x in s {
            if lo >= l.len() {
                break;
            }
            let mut bound = 1usize;
            while lo + bound < l.len() && l[lo + bound] < x {
                bound *= 2;
            }
            let hi = (lo + bound + 1).min(l.len());
            match l[lo..hi].binary_search(&x) {
                Ok(i) => {
                    out.push(x);
                    lo += i + 1;
                }
                Err(i) => lo += i,
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < s.len() && j < l.len() {
            match s[i].cmp(&l[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(s[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// The common neighbors of `a` and `b` under any [`NeighborAccess`]
/// backend, ascending by id — the sorted-list intersection every
/// backend must agree on.
///
/// # Errors
///
/// Propagates loader failures from disk-backed backends.
pub fn common_neighbors<N: NeighborAccess + ?Sized>(
    g: &N,
    a: VertexId,
    b: VertexId,
) -> Result<Vec<u32>> {
    let mut na = Vec::new();
    let mut ea = Vec::new();
    let mut nb = Vec::new();
    let mut eb = Vec::new();
    g.load_neighbors_by_id(a, &mut na, &mut ea)?;
    g.load_neighbors_by_id(b, &mut nb, &mut eb)?;
    let mut out = Vec::new();
    intersect_sorted(&na, &nb, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_per_edge;
    use bigraph::{BipartiteGraph, GraphBuilder};

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
                (2, 3),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn generic_kernel_matches_slice_kernel_on_fig1() {
        let g = fig1();
        assert_eq!(count_per_edge_access(&g).unwrap(), count_per_edge(&g));
    }

    #[test]
    fn generic_kernel_matches_on_bicliques_and_stars() {
        for (a, b) in [(2u32, 2u32), (3, 4), (5, 5), (1, 50)] {
            let mut builder = GraphBuilder::new();
            for u in 0..a {
                for v in 0..b {
                    builder.push_edge(u, v);
                }
            }
            let g = builder.build().unwrap();
            assert_eq!(
                count_per_edge_access(&g).unwrap(),
                count_per_edge(&g),
                "K_{a},{b}"
            );
        }
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(count_per_edge_access(&g).unwrap(), count_per_edge(&g));
    }

    #[test]
    fn intersect_sorted_matches_naive_on_skew() {
        let naive = |a: &[u32], b: &[u32]| -> Vec<u32> {
            a.iter().copied().filter(|x| b.contains(x)).collect()
        };
        let cases: &[(Vec<u32>, Vec<u32>)] = &[
            (vec![], vec![]),
            (vec![1, 3, 5], vec![]),
            (vec![1, 2, 3], vec![2, 3, 4]),
            (vec![5], (0..500).collect()),
            (vec![0, 499], (0..500).collect()),
            ((0..500).step_by(7).collect(), (0..500).step_by(3).collect()),
            (vec![100, 200, 300], (0..1000).collect()),
        ];
        let mut out = Vec::new();
        for (a, b) in cases {
            intersect_sorted(a, b, &mut out);
            assert_eq!(out, naive(a, b), "a={a:?}");
            intersect_sorted(b, a, &mut out);
            assert_eq!(out, naive(a, b), "swapped a={a:?}");
        }
    }

    #[test]
    fn common_neighbors_matches_slices() {
        let g = fig1();
        for a in g.upper_vertices() {
            for b in g.upper_vertices() {
                let want: Vec<u32> = g
                    .neighbor_slice(a)
                    .iter()
                    .copied()
                    .filter(|x| g.neighbor_slice(b).contains(x))
                    .collect();
                assert_eq!(common_neighbors(&g, a, b).unwrap(), want);
            }
        }
    }
}
