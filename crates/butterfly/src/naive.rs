//! Brute-force butterfly oracles for testing.
//!
//! These are intentionally simple quadratic algorithms whose correctness is
//! evident by inspection; every fast path in the suite is validated against
//! them on small graphs.

use bigraph::{BipartiteGraph, EdgeId, VertexId};

use crate::support::{choose2, ButterflyCounts};

/// A butterfly listed by the brute-force enumerator: upper vertices
/// `u1 < u2`, lower vertices `v1 < v2`, plus its four edge ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Butterfly {
    /// Smaller upper vertex.
    pub u1: VertexId,
    /// Larger upper vertex.
    pub u2: VertexId,
    /// Smaller lower vertex.
    pub v1: VertexId,
    /// Larger lower vertex.
    pub v2: VertexId,
    /// The four edges `(u1,v1), (u1,v2), (u2,v1), (u2,v2)` in that order.
    pub edges: [EdgeId; 4],
}

/// Enumerates every butterfly exactly once. Quadratic in the upper layer —
/// use only on test-sized graphs.
pub fn enumerate_butterflies(g: &BipartiteGraph) -> Vec<Butterfly> {
    let mut result = Vec::new();
    let uppers: Vec<VertexId> = g.upper_vertices().collect();
    let mut common: Vec<VertexId> = Vec::new();
    for (i, &u1) in uppers.iter().enumerate() {
        for &u2 in &uppers[i + 1..] {
            // Sorted-merge intersection of the two id-sorted lists.
            common.clear();
            let a = g.neighbor_slice(u1);
            let b = g.neighbor_slice(u2);
            let (mut x, mut y) = (0usize, 0usize);
            while x < a.len() && y < b.len() {
                match a[x].cmp(&b[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        common.push(VertexId(a[x]));
                        x += 1;
                        y += 1;
                    }
                }
            }
            for (j, &v1) in common.iter().enumerate() {
                for &v2 in &common[j + 1..] {
                    // The four lookups cannot miss: v1 and v2 are in
                    // `common`, the intersection of u1's and u2's
                    // neighborhoods, so all four edges exist.
                    let edges = [
                        g.edge_between(u1, v1).unwrap(), // xtask:allow(no-panic-lib) v1 ∈ common ⊆ N(u1)
                        g.edge_between(u1, v2).unwrap(), // xtask:allow(no-panic-lib) v2 ∈ common ⊆ N(u1)
                        g.edge_between(u2, v1).unwrap(), // xtask:allow(no-panic-lib) v1 ∈ common ⊆ N(u2)
                        g.edge_between(u2, v2).unwrap(), // xtask:allow(no-panic-lib) v2 ∈ common ⊆ N(u2)
                    ];
                    result.push(Butterfly {
                        u1,
                        u2,
                        v1,
                        v2,
                        edges,
                    });
                }
            }
        }
    }
    result
}

/// Brute-force per-edge support counting by full butterfly enumeration.
pub fn count_naive(g: &BipartiteGraph) -> ButterflyCounts {
    let mut per_edge = vec![0u64; g.num_edges() as usize];
    let butterflies = enumerate_butterflies(g);
    for b in &butterflies {
        for e in b.edges {
            per_edge[e.index()] += 1;
        }
    }
    ButterflyCounts {
        per_edge,
        total: butterflies.len() as u64,
    }
}

/// Brute-force count of butterflies containing one given edge, by checking
/// all `(x ∈ N(u), w ∈ N(v))` pairs — the method of ref.\[9\].
pub fn count_containing_edge(g: &BipartiteGraph, e: EdgeId) -> u64 {
    let (u, v) = g.edge(e);
    let mut count = 0u64;
    for (x, _) in g.neighbors(u) {
        if x == v {
            continue;
        }
        for (w, _) in g.neighbors(v) {
            if w == u {
                continue;
            }
            if g.has_edge(w, x) {
                count += 1;
            }
        }
    }
    count
}

/// Closed-form butterfly count of the complete biclique `K_{a,b}`:
/// `C(a,2)·C(b,2)`.
pub fn complete_biclique_butterflies(a: u64, b: u64) -> u64 {
    choose2(a) * choose2(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::count_per_edge;
    use bigraph::GraphBuilder;

    fn fig4() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn enumeration_matches_fig4() {
        let g = fig4();
        let bfs = enumerate_butterflies(&g);
        assert_eq!(bfs.len(), 4);
        // Each butterfly's four edges are distinct and really exist.
        for b in &bfs {
            let mut es = b.edges.to_vec();
            es.sort_unstable();
            es.dedup();
            assert_eq!(es.len(), 4);
            assert!(b.u1 < b.u2);
            assert!(b.v1 < b.v2);
        }
        // No duplicates across the listing.
        let mut keys: Vec<_> = bfs.iter().map(|b| (b.u1, b.u2, b.v1, b.v2)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn naive_matches_fast_on_fixture() {
        let g = fig4();
        assert_eq!(count_naive(&g), count_per_edge(&g));
    }

    #[test]
    fn per_edge_brute_force_matches() {
        let g = fig4();
        let c = count_per_edge(&g);
        for e in g.edges() {
            assert_eq!(c.support(e), count_containing_edge(&g, e), "{e:?}");
        }
    }

    #[test]
    fn closed_form() {
        assert_eq!(complete_biclique_butterflies(2, 2), 1);
        assert_eq!(complete_biclique_butterflies(3, 3), 9);
        assert_eq!(complete_biclique_butterflies(10, 1), 0);
    }
}
