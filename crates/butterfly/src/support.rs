//! Per-edge butterfly support counting via priority-obeyed wedges.

use bigraph::progress::{checkpoint, EngineObserver, NoopObserver, Phase, CHECK_INTERVAL};
use bigraph::{BipartiteGraph, EdgeId, Result};

/// Result of a counting pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ButterflyCounts {
    /// `per_edge[e]` = number of butterflies containing edge `e`
    /// (the butterfly support `sup(e)`).
    pub per_edge: Vec<u64>,
    /// Total number of butterflies in the graph (`onG`).
    pub total: u64,
}

impl ButterflyCounts {
    /// Support of one edge.
    #[inline]
    pub fn support(&self, e: EdgeId) -> u64 {
        self.per_edge[e.index()]
    }

    /// Maximum support over all edges (0 for an edgeless graph).
    pub fn max_support(&self) -> u64 {
        self.per_edge.iter().copied().max().unwrap_or(0)
    }
}

/// `C(c, 2)` without overflow for `c ≤ 2^32`.
#[inline]
pub(crate) fn choose2(c: u64) -> u64 {
    c * c.saturating_sub(1) / 2
}

/// Counts, for every edge, the number of butterflies containing it, plus
/// the total butterfly count, in `O(Σ_{(u,v)∈E} min{d(u), d(v)})` time.
///
/// This is the counting step used by every decomposition algorithm
/// (Algorithm 1 line 1, Algorithm 4 line 1, Algorithm 7 line 1).
pub fn count_per_edge(g: &BipartiteGraph) -> ButterflyCounts {
    // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
    count_per_edge_observed(g, &NoopObserver).expect("NoopObserver never cancels")
}

/// [`count_per_edge`] with an [`EngineObserver`]: reports phase start,
/// coarse per-vertex progress, and polls for cancellation every
/// [`CHECK_INTERVAL`] start vertices.
///
/// # Errors
///
/// Returns [`bigraph::Error::Cancelled`] when the observer requests
/// cancellation; the partial counts are discarded.
pub fn count_per_edge_observed(
    g: &BipartiteGraph,
    observer: &dyn EngineObserver,
) -> Result<ButterflyCounts> {
    let n = g.num_vertices() as usize;
    let m = g.num_edges() as usize;
    observer.on_phase_start(Phase::Counting, n as u64);
    checkpoint(observer)?;
    let mut per_edge = vec![0u64; m];
    let mut total = 0u64;

    // Scratch: wedge counts per end-vertex, reset via `touched`.
    let mut count = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut wedges: Vec<(u32, u32, u32)> = Vec::new(); // (w, e_uv, e_vw)

    for u in g.vertices() {
        if (u.0 as u64).is_multiple_of(CHECK_INTERVAL) && u.0 > 0 {
            checkpoint(observer)?;
            observer.on_phase_progress(Phase::Counting, u.0 as u64, n as u64);
        }
        let pu = g.priority(u);
        touched.clear();
        wedges.clear();

        // Enumerate priority-obeyed wedges (u, v, w): adjacency lists are
        // sorted ascending by priority, so both scans stop early.
        let vs = g.pri_neighbor_slice(u);
        let ves = g.pri_neighbor_edge_slice(u);
        for (&v, &e_uv) in vs.iter().zip(ves) {
            if g.priority(bigraph::VertexId(v)) >= pu {
                break;
            }
            let ws = g.pri_neighbor_slice(bigraph::VertexId(v));
            let wes = g.pri_neighbor_edge_slice(bigraph::VertexId(v));
            for (&w, &e_vw) in ws.iter().zip(wes) {
                if g.priority(bigraph::VertexId(w)) >= pu {
                    break;
                }
                if count[w as usize] == 0 {
                    touched.push(w);
                }
                count[w as usize] += 1;
                wedges.push((w, e_uv, e_vw));
            }
        }

        // Each bloom (u, w) with c wedges holds C(c,2) butterflies and
        // gives every member edge c−1 supports.
        for &(w, e1, e2) in &wedges {
            let c = count[w as usize] as u64;
            if c >= 2 {
                per_edge[e1 as usize] += c - 1;
                per_edge[e2 as usize] += c - 1;
            }
        }
        for &w in &touched {
            total += choose2(count[w as usize] as u64);
            count[w as usize] = 0;
        }
    }

    observer.on_phase_end(Phase::Counting);
    Ok(ButterflyCounts { per_edge, total })
}

/// Counts only the total number of butterflies (`onG`), skipping the
/// per-edge pass.
pub fn count_total(g: &BipartiteGraph) -> u64 {
    let n = g.num_vertices() as usize;
    let mut total = 0u64;
    let mut count = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::new();

    for u in g.vertices() {
        let pu = g.priority(u);
        touched.clear();
        for &v in g.pri_neighbor_slice(u) {
            if g.priority(bigraph::VertexId(v)) >= pu {
                break;
            }
            for &w in g.pri_neighbor_slice(bigraph::VertexId(v)) {
                if g.priority(bigraph::VertexId(w)) >= pu {
                    break;
                }
                if count[w as usize] == 0 {
                    touched.push(w);
                }
                count[w as usize] += 1;
            }
        }
        for &w in &touched {
            total += choose2(count[w as usize] as u64);
            count[w as usize] = 0;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    /// Figure 1 of the paper: authors u0..u3, papers v0..v4.
    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
                (2, 3),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn fig1_supports() {
        let g = fig1();
        let c = count_per_edge(&g);
        assert_eq!(c.total, 4);
        let sup = |u: u32, v: u32| {
            let e = g.edge_between(g.upper(u), g.lower(v)).unwrap();
            c.support(e)
        };
        // Blue block {u0,u1,u2}×{v0,v1}: every edge except (u2,v1) has 2.
        assert_eq!(sup(0, 0), 2);
        assert_eq!(sup(0, 1), 2);
        assert_eq!(sup(1, 0), 2);
        assert_eq!(sup(1, 1), 2);
        assert_eq!(sup(2, 0), 2);
        // (u2,v1) also lies in [u2,v1,u3,v2].
        assert_eq!(sup(2, 1), 3);
        // Yellow edges.
        assert_eq!(sup(2, 2), 1);
        assert_eq!(sup(3, 1), 1);
        assert_eq!(sup(3, 2), 1);
        // Gray edges.
        assert_eq!(sup(2, 3), 0);
        assert_eq!(sup(3, 4), 0);
    }

    #[test]
    fn complete_biclique_closed_form() {
        // K_{a,b} has C(a,2)*C(b,2) butterflies; each edge is in
        // (a-1)*(b-1) of them.
        for (a, b) in [(2u32, 2u32), (3, 4), (5, 5), (2, 7)] {
            let mut builder = GraphBuilder::new();
            for u in 0..a {
                for v in 0..b {
                    builder.push_edge(u, v);
                }
            }
            let g = builder.build().unwrap();
            let c = count_per_edge(&g);
            let expect_total = choose2(a as u64) * choose2(b as u64);
            assert_eq!(c.total, expect_total, "K_{{{a},{b}}} total");
            for e in g.edges() {
                assert_eq!(c.support(e), ((a - 1) * (b - 1)) as u64);
            }
            assert_eq!(count_total(&g), expect_total);
        }
    }

    #[test]
    fn bloom_of_fig3() {
        // Figure 3(a): a 1001-bloom (2 upper × 1001 lower vertices).
        let mut builder = GraphBuilder::new();
        for v in 0..1001u32 {
            builder.push_edge(0, v);
            builder.push_edge(1, v);
        }
        let g = builder.build().unwrap();
        let c = count_per_edge(&g);
        assert_eq!(c.total, 1001 * 1000 / 2);
        for e in g.edges() {
            assert_eq!(c.support(e), 1000);
        }
    }

    #[test]
    fn butterfly_free_graphs() {
        // A star has no butterflies.
        let mut builder = GraphBuilder::new();
        for v in 0..50 {
            builder.push_edge(0, v);
        }
        let g = builder.build().unwrap();
        let c = count_per_edge(&g);
        assert_eq!(c.total, 0);
        assert!(c.per_edge.iter().all(|&s| s == 0));

        // A path u0-v0-u1-v1 has none either.
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (1, 0), (1, 1)])
            .build()
            .unwrap();
        assert_eq!(count_per_edge(&g).total, 0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        let c = count_per_edge(&g);
        assert_eq!(c.total, 0);
        assert!(c.per_edge.is_empty());
        assert_eq!(c.max_support(), 0);
    }

    #[test]
    fn support_identity_4x_total() {
        // Σ_e sup(e) = 4 · onG (each butterfly has 4 edges).
        let g = fig1();
        let c = count_per_edge(&g);
        let sum: u64 = c.per_edge.iter().sum();
        assert_eq!(sum, 4 * c.total);
    }
}
