//! Butterfly ((2,2)-biclique) counting for bipartite graphs.
//!
//! The workhorse is [`count_per_edge`], the vertex-priority counting
//! algorithm of Wang et al. (VLDB 2019, ref.\[8\] of the paper): it
//! enumerates every *priority-obeyed wedge* `(u, v, w)` — `p(v) < p(u)` and
//! `p(w) < p(u)` — in `O(Σ_{(u,v)∈E} min{d(u), d(v)})` time. Wedges sharing
//! a start/end pair `(u, w)` form a maximal priority-obeyed bloom; a bloom
//! with `c` wedges holds `C(c,2)` butterflies and contributes `c − 1` to the
//! support of each of its edges (Lemmas 1–3 of the paper).
//!
//! [`naive`] provides brute-force oracles used throughout the test suites,
//! and [`parallel`] a multi-threaded variant of the same counting.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod access;
pub mod local;
pub mod naive;
pub mod parallel;
pub mod support;
pub mod vertex;

pub use access::{
    common_neighbors, count_per_edge_access, count_per_edge_access_observed, intersect_sorted,
};
pub use local::{
    count_for_edges, count_through_edge, count_through_edge_metered, for_each_butterfly_through,
    for_each_butterfly_through_metered, for_each_butterfly_through_while,
};
pub use naive::{count_naive, enumerate_butterflies, Butterfly};
pub use parallel::{
    count_per_edge_parallel, count_per_edge_parallel_observed, par_add_assign, Threads,
};
pub use support::{count_per_edge, count_per_edge_observed, count_total, ButterflyCounts};
pub use vertex::count_per_vertex;
