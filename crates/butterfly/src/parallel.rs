//! Multi-threaded per-edge butterfly counting.
//!
//! An extension beyond the paper (its §I cites parallel butterfly
//! computations as related work): the priority-obeyed wedge enumeration is
//! embarrassingly parallel over start vertices, so we shard vertices across
//! threads (std scoped threads), give each thread its own scratch and
//! support accumulator, and reduce at the end. The reduction itself is also
//! parallel: the `m`-length accumulator is chunked across the same workers
//! so no single thread has to merge `threads × m` partials alone. The
//! result is bit-identical to [`crate::count_per_edge`].

use std::sync::atomic::{AtomicU64, Ordering};

use bigraph::progress::{EngineObserver, NoopObserver, Phase, CHECK_INTERVAL};
use bigraph::{BipartiteGraph, Error, Result, VertexId};

use crate::support::{choose2, ButterflyCounts};

/// Worker-thread configuration shared by every parallel entry point of the
/// suite (counting, index construction, peeling): `Threads(0)` auto-detects
/// via [`std::thread::available_parallelism`], `Threads(n)` pins exactly
/// `n` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Threads(pub usize);

impl Threads {
    /// Auto-detect the worker count from the hardware.
    pub const AUTO: Threads = Threads(0);

    /// Resolves the configuration to a concrete worker count (always ≥ 1).
    pub fn resolve(self) -> usize {
        if self.0 == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.0
        }
    }
}

impl From<usize> for Threads {
    fn from(n: usize) -> Threads {
        Threads(n)
    }
}

/// Chunked parallel element-wise reduction: folds every `partials[j]`
/// into `acc` (`acc[i] += partials[j][i]`), with contiguous chunks of
/// `acc` owned by scoped workers so no thread serializes the whole merge.
/// Every partial must be at least as long as `acc`. Shared by the
/// counting reduction here and the link-tally reduction of the parallel
/// BE-Index build.
pub fn par_add_assign<T>(acc: &mut [T], partials: &[Vec<T>], threads: usize)
where
    T: std::ops::AddAssign + Copy + Send + Sync,
{
    if acc.is_empty() || partials.is_empty() {
        return;
    }
    let chunk = acc.len().div_ceil(threads.max(1)).max(1);
    std::thread::scope(|scope| {
        for (i, acc_chunk) in acc.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                let base = i * chunk;
                let len = acc_chunk.len();
                for partial in partials {
                    for (a, &p) in acc_chunk.iter_mut().zip(&partial[base..base + len]) {
                        *a += p;
                    }
                }
            });
        }
    });
}

/// Parallel counting across `threads` workers (clamped to at least 1).
/// `threads == 0` selects `std::thread::available_parallelism()`.
pub fn count_per_edge_parallel(g: &BipartiteGraph, threads: usize) -> ButterflyCounts {
    // xtask:allow(no-panic-lib) infallible: the only Err source is observer cancellation and NoopObserver never cancels
    count_per_edge_parallel_observed(g, threads, &NoopObserver).expect("NoopObserver never cancels")
}

/// [`count_per_edge_parallel`] with an [`EngineObserver`]: every worker
/// polls for cancellation and ticks a shared progress counter roughly
/// every [`CHECK_INTERVAL`] start vertices (so progress events may arrive
/// from several threads).
///
/// # Errors
///
/// Returns [`Error::Cancelled`] when the observer requests cancellation;
/// all workers stop at their next poll and the partials are discarded.
pub fn count_per_edge_parallel_observed(
    g: &BipartiteGraph,
    threads: usize,
    observer: &dyn EngineObserver,
) -> Result<ButterflyCounts> {
    let threads = Threads(threads).resolve();
    let n = g.num_vertices() as usize;
    let m = g.num_edges() as usize;
    if threads <= 1 || n < 1024 {
        return crate::support::count_per_edge_observed(g, observer);
    }
    observer.on_phase_start(Phase::Counting, n as u64);
    let progress = AtomicU64::new(0);
    let progress = &progress;

    // Static interleaved sharding: vertex v goes to thread v % threads.
    // High-degree vertices cluster at particular ids in many generators, so
    // interleaving balances better than contiguous chunks.
    let mut partials: Vec<(Vec<u64>, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                let mut per_edge = vec![0u64; m];
                let mut total = 0u64;
                let mut count = vec![0u32; n];
                let mut touched: Vec<u32> = Vec::new();
                let mut wedges: Vec<(u32, u32, u32)> = Vec::new();
                let mut since_poll = 0u64;
                let mut v_idx = t as u32;
                while (v_idx as usize) < n {
                    since_poll += 1;
                    if since_poll >= CHECK_INTERVAL {
                        since_poll = 0;
                        if observer.is_cancelled() {
                            break;
                        }
                        // Relaxed: advisory progress telemetry; no memory
                        // is published through this counter.
                        let done =
                            progress.fetch_add(CHECK_INTERVAL, Ordering::Relaxed) + CHECK_INTERVAL;
                        observer.on_phase_progress(Phase::Counting, done.min(n as u64), n as u64);
                    }
                    let u = VertexId(v_idx);
                    v_idx += threads as u32;
                    let pu = g.priority(u);
                    touched.clear();
                    wedges.clear();
                    let vs = g.pri_neighbor_slice(u);
                    let ves = g.pri_neighbor_edge_slice(u);
                    for (&v, &e_uv) in vs.iter().zip(ves) {
                        if g.priority(VertexId(v)) >= pu {
                            break;
                        }
                        let ws = g.pri_neighbor_slice(VertexId(v));
                        let wes = g.pri_neighbor_edge_slice(VertexId(v));
                        for (&w, &e_vw) in ws.iter().zip(wes) {
                            if g.priority(VertexId(w)) >= pu {
                                break;
                            }
                            if count[w as usize] == 0 {
                                touched.push(w);
                            }
                            count[w as usize] += 1;
                            wedges.push((w, e_uv, e_vw));
                        }
                    }
                    for &(w, e1, e2) in &wedges {
                        let c = count[w as usize] as u64;
                        if c >= 2 {
                            per_edge[e1 as usize] += c - 1;
                            per_edge[e2 as usize] += c - 1;
                        }
                    }
                    for &w in &touched {
                        total += choose2(count[w as usize] as u64);
                        count[w as usize] = 0;
                    }
                }
                (per_edge, total)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("counting worker panicked")) // xtask:allow(no-panic-lib) Err here means a worker panicked; workers are panic-free by this same lint, and propagating a real panic is the correct failure mode
            .collect()
    });

    // A worker that saw the cancellation request broke out early, leaving
    // its partial incomplete — discard everything and report cleanly.
    if observer.is_cancelled() {
        return Err(Error::Cancelled);
    }

    // Parallel reduction: fold the remaining partials into the first one,
    // chunking the edge range across the same workers so the merge is not
    // serialized on one thread.
    let total = partials.iter().map(|&(_, t)| t).sum();
    let mut per_edge = partials.remove(0).0;
    let rest: Vec<Vec<u64>> = partials.into_iter().map(|(v, _)| v).collect();
    par_add_assign(&mut per_edge, &rest, threads);
    observer.on_phase_end(Phase::Counting);
    Ok(ButterflyCounts { per_edge, total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::count_per_edge;
    use bigraph::GraphBuilder;

    fn dense_test_graph() -> BipartiteGraph {
        // Deterministic pseudo-random graph big enough to cross the
        // parallel threshold.
        let mut b = GraphBuilder::new();
        let mut state = 0x12345678u64;
        for _ in 0..12_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) % 700) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) % 700) as u32;
            b.push_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_sequential() {
        let g = dense_test_graph();
        let seq = count_per_edge(&g);
        for threads in [2, 3, 4, 8] {
            let par = count_per_edge_parallel(&g, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn more_workers_than_edges_still_reduces_correctly() {
        // Exercises the chunked reduction when chunks are tiny relative to
        // the worker count.
        let g = dense_test_graph();
        let seq = count_per_edge(&g);
        let par = count_per_edge_parallel(&g, 13);
        assert_eq!(par, seq);
    }

    #[test]
    fn single_thread_falls_back() {
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 0), (1, 1)])
            .build()
            .unwrap();
        let c = count_per_edge_parallel(&g, 1);
        assert_eq!(c.total, 1);
    }

    #[test]
    fn auto_thread_selection() {
        let g = dense_test_graph();
        let seq = count_per_edge(&g);
        let par = count_per_edge_parallel(&g, 0);
        assert_eq!(par, seq);
    }

    #[test]
    fn par_add_assign_matches_serial_sum() {
        let partials: Vec<Vec<u32>> = (0..5)
            .map(|j| (0..103u32).map(|i| i * 3 + j).collect())
            .collect();
        let mut acc = vec![1u32; 103];
        let mut expect = acc.clone();
        for p in &partials {
            for (a, &x) in expect.iter_mut().zip(p) {
                *a += x;
            }
        }
        par_add_assign(&mut acc, &partials, 4);
        assert_eq!(acc, expect);
        // Degenerate shapes are no-ops, not panics.
        par_add_assign::<u32>(&mut [], &partials, 4);
        par_add_assign(&mut acc, &[], 4);
        assert_eq!(acc, expect);
    }

    #[test]
    fn threads_resolution() {
        assert_eq!(Threads(4).resolve(), 4);
        assert_eq!(Threads(1).resolve(), 1);
        assert!(Threads::AUTO.resolve() >= 1);
        assert_eq!(Threads::from(3), Threads(3));
        assert_eq!(Threads::default(), Threads::AUTO);
    }
}
