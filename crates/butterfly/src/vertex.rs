//! Per-vertex butterfly counting.
//!
//! `count_per_vertex(g)[x]` is the number of butterflies containing
//! vertex `x` — the quantity peeled by tip decomposition and a common
//! network statistic. Derived from the same priority-obeyed wedge scan:
//! a bloom with `c` wedges contributes `C(c,2)` butterflies to each of
//! its two anchor vertices and `c − 1` to each middle vertex.

use bigraph::{BipartiteGraph, VertexId};

use crate::support::choose2;

/// Counts, for every vertex, the number of butterflies containing it, in
/// `O(Σ_{(u,v)∈E} min{d(u), d(v)})` time.
pub fn count_per_vertex(g: &BipartiteGraph) -> Vec<u64> {
    let n = g.num_vertices() as usize;
    let mut per_vertex = vec![0u64; n];

    let mut count = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut wedges: Vec<(u32, u32)> = Vec::new(); // (middle v, end w)

    for u in g.vertices() {
        let pu = g.priority(u);
        touched.clear();
        wedges.clear();

        for &v in g.pri_neighbor_slice(u) {
            if g.priority(VertexId(v)) >= pu {
                break;
            }
            for &w in g.pri_neighbor_slice(VertexId(v)) {
                if g.priority(VertexId(w)) >= pu {
                    break;
                }
                if count[w as usize] == 0 {
                    touched.push(w);
                }
                count[w as usize] += 1;
                wedges.push((v, w));
            }
        }

        // Middles: c − 1 butterflies per wedge membership.
        for &(v, w) in &wedges {
            let c = count[w as usize] as u64;
            if c >= 2 {
                per_vertex[v as usize] += c - 1;
            }
        }
        // Anchors: C(c, 2) butterflies each.
        for &w in &touched {
            let b = choose2(count[w as usize] as u64);
            per_vertex[u.index()] += b;
            per_vertex[w as usize] += b;
            count[w as usize] = 0;
        }
    }
    per_vertex
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::enumerate_butterflies;
    use crate::support::count_per_edge;
    use bigraph::GraphBuilder;

    fn naive_per_vertex(g: &BipartiteGraph) -> Vec<u64> {
        let mut counts = vec![0u64; g.num_vertices() as usize];
        for b in enumerate_butterflies(g) {
            for v in [b.u1, b.u2, b.v1, b.v2] {
                counts[v.index()] += 1;
            }
        }
        counts
    }

    #[test]
    fn matches_naive_on_fixture() {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
            ])
            .build()
            .unwrap();
        assert_eq!(count_per_vertex(&g), naive_per_vertex(&g));
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..10 {
            let g = datagen::random::uniform(15, 15, 80, seed);
            assert_eq!(count_per_vertex(&g), naive_per_vertex(&g), "seed {seed}");
        }
    }

    #[test]
    fn vertex_sum_equals_four_times_total() {
        let g = datagen::powerlaw::chung_lu(50, 50, 600, 2.0, 2.0, 3);
        let per_vertex = count_per_vertex(&g);
        let edges = count_per_edge(&g);
        assert_eq!(per_vertex.iter().sum::<u64>(), 4 * edges.total);
    }

    #[test]
    fn complete_biclique_closed_form() {
        // K_{a,b}: every upper vertex is in (a-1)·C(b,2) butterflies.
        let (a, b) = (4u64, 5u64);
        let mut builder = GraphBuilder::new();
        for u in 0..a as u32 {
            for v in 0..b as u32 {
                builder.push_edge(u, v);
            }
        }
        let g = builder.build().unwrap();
        let counts = count_per_vertex(&g);
        for u in g.upper_vertices() {
            assert_eq!(counts[u.index()], (a - 1) * choose2(b));
        }
        for v in g.lower_vertices() {
            assert_eq!(counts[v.index()], (b - 1) * choose2(a));
        }
    }
}
