//! (α, β)-core computation — the degree-based cohesive model of the
//! paper's related work (Liu et al., WWW 2019, its ref. \[20\]).
//!
//! The (α, β)-core is the maximal subgraph in which every upper-layer
//! vertex has degree ≥ α and every lower-layer vertex degree ≥ β. It is
//! strictly weaker than bitruss cohesion but 10–100× cheaper to compute,
//! which makes the (2, 2)-core a sound *pre-filter* for butterfly work:
//! every butterfly lies inside the (2, 2)-core, so edges outside it have
//! support 0 and bitruss number 0.

use crate::graph::{BipartiteGraph, EdgeId, VertexId};
use crate::subgraph::{edge_subgraph, EdgeSubgraph};

/// Computes the (α, β)-core of `g` by worklist peeling in `O(n + m)`.
/// Returns the surviving subgraph with the edge mapping back to `g`.
pub fn alpha_beta_core(g: &BipartiteGraph, alpha: u32, beta: u32) -> EdgeSubgraph {
    let n = g.num_vertices() as usize;
    let mut degree: Vec<u32> = g.vertices().map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let threshold = |g: &BipartiteGraph, v: VertexId| if g.is_upper(v) { alpha } else { beta };

    let mut worklist: Vec<u32> = g
        .vertices()
        .filter(|&v| degree[v.index()] < threshold(g, v))
        .map(|v| v.0)
        .collect();
    for &v in &worklist {
        removed[v as usize] = true;
    }
    while let Some(v) = worklist.pop() {
        for (w, _) in g.neighbors(VertexId(v)) {
            if removed[w.index()] {
                continue;
            }
            degree[w.index()] -= 1;
            if degree[w.index()] < threshold(g, w) {
                removed[w.index()] = true;
                worklist.push(w.0);
            }
        }
    }

    edge_subgraph(g, |e: EdgeId| {
        let (u, v) = g.edge(e);
        !removed[u.index()] && !removed[v.index()]
    })
}

/// Mask over `g`'s edges marking the (2, 2)-core — the smallest core in
/// which butterflies can exist.
pub fn butterfly_core_mask(g: &BipartiteGraph) -> Vec<bool> {
    let core = alpha_beta_core(g, 2, 2);
    let mut mask = vec![false; g.num_edges() as usize];
    for &e in &core.new_to_old {
        mask[e.index()] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 1),
                (3, 2),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    /// Reference implementation: repeated full scans.
    fn naive_core(g: &BipartiteGraph, alpha: u32, beta: u32) -> Vec<bool> {
        let mut alive_edge = vec![true; g.num_edges() as usize];
        loop {
            let sub = edge_subgraph(g, |e| alive_edge[e.index()]);
            let mut changed = false;
            for e in sub.graph.edges() {
                let (u, v) = sub.graph.edge(e);
                if sub.graph.degree(u) < alpha || sub.graph.degree(v) < beta {
                    alive_edge[sub.new_to_old[e.index()].index()] = false;
                    changed = true;
                }
            }
            if !changed {
                let mut mask = vec![false; g.num_edges() as usize];
                for (i, &old) in sub.new_to_old.iter().enumerate() {
                    let _ = i;
                    mask[old.index()] = true;
                }
                return mask;
            }
        }
    }

    #[test]
    fn matches_naive_on_fixture() {
        let g = fig1();
        for (a, b) in [(1, 1), (2, 2), (2, 3), (3, 2), (4, 4)] {
            let fast = butterfly_mask_for(&g, a, b);
            assert_eq!(fast, naive_core(&g, a, b), "({a},{b})");
        }
    }

    fn butterfly_mask_for(g: &BipartiteGraph, a: u32, b: u32) -> Vec<bool> {
        let core = alpha_beta_core(g, a, b);
        let mut mask = vec![false; g.num_edges() as usize];
        for &e in &core.new_to_old {
            mask[e.index()] = true;
        }
        mask
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..8 {
            let mut s: u64 = seed * 977 + 13;
            let mut next = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 33) as u32
            };
            let mut builder = GraphBuilder::new();
            for _ in 0..70 {
                builder.push_edge(next() % 15, next() % 15);
            }
            let g = builder.build().unwrap();
            for (a, b) in [(2, 2), (3, 2), (3, 3)] {
                assert_eq!(
                    butterfly_mask_for(&g, a, b),
                    naive_core(&g, a, b),
                    "seed {seed} ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn cores_are_nested() {
        let g = fig1();
        let c22 = butterfly_mask_for(&g, 2, 2);
        let c33 = butterfly_mask_for(&g, 3, 3);
        for e in 0..g.num_edges() as usize {
            assert!(!c33[e] || c22[e], "(3,3)-core ⊆ (2,2)-core");
        }
    }

    #[test]
    fn one_one_core_keeps_everything() {
        let g = fig1();
        let core = alpha_beta_core(&g, 1, 1);
        assert_eq!(core.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn fig1_two_two_core() {
        // The (2,2)-core of Figure 1 drops the pendant edges (u2,v3),
        // (u3,v4) — exactly the edges with no butterflies.
        let g = fig1();
        let mask = butterfly_core_mask(&g);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 9);
    }
}
