//! Bipartite-graph substrate for the bitruss decomposition suite.
//!
//! This crate provides the storage layer every other crate builds on:
//!
//! * [`BipartiteGraph`] — an immutable CSR representation with two vertex
//!   layers, where every adjacency list is available both sorted by vertex id
//!   (for merge intersections and edge lookup) and sorted by *vertex
//!   priority* (for the priority-obeyed wedge enumeration at the heart of
//!   butterfly counting and BE-Index construction).
//! * [`GraphBuilder`] — deduplicating, validating construction from edge
//!   lists.
//! * Priorities per Definition 7 of the paper: `p(u) > p(v)` iff
//!   `d(u) > d(v)`, ties broken by vertex id (upper-layer ids are always
//!   larger than lower-layer ids, as the paper assumes).
//! * Subgraph extraction by edge mask (for the candidate graphs `G≥ε` of
//!   BiT-PC) and by vertex sampling (for the scalability experiments).
//! * Generation edits ([`apply_edits`]): rebuild the CSR under a batch of
//!   edge insertions/deletions with deterministic edge-id mappings, the
//!   substrate of dynamic maintenance.
//! * Plain-text edge-list I/O compatible with KONECT-style files.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adjacency;
pub mod builder;
pub mod edits;
pub mod error;
pub mod graph;
pub mod io;
pub mod kcore;
pub mod progress;
pub mod sampling;
pub mod stats;
pub mod subgraph;
pub mod union_find;
pub mod vfs;

pub use adjacency::NeighborAccess;
pub use builder::{GraphBuilder, PriorityMode};
pub use edits::{apply_edits, EditedGraph};
pub use error::{Error, Result};
pub use graph::{BipartiteGraph, EdgeId, VertexId};
pub use kcore::{alpha_beta_core, butterfly_core_mask};
pub use progress::{EngineObserver, NoopObserver, Phase};
pub use sampling::{sample_vertices_percent, SplitMix64};
pub use stats::GraphStats;
pub use subgraph::{edge_subgraph, vertex_induced_subgraph, EdgeSubgraph};
pub use union_find::UnionFind;
pub use vfs::{Fault, MemVfs, StdVfs, Vfs, VfsFile, VfsRandomRead};
