//! Error type shared across the substrate.

use std::fmt;

/// Errors produced while building, loading or transforming bipartite
/// graphs, or while running observed decomposition passes.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without a
/// semver break, so downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure while reading or writing an edge list.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of what was expected.
        message: String,
    },
    /// An edge referenced a vertex outside the declared layer size.
    VertexOutOfRange {
        /// The offending layer-local vertex index.
        index: u32,
        /// Size of the layer it was addressed in.
        layer_size: u32,
        /// `true` if the vertex was addressed in the upper layer.
        upper: bool,
    },
    /// The graph would exceed the `u32` id space.
    TooLarge(String),
    /// A caller-supplied argument combination violated an API invariant
    /// (e.g. a φ array whose length does not match the graph's edge count).
    Invariant(String),
    /// A binary snapshot failed validation: bad magic, unsupported
    /// version, truncated section, structurally impossible data, or a
    /// checksum mismatch.
    Corrupt(String),
    /// An [`EngineObserver`](crate::progress::EngineObserver) requested
    /// cooperative cancellation; the pass unwound cleanly and produced no
    /// result.
    Cancelled,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            Error::VertexOutOfRange {
                index,
                layer_size,
                upper,
            } => {
                let layer = if *upper { "upper" } else { "lower" };
                write!(
                    f,
                    "{layer}-layer vertex {index} out of range (layer size {layer_size})"
                )
            }
            Error::TooLarge(what) => write!(f, "graph too large: {what}"),
            Error::Invariant(what) => write!(f, "invariant violation: {what}"),
            Error::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            Error::Cancelled => write!(f, "cancelled by the observer"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience result alias for substrate operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error on line 3: bad token");

        let e = Error::VertexOutOfRange {
            index: 9,
            layer_size: 5,
            upper: true,
        };
        assert!(e.to_string().contains("upper-layer vertex 9"));
        let e = Error::VertexOutOfRange {
            index: 2,
            layer_size: 1,
            upper: false,
        };
        assert!(e.to_string().contains("lower-layer vertex 2"));

        let e = Error::TooLarge("5000000000 vertices".into());
        assert!(e.to_string().starts_with("graph too large"));

        let e = Error::Invariant("2 φ values for 3 edges".into());
        assert!(e.to_string().starts_with("invariant violation"));

        let e = Error::Corrupt("checksum mismatch".into());
        assert!(e.to_string().starts_with("corrupt snapshot"));

        assert_eq!(Error::Cancelled.to_string(), "cancelled by the observer");

        let e = Error::TooLarge("x".into());

        let io = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("i/o error"));
        use std::error::Error as _;
        assert!(io.source().is_some());
        assert!(e.source().is_none());
    }
}
