//! Summary statistics used by the dataset table (Table II) and for sanity
//! checks on generated workloads.

use crate::graph::BipartiteGraph;

/// Degree and size statistics of a bipartite graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|U(G)|`.
    pub num_upper: u32,
    /// `|L(G)|`.
    pub num_lower: u32,
    /// `|E(G)|`.
    pub num_edges: u32,
    /// Maximum degree in the upper layer.
    pub max_degree_upper: u32,
    /// Maximum degree in the lower layer.
    pub max_degree_lower: u32,
    /// Mean degree of upper-layer vertices.
    pub avg_degree_upper: f64,
    /// Mean degree of lower-layer vertices.
    pub avg_degree_lower: f64,
    /// `Σ min{d(u), d(v)}` over edges — the counting/index bound.
    pub sum_min_degree: u64,
}

impl GraphStats {
    /// Computes the statistics for a graph.
    pub fn of(g: &BipartiteGraph) -> Self {
        let max_degree_upper = g.upper_vertices().map(|v| g.degree(v)).max().unwrap_or(0);
        let max_degree_lower = g.lower_vertices().map(|v| g.degree(v)).max().unwrap_or(0);
        let m = g.num_edges() as f64;
        Self {
            num_upper: g.num_upper(),
            num_lower: g.num_lower(),
            num_edges: g.num_edges(),
            max_degree_upper,
            max_degree_lower,
            avg_degree_upper: if g.num_upper() == 0 {
                0.0
            } else {
                m / g.num_upper() as f64
            },
            avg_degree_lower: if g.num_lower() == 0 {
                0.0
            } else {
                m / g.num_lower() as f64
            },
            sum_min_degree: g.sum_min_degree(),
        }
    }
}

/// Degree histogram of one layer: `histogram[d]` = number of vertices with
/// degree `d`.
pub fn degree_histogram(g: &BipartiteGraph, upper: bool) -> Vec<u32> {
    let degrees: Vec<u32> = if upper {
        g.upper_vertices().map(|v| g.degree(v)).collect()
    } else {
        g.lower_vertices().map(|v| g.degree(v)).collect()
    };
    let max = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u32; max + 1];
    for d in degrees {
        hist[d as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_fig4() {
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
                (2, 3),
                (3, 4),
            ])
            .build()
            .unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.num_upper, 4);
        assert_eq!(s.num_lower, 5);
        assert_eq!(s.num_edges, 11);
        assert_eq!(s.max_degree_upper, 4); // u2
        assert_eq!(s.max_degree_lower, 4); // v1
        assert!((s.avg_degree_upper - 11.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_layer_size() {
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (1, 0), (2, 0), (2, 1)])
            .build()
            .unwrap();
        let hu = degree_histogram(&g, true);
        assert_eq!(hu.iter().sum::<u32>(), g.num_upper());
        let hl = degree_histogram(&g, false);
        assert_eq!(hl.iter().sum::<u32>(), g.num_lower());
        assert_eq!(hl[3], 1); // v0 has degree 3
    }
}
