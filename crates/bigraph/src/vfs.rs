//! Pluggable I/O layer for crash-safe persistence and the out-of-core
//! storage tier.
//!
//! Every byte the durable snapshot store and the paged storage tier
//! touch goes through a [`Vfs`], so commit protocols (write → fsync
//! file → rename → fsync directory) and paged read paths can be
//! exercised against a *simulated* disk that crashes, runs out of
//! space, or tears writes at any chosen operation — deterministically,
//! with no real sleeps and no real corruption risk.
//!
//! Two implementations are provided:
//!
//! * [`StdVfs`] — the real filesystem, with genuine `fdatasync` /
//!   directory-fsync calls. This is what production stores run on.
//! * [`MemVfs`] — an in-memory filesystem that models *durability*
//!   separately from *visibility*, exactly like a kernel page cache over
//!   a disk:
//!
//!   - file writes land in the volatile view; only
//!     [`VfsFile::sync_data`] copies them to the durable view;
//!   - directory entries (creates, renames, removals) stay volatile
//!     until [`Vfs::sync_dir`] on their parent;
//!   - [`MemVfs::crash`] discards every volatile byte and entry,
//!     leaving exactly what a machine reboot would find — so a test can
//!     run a workload, "pull the plug" at any injected operation, and
//!     recover against the surviving image.
//!
//!   Faults are injected by *operation number* ([`MemVfs::fail_at`]):
//!   every state-touching call (create, write, sync, rename, remove,
//!   truncate, read, `read_at`, `sync_dir`) increments one global
//!   counter, so a workload replayed with the same inputs sees the same
//!   numbering and a kill-point sweep `0..ops` covers every
//!   intermediate disk state.
//!
//! The traits return [`std::io::Result`]; the store layer attaches the
//! offending path when converting to [`crate::Error`].
//!
//! This module lives in `bigraph` (the dependency root of the
//! workspace) so both the storage tier (`bitruss_storage`) and the
//! persistence layer (`bitruss_core::persist`) can share one I/O seam;
//! `bitruss_core::persist::vfs` re-exports it for compatibility.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open writable file handle obtained from a [`Vfs`].
///
/// Writes are buffered in the volatile layer until
/// [`VfsFile::sync_data`]; dropping the handle without syncing leaves
/// the written bytes at the mercy of a crash.
pub trait VfsFile: Write + Send {
    /// Forces every byte written so far to durable storage (`fdatasync`).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure (or an injected fault).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// An open random-access read handle obtained from [`Vfs::open_read`] —
/// the read path of the paged storage tier. Positioned reads only, so
/// one handle can serve a page cache from multiple call sites without
/// seek-state races.
pub trait VfsRandomRead: Send + Sync {
    /// Fills `buf` from the file starting at byte `offset`.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the file ends before `buf` is full, or the
    /// underlying I/O failure (or an injected fault).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Current length of the file in bytes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn len(&self) -> io::Result<u64>;

    /// `true` when the file is empty.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A minimal filesystem interface: exactly the operations the durable
/// store's commit protocol and the paged storage tier need, each one
/// interceptable for fault injection.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates (or truncates) `path` for writing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure (or an injected fault).
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing `path` for appending.
    ///
    /// # Errors
    ///
    /// `NotFound` when the file does not exist, or the underlying I/O
    /// failure.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Reads the whole file at `path`.
    ///
    /// # Errors
    ///
    /// `NotFound` when the file does not exist, or the underlying I/O
    /// failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Opens `path` for positioned reads ([`VfsRandomRead::read_at`])
    /// without loading it into memory — the paged storage tier's read
    /// path.
    ///
    /// # Errors
    ///
    /// `NotFound` when the file does not exist, or the underlying I/O
    /// failure.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRandomRead>>;

    /// `true` when `path` names an existing file.
    fn exists(&self, path: &Path) -> bool;

    /// Atomically renames `from` to `to` (replacing `to` if present).
    /// The rename is durable only after [`Vfs::sync_dir`] on the parent.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure (or an injected fault).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// `NotFound` when the file does not exist, or the underlying I/O
    /// failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Truncates the file at `path` to `len` bytes and makes the new
    /// length durable (used to cut a torn record off a journal tail).
    ///
    /// # Errors
    ///
    /// `NotFound` when the file does not exist, or the underlying I/O
    /// failure.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Creates the directory `path` and its missing parents.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure (or an injected fault).
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs the directory `path`, making its entries (new files,
    /// renames, removals) durable.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure (or an injected fault).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// The files directly inside `dir` (used to sweep stray temp files).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

// ---------------------------------------------------------------------
// StdVfs — the real filesystem.

/// The production [`Vfs`]: real files, real `fdatasync`, real
/// directory fsyncs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

struct StdFile(fs::File);

impl Write for StdFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for StdFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

/// Positioned reads over a real file. The handle serializes seek+read
/// behind a mutex so it stays portable (`#![forbid(unsafe_code)]` rules
/// out the platform `pread` extension traits' zero-lock path — the
/// seek is cheap next to the read itself).
struct StdRandomRead(Mutex<fs::File>);

impl VfsRandomRead for StdRandomRead {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut f = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f.seek(io::SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    fn len(&self) -> io::Result<u64> {
        let f = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(f.metadata()?.len())
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(
            fs::OpenOptions::new().append(true).open(path)?,
        )))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRandomRead>> {
        Ok(Box::new(StdRandomRead(Mutex::new(fs::File::open(path)?))))
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fsync is a POSIX idiom; on platforms where opening a
        // directory is not supported the rename itself is the best
        // available barrier.
        #[cfg(unix)]
        {
            fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// MemVfs — deterministic fault injection.

/// A fault to inject at one operation number (see [`MemVfs::fail_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with `StorageFull` (ENOSPC) and has no
    /// effect; later operations proceed normally.
    Enospc,
    /// A write applies only the first half of its buffer, then fails;
    /// any other operation just fails. Later operations proceed
    /// normally. Models a torn write.
    ShortWrite,
    /// The process "dies": a write applies half its buffer first, then
    /// this and **every later** operation fails. Follow with
    /// [`MemVfs::crash`] to discard volatile state and inspect what a
    /// reboot would find.
    Kill,
}

#[derive(Default)]
struct Inode {
    /// The volatile (page-cache) view.
    data: Vec<u8>,
    /// The durable (on-disk) view, updated by `sync_data`.
    durable: Vec<u8>,
}

#[derive(Default)]
struct MemState {
    inodes: HashMap<u64, Inode>,
    /// Volatile namespace: what `open`/`read` resolve against.
    names: HashMap<PathBuf, u64>,
    /// Durable namespace: what survives a crash. Updated by `sync_dir`.
    durable_names: HashMap<PathBuf, u64>,
    dirs: HashSet<PathBuf>,
    next_ino: u64,
    ops: u64,
    faults: HashMap<u64, Fault>,
    killed: bool,
}

/// The fault-injecting in-memory [`Vfs`] (see the [module docs](self)
/// for the durability model). Cloning shares the underlying state, so a
/// test can keep a handle while a store owns another.
#[derive(Clone, Default)]
pub struct MemVfs {
    state: Arc<Mutex<MemState>>,
}

impl fmt::Debug for MemVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = lock_state(&self.state);
        f.debug_struct("MemVfs")
            .field("files", &s.names.len())
            .field("ops", &s.ops)
            .field("killed", &s.killed)
            .finish()
    }
}

fn crash_err() -> io::Error {
    io::Error::other("simulated crash: the process died at an injected kill point")
}

/// Locks the shared state, absorbing poison: the state is plain data
/// with no invariants spanning the lock, so the image left by a
/// panicked holder is still valid to read and mutate (and the panic
/// that poisoned it is already propagating on its own thread).
fn lock_state(state: &Mutex<MemState>) -> std::sync::MutexGuard<'_, MemState> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Bumps the op counter and applies any injected fault. Returns the
/// fault kinds that require caller-side handling (partial writes).
fn step(s: &mut MemState) -> io::Result<Option<Fault>> {
    if s.killed {
        return Err(crash_err());
    }
    let op = s.ops;
    s.ops += 1;
    match s.faults.get(&op).copied() {
        None => Ok(None),
        Some(Fault::Enospc) => Err(io::Error::new(
            io::ErrorKind::StorageFull,
            format!("injected ENOSPC at op {op}"),
        )),
        Some(f) => Ok(Some(f)),
    }
}

/// [`step`] for operations with no partial-effect mode.
fn step_simple(s: &mut MemState) -> io::Result<()> {
    match step(s)? {
        None => Ok(()),
        Some(Fault::Kill) => {
            s.killed = true;
            Err(crash_err())
        }
        Some(_) => Err(io::Error::other(format!(
            "injected failure at op {}",
            s.ops - 1
        ))),
    }
}

impl MemVfs {
    /// A fresh, empty in-memory filesystem with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `fault` to fire at operation number `op` (0-based over every
    /// state-touching call; see the [module docs](self)).
    pub fn fail_at(&self, op: u64, fault: Fault) {
        lock_state(&self.state).faults.insert(op, fault);
    }

    /// Number of operations performed so far. Run a workload once
    /// fault-free, read this, and sweep kill points over `0..ops()`.
    pub fn ops(&self) -> u64 {
        lock_state(&self.state).ops
    }

    /// Simulates a reboot: every volatile byte and namespace entry is
    /// discarded, leaving only what was made durable. Clears armed
    /// faults and the killed flag so recovery can run on the image.
    pub fn crash(&self) {
        self.crash_keeping_tail(0);
    }

    /// [`MemVfs::crash`], but keeps up to `keep` un-synced appended
    /// bytes per file — modelling a kernel that flushed part of the page
    /// cache on its own before the power went out. Recovery must
    /// tolerate such torn tails (it truncates them).
    pub fn crash_keeping_tail(&self, keep: usize) {
        let mut s = lock_state(&self.state);
        s.names = s.durable_names.clone();
        let live: HashSet<u64> = s.names.values().copied().collect();
        s.inodes.retain(|ino, _| live.contains(ino));
        for inode in s.inodes.values_mut() {
            let d = inode.durable.len();
            let mut survived = inode.durable.clone();
            if keep > 0 && inode.data.len() > d && inode.data[..d] == inode.durable[..] {
                let extra = (inode.data.len() - d).min(keep);
                survived.extend_from_slice(&inode.data[d..d + extra]);
            }
            inode.data = survived.clone();
            inode.durable = survived;
        }
        s.killed = false;
        s.faults.clear();
    }

    /// Writes the current *durable* image to a real directory — used by
    /// the durability test suite to export a failing store for CI
    /// artifact upload.
    ///
    /// # Errors
    ///
    /// Propagates real-filesystem failures.
    pub fn dump_durable_to(&self, dir: &Path) -> io::Result<()> {
        let s = lock_state(&self.state);
        fs::create_dir_all(dir)?;
        for (path, ino) in &s.durable_names {
            let Some(inode) = s.inodes.get(ino) else {
                continue;
            };
            let name = path
                .file_name()
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("unnamed"));
            fs::write(dir.join(name), &inode.durable)?;
        }
        Ok(())
    }

    /// The durable content of `path`, or `None` when no durable entry
    /// exists — what a reader after a crash would find.
    pub fn durable_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        let s = lock_state(&self.state);
        let ino = s.durable_names.get(path)?;
        Some(s.inodes.get(ino)?.durable.clone())
    }
}

struct MemFile {
    state: Arc<Mutex<MemState>>,
    ino: u64,
}

impl Write for MemFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut s = lock_state(&self.state);
        let fault = step(&mut s)?;
        let inode = s.inodes.entry(self.ino).or_default();
        match fault {
            None => {
                inode.data.extend_from_slice(buf);
                Ok(buf.len())
            }
            Some(Fault::ShortWrite) => {
                inode.data.extend_from_slice(&buf[..buf.len() / 2]);
                Err(io::Error::other("injected short write"))
            }
            Some(Fault::Kill) => {
                inode.data.extend_from_slice(&buf[..buf.len() / 2]);
                s.killed = true;
                Err(crash_err())
            }
            Some(Fault::Enospc) => unreachable!("step returns Err for ENOSPC"),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl VfsFile for MemFile {
    fn sync_data(&mut self) -> io::Result<()> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        let inode = s.inodes.entry(self.ino).or_default();
        inode.durable = inode.data.clone();
        Ok(())
    }
}

/// Positioned reads over a [`MemVfs`] inode: every `read_at` counts as
/// one fault-injectable operation, so ENOSPC/kill sweeps cover paged
/// read paths exactly like write paths.
struct MemRandomRead {
    state: Arc<Mutex<MemState>>,
    ino: u64,
}

impl VfsRandomRead for MemRandomRead {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        let data = s.inodes.get(&self.ino).map(|i| i.data.as_slice());
        let data = data.unwrap_or(&[]);
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "offset overflow"))?;
        let end = start.checked_add(buf.len()).filter(|&e| e <= data.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&data[start..end]);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "read_at {}+{} past end of {}-byte file",
                    offset,
                    buf.len(),
                    data.len()
                ),
            )),
        }
    }

    fn len(&self) -> io::Result<u64> {
        let s = lock_state(&self.state);
        Ok(s.inodes.get(&self.ino).map(|i| i.data.len()).unwrap_or(0) as u64)
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file", path.display()),
    )
}

impl Vfs for MemVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        let ino = s.next_ino;
        s.next_ino += 1;
        s.inodes.insert(ino, Inode::default());
        s.names.insert(path.to_path_buf(), ino);
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            ino,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        let ino = *s.names.get(path).ok_or_else(|| not_found(path))?;
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            ino,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        let ino = *s.names.get(path).ok_or_else(|| not_found(path))?;
        Ok(s.inodes
            .get(&ino)
            .map(|i| i.data.clone())
            .unwrap_or_default())
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRandomRead>> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        let ino = *s.names.get(path).ok_or_else(|| not_found(path))?;
        Ok(Box::new(MemRandomRead {
            state: Arc::clone(&self.state),
            ino,
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        lock_state(&self.state).names.contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        let ino = s.names.remove(from).ok_or_else(|| not_found(from))?;
        s.names.insert(to.to_path_buf(), ino);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        s.names.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        let ino = *s.names.get(path).ok_or_else(|| not_found(path))?;
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "truncate length overflow"))?;
        if let Some(inode) = s.inodes.get_mut(&ino) {
            inode.data.truncate(len);
            inode.durable.truncate(len);
        }
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        s.dirs.insert(path.to_path_buf());
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut s = lock_state(&self.state);
        step_simple(&mut s)?;
        // A directory fsync makes every entry of this directory durable:
        // creations, renames and removals alike.
        s.durable_names.retain(|p, _| p.parent() != Some(path));
        let synced: Vec<(PathBuf, u64)> = s
            .names
            .iter()
            .filter(|(p, _)| p.parent() == Some(path))
            .map(|(p, i)| (p.clone(), *i))
            .collect();
        s.durable_names.extend(synced);
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let s = lock_state(&self.state);
        let mut out: Vec<PathBuf> = s
            .names
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_file(vfs: &MemVfs, path: &str, bytes: &[u8], sync: bool) {
        let mut f = vfs.create(&p(path)).unwrap();
        f.write_all(bytes).unwrap();
        if sync {
            f.sync_data().unwrap();
        }
    }

    #[test]
    fn unsynced_writes_do_not_survive_a_crash() {
        let vfs = MemVfs::new();
        write_file(&vfs, "/d/a", b"synced", true);
        vfs.sync_dir(&p("/d")).unwrap();
        write_file(&vfs, "/d/b", b"lost", false);
        // b's entry is volatile too — never synced into the directory.
        vfs.crash();
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"synced");
        assert!(vfs.read(&p("/d/b")).is_err());
    }

    #[test]
    fn entry_without_file_sync_survives_empty() {
        // create + write + sync_dir (no sync_data): the *entry* is
        // durable, the content is not — the classic missing-fsync bug.
        let vfs = MemVfs::new();
        write_file(&vfs, "/d/a", b"content", false);
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.crash();
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"");
    }

    #[test]
    fn rename_needs_a_dir_sync_to_be_durable() {
        let vfs = MemVfs::new();
        write_file(&vfs, "/d/old", b"v1", true);
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.rename(&p("/d/old"), &p("/d/new")).unwrap();
        vfs.crash(); // rename not synced: the old name comes back
        assert_eq!(vfs.read(&p("/d/old")).unwrap(), b"v1");
        assert!(!vfs.exists(&p("/d/new")));

        vfs.rename(&p("/d/old"), &p("/d/new")).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.crash();
        assert_eq!(vfs.read(&p("/d/new")).unwrap(), b"v1");
        assert!(!vfs.exists(&p("/d/old")));
    }

    #[test]
    fn replaced_file_reverts_to_the_durable_inode() {
        let vfs = MemVfs::new();
        write_file(&vfs, "/d/a", b"old", true);
        vfs.sync_dir(&p("/d")).unwrap();
        // Overwrite via create (new inode), fully synced content but the
        // namespace change is not synced.
        write_file(&vfs, "/d/a", b"new", true);
        vfs.crash();
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"old");
    }

    #[test]
    fn enospc_is_transient_kill_is_terminal() {
        let vfs = MemVfs::new();
        vfs.fail_at(0, Fault::Enospc);
        let err = vfs.create(&p("/d/a")).err().expect("injected ENOSPC");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Next op proceeds.
        write_file(&vfs, "/d/a", b"x", true);

        let ops = vfs.ops();
        vfs.fail_at(ops, Fault::Kill);
        assert!(vfs.create(&p("/d/b")).is_err());
        assert!(vfs.create(&p("/d/c")).is_err(), "killed vfs stays dead");
    }

    #[test]
    fn kill_mid_write_tears_the_buffer() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all(b"durable!").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        let ops = vfs.ops();
        vfs.fail_at(ops, Fault::Kill);
        assert!(f.write_all(b"torntail").is_err());
        // Pure-durable image: the torn bytes are gone entirely.
        vfs.crash_keeping_tail(0);
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"durable!");
    }

    #[test]
    fn crash_keeping_tail_exposes_torn_appends() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all(b"durable!").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        f.write_all(b"unsynced").unwrap();
        vfs.crash_keeping_tail(3);
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"durable!uns");
    }

    #[test]
    fn short_write_applies_half_then_fails() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("/d/a")).unwrap();
        let ops = vfs.ops();
        vfs.fail_at(ops, Fault::ShortWrite);
        assert!(f.write_all(b"abcdef").is_err());
        f.sync_data().unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.crash();
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"abc");
    }

    #[test]
    fn truncate_is_durable() {
        let vfs = MemVfs::new();
        write_file(&vfs, "/d/a", b"0123456789", true);
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.truncate(&p("/d/a"), 4).unwrap();
        vfs.crash();
        assert_eq!(vfs.read(&p("/d/a")).unwrap(), b"0123");
    }

    #[test]
    fn list_and_ops_counting() {
        let vfs = MemVfs::new();
        assert_eq!(vfs.ops(), 0);
        write_file(&vfs, "/d/b", b"x", true);
        write_file(&vfs, "/d/a", b"x", true);
        assert_eq!(vfs.list(&p("/d")).unwrap(), vec![p("/d/a"), p("/d/b")]);
        assert_eq!(vfs.ops(), 6); // 2 × (create + write + sync)
    }

    #[test]
    fn read_at_serves_positioned_slices() {
        let vfs = MemVfs::new();
        write_file(&vfs, "/d/a", b"0123456789", true);
        let h = vfs.open_read(&p("/d/a")).unwrap();
        assert_eq!(h.len().unwrap(), 10);
        let mut buf = [0u8; 4];
        h.read_at(3, &mut buf).unwrap();
        assert_eq!(&buf, b"3456");
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"0123");
        // Reads past the end fail loudly instead of zero-filling.
        let err = h.read_at(8, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(vfs.open_read(&p("/d/missing")).is_err());
    }

    #[test]
    fn read_at_is_fault_injectable() {
        let vfs = MemVfs::new();
        write_file(&vfs, "/d/a", b"abcdef", true);
        let h = vfs.open_read(&p("/d/a")).unwrap();
        let mut buf = [0u8; 2];
        let ops = vfs.ops();
        vfs.fail_at(ops, Fault::Enospc);
        assert!(h.read_at(0, &mut buf).is_err());
        // Transient: the next read proceeds.
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ab");
        // Kill is terminal for reads too.
        let ops = vfs.ops();
        vfs.fail_at(ops, Fault::Kill);
        assert!(h.read_at(0, &mut buf).is_err());
        assert!(h.read_at(0, &mut buf).is_err(), "killed vfs stays dead");
    }

    #[test]
    fn std_vfs_round_trips_on_a_real_tempdir() {
        let dir = std::env::temp_dir().join(format!("bitruss-vfs-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let vfs = StdVfs;
        let path = dir.join("file.bin");
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        vfs.sync_dir(&dir).unwrap();
        let mut f = vfs.open_append(&path).unwrap();
        f.write_all(b" world").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        let h = vfs.open_read(&path).unwrap();
        assert_eq!(h.len().unwrap(), 11);
        let mut buf = [0u8; 5];
        h.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        drop(h);
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        assert!(vfs.exists(&path));
        let renamed = dir.join("renamed.bin");
        vfs.rename(&path, &renamed).unwrap();
        assert_eq!(vfs.list(&dir).unwrap(), vec![renamed.clone()]);
        vfs.remove_file(&renamed).unwrap();
        assert!(!vfs.exists(&renamed));
        fs::remove_dir_all(&dir).unwrap();
    }
}
