//! Subgraph extraction: edge-filtered subgraphs (the candidate graphs
//! `G≥ε` of BiT-PC) and vertex-induced subgraphs (scalability sampling).

use crate::builder;
use crate::graph::{BipartiteGraph, EdgeId};

/// An edge-filtered subgraph together with the mapping from its edge ids
/// back to the parent graph's edge ids.
#[derive(Debug, Clone)]
pub struct EdgeSubgraph {
    /// The extracted graph. Vertex layers and ids are unchanged from the
    /// parent; only the edge set (and hence degrees/priorities) differs.
    pub graph: BipartiteGraph,
    /// `new_to_old[new_edge] = old_edge` in the parent graph.
    pub new_to_old: Vec<EdgeId>,
}

/// Extracts the subgraph containing exactly the edges for which `keep`
/// returns `true`. Vertices are not relabelled, so ids remain comparable
/// with the parent graph; degrees and priorities are recomputed for the
/// reduced edge set.
pub fn edge_subgraph<F: FnMut(EdgeId) -> bool>(g: &BipartiteGraph, mut keep: F) -> EdgeSubgraph {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut new_to_old: Vec<EdgeId> = Vec::new();
    for e in g.edges() {
        if keep(e) {
            let (u, v) = g.edge(e);
            pairs.push((g.layer_index(u), g.layer_index(v)));
            new_to_old.push(e);
        }
    }
    // Parent edges are sorted/deduplicated, so the filtered list is too and
    // `new_to_old` stays aligned with the rebuilt edge order.
    let graph = builder::from_pairs(g.num_upper(), g.num_lower(), pairs)
        .expect("subgraph of a valid graph is valid"); // xtask:allow(no-panic-lib) edges of a valid graph stay in range after filtering, so the builder cannot fail
    debug_assert_eq!(graph.num_edges() as usize, new_to_old.len());
    EdgeSubgraph { graph, new_to_old }
}

/// Extracts the subgraph induced by the vertices for which the masks are
/// `true` (`keep_upper[i]` addresses upper-layer index `i`, `keep_lower[j]`
/// lower-layer index `j`). Kept vertices are relabelled compactly in each
/// layer, preserving relative order.
pub fn vertex_induced_subgraph(
    g: &BipartiteGraph,
    keep_upper: &[bool],
    keep_lower: &[bool],
) -> BipartiteGraph {
    debug_assert_eq!(keep_upper.len(), g.num_upper() as usize);
    debug_assert_eq!(keep_lower.len(), g.num_lower() as usize);

    let relabel = |mask: &[bool]| -> (Vec<u32>, u32) {
        let mut map = vec![u32::MAX; mask.len()];
        let mut next = 0u32;
        for (i, &k) in mask.iter().enumerate() {
            if k {
                map[i] = next;
                next += 1;
            }
        }
        (map, next)
    };
    let (upper_map, n_upper) = relabel(keep_upper);
    let (lower_map, n_lower) = relabel(keep_lower);

    let mut pairs = Vec::new();
    for e in g.edges() {
        let (u, v) = g.edge(e);
        let (ui, vi) = (g.layer_index(u) as usize, g.layer_index(v) as usize);
        if keep_upper[ui] && keep_lower[vi] {
            pairs.push((upper_map[ui], lower_map[vi]));
        }
    }
    // xtask:allow(no-panic-lib) relabelled pairs are in range by construction of the maps, so the builder cannot fail
    builder::from_pairs(n_upper, n_lower, pairs).expect("induced subgraph of a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn fig4_graph() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
                (2, 3),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn edge_subgraph_filters_and_maps() {
        let g = fig4_graph();
        let sub = edge_subgraph(&g, |e| e.0 % 2 == 0);
        assert_eq!(sub.graph.num_edges(), 6);
        assert_eq!(sub.graph.num_upper(), g.num_upper());
        assert_eq!(sub.graph.num_lower(), g.num_lower());
        for (new, &old) in sub.new_to_old.iter().enumerate() {
            let (nu, nv) = sub.graph.edge(EdgeId(new as u32));
            let (ou, ov) = g.edge(old);
            assert_eq!(sub.graph.layer_index(nu), g.layer_index(ou));
            assert_eq!(sub.graph.layer_index(nv), g.layer_index(ov));
        }
    }

    #[test]
    fn edge_subgraph_keep_all_is_identity() {
        let g = fig4_graph();
        let sub = edge_subgraph(&g, |_| true);
        assert_eq!(sub.graph.edge_pairs(), g.edge_pairs());
    }

    #[test]
    fn edge_subgraph_keep_none_is_empty() {
        let g = fig4_graph();
        let sub = edge_subgraph(&g, |_| false);
        assert_eq!(sub.graph.num_edges(), 0);
        assert_eq!(sub.graph.num_vertices(), g.num_vertices());
    }

    #[test]
    fn vertex_induced_relabels_compactly() {
        let g = fig4_graph();
        // Keep u0,u1 and v0,v1 — the 2-bitruss block of Figure 4.
        let keep_u = vec![true, true, false, false];
        let keep_v = vec![true, true, false, false, false];
        let h = vertex_induced_subgraph(&g, &keep_u, &keep_v);
        assert_eq!(h.num_upper(), 2);
        assert_eq!(h.num_lower(), 2);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.edge_pairs(), vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn vertex_induced_drops_dangling_edges() {
        let g = fig4_graph();
        let keep_u = vec![true, false, false, false];
        let keep_v = vec![false, true, false, false, false];
        let h = vertex_induced_subgraph(&g, &keep_u, &keep_v);
        assert_eq!(h.num_edges(), 1); // only (u0, v1) survives
        assert_eq!(h.edge_pairs(), vec![(0, 0)]);
    }
}
