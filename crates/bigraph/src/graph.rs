//! The immutable CSR bipartite graph.

use std::fmt;

/// Identifier of a vertex in the unified id space.
///
/// Lower-layer vertices occupy ids `0..num_lower`, upper-layer vertices
/// occupy `num_lower..num_lower + num_upper`. This reproduces the paper's
/// convention that `u.id > v.id` for every `u ∈ U(G)`, `v ∈ L(G)`, which the
/// priority order (Definition 7) relies on for tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(pub u32);

/// Identifier of an edge; dense in `0..num_edges`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub u32);

impl VertexId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An immutable bipartite graph in CSR form.
///
/// Every adjacency list is stored twice:
///
/// * sorted ascending by neighbour **vertex id** — used for merge
///   intersections (the BiT-BS baseline) and `O(log d)` edge lookup;
/// * sorted ascending by neighbour **priority** — used by the
///   priority-obeyed wedge enumeration, where scans stop as soon as a
///   neighbour's priority reaches the start vertex's priority.
///
/// Construct through [`crate::GraphBuilder`].
#[derive(Clone)]
pub struct BipartiteGraph {
    pub(crate) num_upper: u32,
    pub(crate) num_lower: u32,
    /// Global id of the upper endpoint of each edge.
    pub(crate) edge_upper: Vec<u32>,
    /// Global id of the lower endpoint of each edge.
    pub(crate) edge_lower: Vec<u32>,
    /// CSR offsets over all vertices, length `n + 1`.
    pub(crate) offsets: Vec<usize>,
    /// Neighbours sorted by vertex id.
    pub(crate) nbr_by_id: Vec<u32>,
    /// Edge ids parallel to `nbr_by_id`.
    pub(crate) edge_by_id: Vec<u32>,
    /// Neighbours sorted by priority (ascending).
    pub(crate) nbr_by_pri: Vec<u32>,
    /// Edge ids parallel to `nbr_by_pri`.
    pub(crate) edge_by_pri: Vec<u32>,
    /// Priority rank of each vertex: `priority[v] ∈ [0, n)`, higher is
    /// higher priority. `p(u) > p(v)` iff `(d(u), u.id) > (d(v), v.id)`.
    pub(crate) priority: Vec<u32>,
}

impl BipartiteGraph {
    /// Number of upper-layer vertices (`|U(G)|`).
    #[inline]
    pub fn num_upper(&self) -> u32 {
        self.num_upper
    }

    /// Number of lower-layer vertices (`|L(G)|`).
    #[inline]
    pub fn num_lower(&self) -> u32 {
        self.num_lower
    }

    /// Total number of vertices (`|V(G)|`).
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_upper + self.num_lower
    }

    /// Number of edges (`|E(G)|`).
    #[inline]
    pub fn num_edges(&self) -> u32 {
        self.edge_upper.len() as u32
    }

    /// `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edge_upper.is_empty()
    }

    /// Whether a vertex lies in the upper layer.
    #[inline]
    pub fn is_upper(&self, v: VertexId) -> bool {
        v.0 >= self.num_lower
    }

    /// Whether a vertex lies in the lower layer.
    #[inline]
    pub fn is_lower(&self, v: VertexId) -> bool {
        v.0 < self.num_lower
    }

    /// Global id of the `i`-th upper-layer vertex.
    #[inline]
    pub fn upper(&self, i: u32) -> VertexId {
        debug_assert!(i < self.num_upper);
        VertexId(self.num_lower + i)
    }

    /// Global id of the `i`-th lower-layer vertex.
    #[inline]
    pub fn lower(&self, i: u32) -> VertexId {
        debug_assert!(i < self.num_lower);
        VertexId(i)
    }

    /// Layer-local index of a vertex (its position within its own layer).
    #[inline]
    pub fn layer_index(&self, v: VertexId) -> u32 {
        if self.is_upper(v) {
            v.0 - self.num_lower
        } else {
            v.0
        }
    }

    /// Iterator over all vertices (lower layer first).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices()).map(VertexId)
    }

    /// Iterator over upper-layer vertices.
    pub fn upper_vertices(&self) -> impl Iterator<Item = VertexId> {
        let lo = self.num_lower;
        (lo..lo + self.num_upper).map(VertexId)
    }

    /// Iterator over lower-layer vertices.
    pub fn lower_vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_lower).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges()).map(EdgeId)
    }

    /// Endpoints of an edge as `(upper, lower)` global vertex ids.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (VertexId, VertexId) {
        (
            VertexId(self.edge_upper[e.index()]),
            VertexId(self.edge_lower[e.index()]),
        )
    }

    /// Degree of a vertex.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as u32
    }

    /// Priority rank of a vertex (Definition 7): in `[0, n)`, higher value
    /// means higher priority.
    #[inline]
    pub fn priority(&self, v: VertexId) -> u32 {
        self.priority[v.index()]
    }

    /// Neighbours of `v` with their edge ids, sorted ascending by
    /// neighbour vertex id.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let range = self.offsets[v.index()]..self.offsets[v.index() + 1];
        self.nbr_by_id[range.clone()]
            .iter()
            .zip(&self.edge_by_id[range])
            .map(|(&n, &e)| (VertexId(n), EdgeId(e)))
    }

    /// Neighbours of `v` with their edge ids, sorted ascending by
    /// neighbour priority.
    #[inline]
    pub fn neighbors_by_priority(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let range = self.offsets[v.index()]..self.offsets[v.index() + 1];
        self.nbr_by_pri[range.clone()]
            .iter()
            .zip(&self.edge_by_pri[range])
            .map(|(&n, &e)| (VertexId(n), EdgeId(e)))
    }

    /// Raw id-sorted neighbour slice of `v` (global ids). Hot-loop access.
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[u32] {
        &self.nbr_by_id[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Raw id-sorted edge-id slice parallel to [`Self::neighbor_slice`].
    #[inline]
    pub fn neighbor_edge_slice(&self, v: VertexId) -> &[u32] {
        &self.edge_by_id[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Raw priority-sorted neighbour slice of `v` (global ids).
    #[inline]
    pub fn pri_neighbor_slice(&self, v: VertexId) -> &[u32] {
        &self.nbr_by_pri[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Raw priority-sorted edge-id slice parallel to
    /// [`Self::pri_neighbor_slice`].
    #[inline]
    pub fn pri_neighbor_edge_slice(&self, v: VertexId) -> &[u32] {
        &self.edge_by_pri[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The edge connecting `a` and `b`, if it exists. The two vertices may
    /// be given in either order but must lie in different layers.
    pub fn edge_between(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        if self.is_upper(a) == self.is_upper(b) {
            return None;
        }
        // Search the smaller adjacency list.
        let (from, to) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let nbrs = self.neighbor_slice(from);
        let pos = nbrs.binary_search(&to.0).ok()?;
        Some(EdgeId(self.edge_by_id[self.offsets[from.index()] + pos]))
    }

    /// `true` if the graph contains the edge `(a, b)`.
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.edge_between(a, b).is_some()
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> u32 {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// `Σ_{(u,v) ∈ E} min{d(u), d(v)}` — the paper's bound on counting time
    /// and BE-Index size.
    pub fn sum_min_degree(&self) -> u64 {
        self.edges()
            .map(|e| {
                let (u, v) = self.edge(e);
                self.degree(u).min(self.degree(v)) as u64
            })
            .sum()
    }

    /// All edges as `(upper_layer_index, lower_layer_index)` pairs, useful
    /// for round-trip tests and serialization.
    pub fn edge_pairs(&self) -> Vec<(u32, u32)> {
        (0..self.num_edges())
            .map(|i| {
                let e = EdgeId(i);
                let (u, v) = self.edge(e);
                (self.layer_index(u), self.layer_index(v))
            })
            .collect()
    }

    /// Approximate heap footprint of the graph structure in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.edge_upper.len() * 8
            + self.offsets.len() * 8
            + self.nbr_by_id.len() * 16
            + self.priority.len() * 4
    }
}

impl fmt::Debug for BipartiteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BipartiteGraph")
            .field("num_upper", &self.num_upper)
            .field("num_lower", &self.num_lower)
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn ids_and_layers() {
        // Figure 4(a) of the paper: 4 upper (u0..u3), 5 lower (v0..v4).
        let g = GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
                (2, 3),
                (3, 4),
            ])
            .build()
            .unwrap();
        assert_eq!(g.num_upper(), 4);
        assert_eq!(g.num_lower(), 5);
        assert_eq!(g.num_edges(), 11);
        // Upper ids strictly greater than lower ids.
        for u in g.upper_vertices() {
            for v in g.lower_vertices() {
                assert!(u.0 > v.0);
            }
        }
        let u2 = g.upper(2);
        assert!(g.is_upper(u2));
        assert_eq!(g.layer_index(u2), 2);
        assert_eq!(g.degree(u2), 4);
    }

    #[test]
    fn edge_lookup() {
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 1)])
            .build()
            .unwrap();
        let u0 = g.upper(0);
        let u1 = g.upper(1);
        let v0 = g.lower(0);
        let v1 = g.lower(1);
        assert!(g.has_edge(u0, v0));
        assert!(g.has_edge(v0, u0));
        assert!(!g.has_edge(u1, v0));
        // Same-layer queries are never edges.
        assert!(!g.has_edge(u0, u1));
        assert!(!g.has_edge(v0, v1));
        let e = g.edge_between(u0, v1).unwrap();
        assert_eq!(g.edge(e), (u0, v1));
    }

    #[test]
    fn priority_respects_degree_then_id() {
        // d(v0)=2, d(v1)=1, d(u0)=2, d(u1)=1.
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 0)])
            .build()
            .unwrap();
        let u0 = g.upper(0);
        let u1 = g.upper(1);
        let v0 = g.lower(0);
        let v1 = g.lower(1);
        // Degrees dominate.
        assert!(g.priority(u0) > g.priority(u1));
        assert!(g.priority(v0) > g.priority(v1));
        // Ties broken by global id: u0 (id 2+0=2) vs v0 (id 0), both deg 2.
        assert!(g.priority(u0) > g.priority(v0));
        assert!(g.priority(u1) > g.priority(v1));
        // Priorities are a permutation of 0..n.
        let mut ps: Vec<u32> = g.vertices().map(|v| g.priority(v)).collect();
        ps.sort_unstable();
        assert_eq!(ps, (0..g.num_vertices()).collect::<Vec<_>>());
    }

    #[test]
    fn adjacency_orders() {
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (0, 2), (1, 0), (2, 0)])
            .build()
            .unwrap();
        for v in g.vertices() {
            let by_id: Vec<u32> = g.neighbors(v).map(|(n, _)| n.0).collect();
            let mut sorted = by_id.clone();
            sorted.sort_unstable();
            assert_eq!(by_id, sorted, "id order for {v:?}");

            let by_pri: Vec<u32> = g
                .neighbors_by_priority(v)
                .map(|(n, _)| g.priority(n))
                .collect();
            let mut sorted = by_pri.clone();
            sorted.sort_unstable();
            assert_eq!(by_pri, sorted, "priority order for {v:?}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.sum_min_degree(), 0);
    }
}
