//! Plain-text edge-list I/O.
//!
//! The accepted format matches KONECT-style bipartite edge lists: one edge
//! per line as two whitespace-separated integers `upper lower`, with `%` or
//! `#` comment lines. Indices may start at 0 or 1; 1-based files are the
//! KONECT default, so [`read_edge_list`] takes the base explicitly.

use std::fs::File; // xtask:allow(vfs-only-io) dataset edge-list I/O sits below the persist layer in the crate DAG; edge lists are read-once inputs, not crash-consistent store state
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::{Error, Result};
use crate::graph::BipartiteGraph;

/// Index base of an edge-list file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexBase {
    /// Vertices are numbered from 0.
    Zero,
    /// Vertices are numbered from 1 (KONECT default).
    One,
}

impl IndexBase {
    #[inline]
    fn rebase(self, raw: u32, line: usize) -> Result<u32> {
        match self {
            IndexBase::Zero => Ok(raw),
            IndexBase::One => raw.checked_sub(1).ok_or(Error::Parse {
                line,
                message: "vertex index 0 in a 1-based file".into(),
            }),
        }
    }
}

/// Reads a bipartite edge list from any reader.
///
/// If any comment line *before the first edge* is a size header of the
/// form written by [`write_edge_list`]
/// (`% bipartite edge list: U upper, L lower, …`), the declared layer
/// sizes are honoured, so trailing isolated vertices survive a round trip
/// even when the header follows other `%`/`#` banner lines. The first
/// header found wins; headers after the first edge are ignored as plain
/// comments.
pub fn read_edge_list<R: Read>(reader: R, base: IndexBase) -> Result<BipartiteGraph> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    let mut declared = false;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            if !declared && builder.staged_edges() == 0 {
                if let Some((upper, lower)) = parse_size_header(line, EDGE_LIST_HEADER) {
                    builder = builder.with_upper(upper).with_lower(lower);
                    declared = true;
                }
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, line_no: usize| -> Result<u32> {
            let tok = tok.ok_or(Error::Parse {
                line: line_no,
                message: "expected two vertex indices".into(),
            })?;
            tok.parse::<u32>().map_err(|_| Error::Parse {
                line: line_no,
                message: format!("invalid vertex index {tok:?}"),
            })
        };
        let u = parse(it.next(), line_no)?;
        let v = parse(it.next(), line_no)?;
        // Extra columns (timestamps/weights in KONECT) are ignored.
        builder.push_edge(base.rebase(u, line_no)?, base.rebase(v, line_no)?);
    }
    builder.build()
}

/// Reads a bipartite edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, base: IndexBase) -> Result<BipartiteGraph> {
    // xtask:allow(vfs-only-io) read-once dataset input, not store state
    read_edge_list(File::open(path)?, base)
}

/// Prefix of the size header written by [`write_edge_list`].
const EDGE_LIST_HEADER: &str = "% bipartite edge list:";

/// Parses a `{prefix} U upper, L lower, …` size header.
///
/// Shared by every plain-text format in the suite that records layer
/// sizes in a comment line (edge lists here, decomposition files in
/// `bitruss-core`), so the formats agree on how declared sizes — and
/// hence isolated vertices — survive a round trip.
pub fn parse_size_header(line: &str, prefix: &str) -> Option<(u32, u32)> {
    let rest = line.strip_prefix(prefix)?;
    let mut it = rest.split(',').map(str::trim);
    let upper = it.next()?.strip_suffix(" upper")?.parse().ok()?;
    let lower = it.next()?.strip_suffix(" lower")?.parse().ok()?;
    Some((upper, lower))
}

/// Writes the graph as a 0-based edge list (one `upper lower` pair per
/// line) preceded by a `%` header recording the layer sizes.
pub fn write_edge_list<W: Write>(g: &BipartiteGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "% bipartite edge list: {} upper, {} lower, {} edges (0-based)",
        g.num_upper(),
        g.num_lower(),
        g.num_edges()
    )?;
    for e in g.edges() {
        let (u, v) = g.edge(e);
        writeln!(w, "{} {}", g.layer_index(u), g.layer_index(v))?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph to a file path; see [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(g: &BipartiteGraph, path: P) -> Result<()> {
    // xtask:allow(vfs-only-io) dataset export, not crash-consistent store state
    write_edge_list(g, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "% a comment\n# another\n\n0 0\n0 1\n1 0 999\n";
        let g = read_edge_list(text.as_bytes(), IndexBase::Zero).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_pairs(), vec![(0, 0), (0, 1), (1, 0)]);
    }

    #[test]
    fn one_based_rebase() {
        let text = "1 1\n1 2\n2 1\n";
        let g = read_edge_list(text.as_bytes(), IndexBase::One).unwrap();
        assert_eq!(g.edge_pairs(), vec![(0, 0), (0, 1), (1, 0)]);
    }

    #[test]
    fn zero_in_one_based_file_is_an_error() {
        let err = read_edge_list("0 1\n".as_bytes(), IndexBase::One).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = read_edge_list("0 0\nnot numbers\n".as_bytes(), IndexBase::Zero).unwrap_err();
        match err {
            Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_edge_list("0\n".as_bytes(), IndexBase::Zero).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
    }

    #[test]
    fn round_trip() {
        let g = crate::GraphBuilder::new()
            .add_edges([(0, 0), (0, 2), (1, 1), (3, 0)])
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice(), IndexBase::Zero).unwrap();
        assert_eq!(g.edge_pairs(), h.edge_pairs());
        assert_eq!(g.num_upper(), h.num_upper());
    }

    #[test]
    fn round_trip_preserves_isolated_vertices() {
        // Trailing isolated vertices survive via the size header.
        let g = crate::GraphBuilder::new()
            .with_upper(9)
            .with_lower(11)
            .add_edge(0, 0)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice(), IndexBase::Zero).unwrap();
        assert_eq!(h.num_upper(), 9);
        assert_eq!(h.num_lower(), 11);
    }

    #[test]
    fn size_header_parsing() {
        assert_eq!(
            parse_size_header(
                "% bipartite edge list: 4 upper, 7 lower, 9 edges (0-based)",
                EDGE_LIST_HEADER
            ),
            Some((4, 7))
        );
        assert_eq!(
            parse_size_header("% some other comment", EDGE_LIST_HEADER),
            None
        );
        assert_eq!(
            parse_size_header("# not our header", EDGE_LIST_HEADER),
            None
        );
    }

    #[test]
    fn size_header_after_banner_comments_is_honoured() {
        // A `%` banner ahead of the header must not make the reader drop
        // the declared sizes (regression: only line 1 used to be checked).
        let text = "% KONECT-style banner\n# generated by a tool\n\
                    % bipartite edge list: 5 upper, 6 lower, 1 edges (0-based)\n0 0\n";
        let g = read_edge_list(text.as_bytes(), IndexBase::Zero).unwrap();
        assert_eq!(g.num_upper(), 5);
        assert_eq!(g.num_lower(), 6);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn size_header_after_first_edge_is_ignored() {
        let text = "0 0\n% bipartite edge list: 5 upper, 6 lower, 1 edges (0-based)\n";
        let g = read_edge_list(text.as_bytes(), IndexBase::Zero).unwrap();
        assert_eq!(g.num_upper(), 1);
        assert_eq!(g.num_lower(), 1);
    }
}
