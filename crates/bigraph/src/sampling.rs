//! Deterministic vertex sampling for the scalability experiments
//! (Figure 12: induced subgraphs on 20–100 % of the vertices).
//!
//! A tiny splitmix64 generator keeps the substrate free of external
//! dependencies while staying reproducible across runs and platforms.

use crate::graph::BipartiteGraph;
use crate::subgraph::vertex_induced_subgraph;

/// Minimal splitmix64 PRNG — deterministic, seedable, dependency-free.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire-style rejection-free
    /// multiply-shift; bias negligible for `bound ≪ 2^64`).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Returns the subgraph induced by independently keeping each vertex with
/// probability `percent / 100`, mirroring the paper's "randomly sample 20 %
/// to 100 % vertices of the original graphs, and construct the induced
/// subgraphs" methodology.
///
/// `percent` is clamped to `0..=100`; `percent == 100` returns a clone of
/// the input (all vertices kept).
pub fn sample_vertices_percent(g: &BipartiteGraph, percent: u32, seed: u64) -> BipartiteGraph {
    let percent = percent.min(100);
    if percent == 100 {
        return g.clone();
    }
    let p = f64::from(percent) / 100.0;
    let mut rng = SplitMix64::new(seed);
    let keep_upper: Vec<bool> = (0..g.num_upper()).map(|_| rng.next_f64() < p).collect();
    let keep_lower: Vec<bool> = (0..g.num_lower()).map(|_| rng.next_f64() < p).collect();
    vertex_induced_subgraph(g, &keep_upper, &keep_lower)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn grid_graph(nu: u32, nl: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..nu {
            for v in 0..nl {
                if (u + v) % 3 != 0 {
                    b.push_edge(u, v);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid_graph(40, 40);
        let a = sample_vertices_percent(&g, 50, 7);
        let b = sample_vertices_percent(&g, 50, 7);
        assert_eq!(a.edge_pairs(), b.edge_pairs());
        let c = sample_vertices_percent(&g, 50, 8);
        // Overwhelmingly likely to differ with a different seed.
        assert_ne!(a.edge_pairs(), c.edge_pairs());
    }

    #[test]
    fn hundred_percent_keeps_everything() {
        let g = grid_graph(10, 10);
        let s = sample_vertices_percent(&g, 100, 1);
        assert_eq!(s.edge_pairs(), g.edge_pairs());
    }

    #[test]
    fn zero_percent_keeps_nothing() {
        let g = grid_graph(10, 10);
        let s = sample_vertices_percent(&g, 0, 1);
        assert_eq!(s.num_vertices(), 0);
        assert_eq!(s.num_edges(), 0);
    }

    #[test]
    fn sample_size_roughly_matches_fraction() {
        let g = grid_graph(60, 60);
        let s = sample_vertices_percent(&g, 50, 42);
        let kept = s.num_vertices() as f64 / g.num_vertices() as f64;
        assert!((0.3..0.7).contains(&kept), "kept fraction {kept}");
    }

    #[test]
    fn splitmix_uniformity_smoke() {
        let mut rng = SplitMix64::new(123);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
