//! Disjoint-set forest, used to enumerate connected components of
//! k-bitrusses when extracting communities and to build the nested
//! community forest of `bitruss-core`'s `BitrussHierarchy`.

/// Union-find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        self.merge(a, b).1
    }

    /// Merges the sets containing `a` and `b`, returning the surviving
    /// representative and whether a merge actually happened. The returned
    /// root is what [`Self::find`] yields for both elements afterwards —
    /// callers that key per-component state by root (e.g. the hierarchy
    /// forest build) use it to avoid a second `find`.
    pub fn merge(&mut self, a: u32, b: u32) -> (u32, bool) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return (ra, false);
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        (ra, true)
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.num_components(), 6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.num_components(), 4);
        assert_eq!(uf.set_size(1), 3);
    }

    #[test]
    fn everything_merges_to_one() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(0, i);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.set_size(57), 100);
        for i in 0..100 {
            assert_eq!(uf.find(i), uf.find(0));
        }
    }

    #[test]
    fn merge_reports_the_surviving_root() {
        let mut uf = UnionFind::new(5);
        let (r, merged) = uf.merge(0, 1);
        assert!(merged);
        assert_eq!(r, uf.find(0));
        assert_eq!(r, uf.find(1));
        let (r2, merged2) = uf.merge(1, 0);
        assert!(!merged2);
        assert_eq!(r2, r);
        // Union by size: the bigger {0,1} component's root survives.
        let (r3, _) = uf.merge(2, 0);
        assert_eq!(r3, r);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
    }
}
