//! Deduplicating, validating graph construction.

use crate::error::{Error, Result};
use crate::graph::BipartiteGraph;

/// How vertex priorities (Definition 7 of the paper) are assigned.
///
/// The paper orders by `(degree, id)`, which is what makes the number of
/// priority-obeyed wedges — and hence counting time and BE-Index size —
/// `O(Σ min{d(u), d(v)})` (Lemma 6). Any total order is *correct* (every
/// butterfly still lands in exactly one bloom), so [`PriorityMode::IdOnly`]
/// exists as an ablation knob to measure what the degree ordering buys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PriorityMode {
    /// Definition 7: higher degree ⇒ higher priority, ties by id.
    #[default]
    DegreeThenId,
    /// Ablation: priority = vertex id, ignoring degrees.
    IdOnly,
}

/// Builder assembling a [`BipartiteGraph`] from `(upper, lower)` edge pairs
/// given in layer-local indices (both 0-based).
///
/// Duplicate edges are removed, layer sizes may be declared explicitly (to
/// include isolated vertices) or inferred from the largest index seen.
///
/// ```
/// use bigraph::GraphBuilder;
/// let g = GraphBuilder::new()
///     .add_edge(0, 0)
///     .add_edge(0, 1)
///     .add_edge(1, 0)
///     .add_edge(1, 1)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_edges(), 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32)>,
    declared_upper: Option<u32>,
    declared_lower: Option<u32>,
    priority_mode: PriorityMode,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the number of upper-layer vertices (allows isolated ones).
    pub fn with_upper(mut self, n: u32) -> Self {
        self.declared_upper = Some(n);
        self
    }

    /// Declares the number of lower-layer vertices (allows isolated ones).
    pub fn with_lower(mut self, n: u32) -> Self {
        self.declared_lower = Some(n);
        self
    }

    /// Selects the vertex-priority order; see [`PriorityMode`].
    pub fn with_priority_mode(mut self, mode: PriorityMode) -> Self {
        self.priority_mode = mode;
        self
    }

    /// Pre-allocates capacity for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Adds one edge between upper-layer vertex `u` and lower-layer vertex
    /// `v` (layer-local indices).
    pub fn add_edge(mut self, u: u32, v: u32) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn add_edges<I: IntoIterator<Item = (u32, u32)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// Adds one edge in-place (non-consuming variant for loops).
    pub fn push_edge(&mut self, u: u32, v: u32) {
        self.edges.push((u, v));
    }

    /// Number of (possibly duplicated) edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validates, deduplicates and assembles the final CSR graph.
    pub fn build(self) -> Result<BipartiteGraph> {
        let mut edges = self.edges;

        let seen_upper = edges.iter().map(|&(u, _)| u + 1).max().unwrap_or(0);
        let seen_lower = edges.iter().map(|&(_, v)| v + 1).max().unwrap_or(0);
        let num_upper = self.declared_upper.unwrap_or(seen_upper);
        let num_lower = self.declared_lower.unwrap_or(seen_lower);
        if seen_upper > num_upper {
            return Err(Error::VertexOutOfRange {
                index: seen_upper - 1,
                layer_size: num_upper,
                upper: true,
            });
        }
        if seen_lower > num_lower {
            return Err(Error::VertexOutOfRange {
                index: seen_lower - 1,
                layer_size: num_lower,
                upper: false,
            });
        }
        let n = (num_upper as u64) + (num_lower as u64);
        if n > u32::MAX as u64 {
            return Err(Error::TooLarge(format!("{n} vertices")));
        }

        edges.sort_unstable();
        edges.dedup();
        if edges.len() > u32::MAX as usize {
            return Err(Error::TooLarge(format!("{} edges", edges.len())));
        }

        Ok(assemble(num_upper, num_lower, &edges, self.priority_mode))
    }
}

/// Assembles the CSR arrays. `edges` must be sorted and deduplicated,
/// given as `(upper_local, lower_local)`.
fn assemble(
    num_upper: u32,
    num_lower: u32,
    edges: &[(u32, u32)],
    mode: PriorityMode,
) -> BipartiteGraph {
    let n = (num_upper + num_lower) as usize;
    let m = edges.len();

    let mut edge_upper = Vec::with_capacity(m);
    let mut edge_lower = Vec::with_capacity(m);
    for &(u, v) in edges {
        edge_upper.push(num_lower + u);
        edge_lower.push(v);
    }

    // Degree pass.
    let mut offsets = vec![0usize; n + 1];
    for i in 0..m {
        offsets[edge_upper[i] as usize + 1] += 1;
        offsets[edge_lower[i] as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }

    // Fill pass: neighbours of lower vertices arrive in (upper) id order
    // because `edges` is sorted by upper first; neighbours of upper vertices
    // arrive in lower-id order because within one upper vertex the pairs are
    // sorted by lower id. Both sides therefore come out id-sorted.
    let total = 2 * m;
    let mut nbr_by_id = vec![0u32; total];
    let mut edge_by_id = vec![0u32; total];
    let mut cursor = offsets.clone();
    for (i, (&u, &v)) in edge_upper.iter().zip(edge_lower.iter()).enumerate() {
        let cu = cursor[u as usize];
        nbr_by_id[cu] = v;
        edge_by_id[cu] = i as u32;
        cursor[u as usize] += 1;
        let cv = cursor[v as usize];
        nbr_by_id[cv] = u;
        edge_by_id[cv] = i as u32;
        cursor[v as usize] += 1;
    }

    // Priority ranks (Definition 7, or the ablation order).
    let mut order: Vec<u32> = (0..n as u32).collect();
    match mode {
        PriorityMode::DegreeThenId => order
            .sort_unstable_by_key(|&v| ((offsets[v as usize + 1] - offsets[v as usize]) as u32, v)),
        PriorityMode::IdOnly => {}
    }
    let mut priority = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        priority[v as usize] = rank as u32;
    }

    // Priority-sorted adjacency: copy and sort each list by priority key.
    let mut nbr_by_pri = nbr_by_id.clone();
    let mut edge_by_pri = edge_by_id.clone();
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    for v in 0..n {
        let range = offsets[v]..offsets[v + 1];
        if range.len() <= 1 {
            continue;
        }
        scratch.clear();
        scratch.extend(
            nbr_by_pri[range.clone()]
                .iter()
                .zip(&edge_by_pri[range.clone()])
                .map(|(&nb, &e)| (nb, e)),
        );
        scratch.sort_unstable_by_key(|&(nb, _)| priority[nb as usize]);
        for (k, &(nb, e)) in scratch.iter().enumerate() {
            nbr_by_pri[range.start + k] = nb;
            edge_by_pri[range.start + k] = e;
        }
    }

    BipartiteGraph {
        num_upper,
        num_lower,
        edge_upper,
        edge_lower,
        offsets,
        nbr_by_id,
        edge_by_id,
        nbr_by_pri,
        edge_by_pri,
        priority,
    }
}

/// Builds a graph directly from already layer-local, possibly unsorted,
/// possibly duplicated edge pairs. Convenience used by generators.
pub(crate) fn from_pairs(
    num_upper: u32,
    num_lower: u32,
    edges: Vec<(u32, u32)>,
) -> Result<BipartiteGraph> {
    GraphBuilder {
        edges,
        declared_upper: Some(num_upper),
        declared_lower: Some(num_lower),
        priority_mode: PriorityMode::default(),
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let g = GraphBuilder::new()
            .add_edges([(1, 1), (0, 0), (1, 1), (0, 1), (0, 0)])
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_pairs(), vec![(0, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn declared_sizes_allow_isolated_vertices() {
        let g = GraphBuilder::new()
            .with_upper(10)
            .with_lower(7)
            .add_edge(0, 0)
            .build()
            .unwrap();
        assert_eq!(g.num_upper(), 10);
        assert_eq!(g.num_lower(), 7);
        assert_eq!(g.degree(g.upper(9)), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = GraphBuilder::new()
            .with_upper(2)
            .add_edge(5, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::VertexOutOfRange { upper: true, .. }));
        let err = GraphBuilder::new()
            .with_lower(1)
            .add_edge(0, 3)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::VertexOutOfRange { upper: false, .. }));
    }

    #[test]
    fn id_only_priority_is_the_identity_order() {
        let g = GraphBuilder::new()
            .with_priority_mode(PriorityMode::IdOnly)
            .add_edges([(0, 0), (0, 1), (1, 0), (2, 0)])
            .build()
            .unwrap();
        for v in g.vertices() {
            assert_eq!(g.priority(v), v.0);
        }
        // Priority-sorted adjacency degenerates to id-sorted.
        for v in g.vertices() {
            let by_id: Vec<_> = g.neighbors(v).collect();
            let by_pri: Vec<_> = g.neighbors_by_priority(v).collect();
            assert_eq!(by_id, by_pri);
        }
    }

    #[test]
    fn csr_is_consistent() {
        let g = GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 0), (2, 2), (1, 2)])
            .build()
            .unwrap();
        // Every edge appears in exactly two adjacency lists.
        let mut appearance = vec![0u32; g.num_edges() as usize];
        for v in g.vertices() {
            for (n, e) in g.neighbors(v) {
                let (u, l) = g.edge(e);
                assert!(u == v || l == v);
                assert!(u == n || l == n);
                appearance[e.index()] += 1;
            }
        }
        assert!(appearance.iter().all(|&c| c == 2));
        // Degree sums to 2m.
        let total: u32 = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }
}
