//! Storage-agnostic adjacency access for the butterfly kernels.
//!
//! The counting and BE-Index construction kernels only ever consume a
//! vertex's adjacency in two shapes:
//!
//! * the **priority-capped prefix** of the priority-sorted list — the
//!   wedge scans break at the first neighbor whose priority reaches the
//!   start vertex's, so a loader that returns exactly the prefix with
//!   priority `< cap` preserves the paper's
//!   `O(Σ min{d(u), d(v)})` bound without the kernel ever seeing the
//!   rest of the list;
//! * the **id-sorted list** — for sorted-list intersection
//!   (`edge_between`-style lookups and galloping).
//!
//! [`NeighborAccess`] abstracts exactly those two loads (plus the
//! scalar lookups the kernels need), so the same generic kernels run
//! bit-identically over the in-memory [`BipartiteGraph`] CSR and over
//! the compressed, disk-paged adjacency of the out-of-core storage
//! tier (`bitruss_storage`). Loads *fill caller buffers* rather than
//! return slices: a paged backend decodes bytes it does not keep
//! resident, so it has no slice to lend — and the copy is the same
//! `O(prefix)` as the scan that follows it.

use crate::error::Result;
use crate::graph::{BipartiteGraph, VertexId};

/// Read access to a priority-ordered bipartite adjacency structure.
///
/// Implementations must present the *same logical graph* contract as
/// [`BipartiteGraph`]: vertices `0..num_vertices()` (lower wing first),
/// a bijective priority assignment, and per-vertex adjacency available
/// both id-sorted and priority-sorted. Two implementations that agree
/// on those views produce bit-identical butterfly counts and BE-Index
/// layouts from the generic kernels.
pub trait NeighborAccess: Sync {
    /// Total number of vertices (both wings).
    fn num_vertices(&self) -> u32;

    /// Number of edges.
    fn num_edges(&self) -> u32;

    /// The vertex's priority (degree-then-id rank; see
    /// [`BipartiteGraph::priority`]).
    fn priority(&self, v: VertexId) -> u32;

    /// The vertex's degree.
    fn degree(&self, v: VertexId) -> u32;

    /// Clears `nbrs`/`edges` and fills them with the prefix of `v`'s
    /// priority-sorted adjacency whose neighbor priority is `< cap`
    /// (neighbor ids and matching edge ids, in ascending-priority
    /// order). `cap = u32::MAX` loads the whole list.
    ///
    /// This is the early-break of the wedge scans turned into a
    /// loader contract: implementations must not touch (or decode)
    /// more than `O(prefix)` of the list beyond what is needed to find
    /// the cut point.
    ///
    /// # Errors
    ///
    /// Disk-backed implementations return [`crate::Error::Io`] /
    /// [`crate::Error::Corrupt`] when the underlying read fails; the
    /// in-memory implementation is infallible.
    fn load_pri_neighbors_below(
        &self,
        v: VertexId,
        cap: u32,
        nbrs: &mut Vec<u32>,
        edges: &mut Vec<u32>,
    ) -> Result<()>;

    /// Clears `nbrs`/`edges` and fills them with `v`'s adjacency in
    /// ascending neighbor-id order (neighbor ids and matching edge
    /// ids) — the shape sorted-list intersection consumes.
    ///
    /// # Errors
    ///
    /// Same contract as [`NeighborAccess::load_pri_neighbors_below`].
    fn load_neighbors_by_id(
        &self,
        v: VertexId,
        nbrs: &mut Vec<u32>,
        edges: &mut Vec<u32>,
    ) -> Result<()>;
}

impl NeighborAccess for BipartiteGraph {
    fn num_vertices(&self) -> u32 {
        BipartiteGraph::num_vertices(self)
    }

    fn num_edges(&self) -> u32 {
        BipartiteGraph::num_edges(self)
    }

    fn priority(&self, v: VertexId) -> u32 {
        BipartiteGraph::priority(self, v)
    }

    fn degree(&self, v: VertexId) -> u32 {
        BipartiteGraph::degree(self, v)
    }

    fn load_pri_neighbors_below(
        &self,
        v: VertexId,
        cap: u32,
        nbrs: &mut Vec<u32>,
        edges: &mut Vec<u32>,
    ) -> Result<()> {
        nbrs.clear();
        edges.clear();
        let ns = self.pri_neighbor_slice(v);
        let es = self.pri_neighbor_edge_slice(v);
        // The list ascends by neighbor priority, so the prefix boundary
        // is a partition point.
        let cut = if cap == u32::MAX {
            ns.len()
        } else {
            ns.partition_point(|&w| BipartiteGraph::priority(self, VertexId(w)) < cap)
        };
        nbrs.extend_from_slice(&ns[..cut]);
        edges.extend_from_slice(&es[..cut]);
        Ok(())
    }

    fn load_neighbors_by_id(
        &self,
        v: VertexId,
        nbrs: &mut Vec<u32>,
        edges: &mut Vec<u32>,
    ) -> Result<()> {
        nbrs.clear();
        edges.clear();
        nbrs.extend_from_slice(self.neighbor_slice(v));
        edges.extend_from_slice(self.neighbor_edge_slice(v));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 1),
                (3, 2),
                (2, 3),
                (3, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn capped_load_matches_the_break_scan() {
        let g = fig1();
        let mut nbrs = Vec::new();
        let mut edges = Vec::new();
        for v in g.vertices() {
            for cap in 0..=g.num_vertices() {
                g.load_pri_neighbors_below(v, cap, &mut nbrs, &mut edges)
                    .unwrap();
                // Reference: the explicit break loop from the kernels.
                let mut want_n = Vec::new();
                let mut want_e = Vec::new();
                for (&w, &e) in g
                    .pri_neighbor_slice(v)
                    .iter()
                    .zip(g.pri_neighbor_edge_slice(v))
                {
                    if BipartiteGraph::priority(&g, VertexId(w)) >= cap {
                        break;
                    }
                    want_n.push(w);
                    want_e.push(e);
                }
                assert_eq!(nbrs, want_n, "v={v:?} cap={cap}");
                assert_eq!(edges, want_e, "v={v:?} cap={cap}");
            }
            // The sentinel cap loads everything.
            g.load_pri_neighbors_below(v, u32::MAX, &mut nbrs, &mut edges)
                .unwrap();
            assert_eq!(nbrs, g.pri_neighbor_slice(v));
            assert_eq!(edges, g.pri_neighbor_edge_slice(v));
        }
    }

    #[test]
    fn id_sorted_load_matches_the_slices() {
        let g = fig1();
        let mut nbrs = vec![99]; // pre-filled: loads must clear
        let mut edges = vec![99];
        for v in g.vertices() {
            g.load_neighbors_by_id(v, &mut nbrs, &mut edges).unwrap();
            assert_eq!(nbrs, g.neighbor_slice(v));
            assert_eq!(edges, g.neighbor_edge_slice(v));
        }
    }

    #[test]
    fn scalar_accessors_delegate() {
        let g = fig1();
        assert_eq!(NeighborAccess::num_vertices(&g), g.num_vertices());
        assert_eq!(NeighborAccess::num_edges(&g), g.num_edges());
        for v in g.vertices() {
            assert_eq!(NeighborAccess::degree(&g, v), g.degree(v));
            assert_eq!(NeighborAccess::priority(&g, v), g.priority(v));
        }
    }
}
