//! Progress and cancellation plumbing for long-running passes.
//!
//! Every expensive phase of the suite — butterfly counting, BE-Index
//! construction, peeling, hierarchy builds — accepts an
//! [`EngineObserver`] through its `*_observed` entry point. The observer
//! receives phase boundaries and coarse progress ticks, and may request
//! cancellation at any time; a cancelled pass unwinds cleanly with
//! [`Error::Cancelled`] instead of aborting the
//! process. The trait lives in the substrate crate so the counting,
//! index and decomposition layers can all share one definition; the
//! `bitruss-core` engine re-exports it as its public observer API.
//!
//! Observers must be cheap: hot loops call them every
//! [`CHECK_INTERVAL`]-ish units of work. The default method bodies are
//! no-ops, so a `struct Quiet; impl EngineObserver for Quiet {}` observer
//! costs nothing but the virtual call.

use crate::error::{Error, Result};

/// How often (in units of work: vertices enumerated, edges peeled) the
/// observed passes poll the observer. Public so tests can build
/// cancellation fixtures that trip after a known number of polls.
pub const CHECK_INTERVAL: u64 = 1024;

/// The phases of a decomposition session, in the order a typical run
/// visits them. Marked `#[non_exhaustive]`: future passes (e.g. sharded
/// I/O) may add phases without a semver break.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Per-edge butterfly support counting.
    Counting,
    /// BE-Index construction.
    IndexBuild,
    /// Bottom-up peeling (support updates and φ assignment).
    Peeling,
    /// Coarse band partitioning of the φ range (the two-phase parallel
    /// engine's phase 1: threshold peeling that assigns each edge a
    /// band). Progress is reported in edges assigned.
    Partition,
    /// Stitching per-band φ results back into one array and settling
    /// any boundary migrations (the two-phase engine's final pass).
    Stitch,
    /// Candidate-subgraph extraction (BiT-PC only).
    Extraction,
    /// Building the bitruss hierarchy index from a finished φ array.
    HierarchyBuild,
    /// Affected-region analysis of a dynamic update batch (the cascade
    /// search bounding which edges a batch can re-assign).
    AffectedRegion,
}

impl Phase {
    /// Short lowercase name, stable across releases (used in logs).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Counting => "counting",
            Phase::IndexBuild => "index-build",
            Phase::Peeling => "peeling",
            Phase::Partition => "partition",
            Phase::Stitch => "stitch",
            Phase::Extraction => "extraction",
            Phase::HierarchyBuild => "hierarchy-build",
            Phase::AffectedRegion => "affected-region",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Observer hooks for long-running passes: phase boundaries, coarse
/// progress, and cooperative cancellation.
///
/// All methods have no-op defaults. Implementations must be [`Sync`]
/// because the parallel engines poll the observer from worker threads.
///
/// # Cancellation
///
/// [`EngineObserver::is_cancelled`] is polled at least once per phase and
/// roughly every [`CHECK_INTERVAL`] units of work inside a phase. Once it
/// returns `true`, the observed pass stops at the next poll and returns
/// [`Error::Cancelled`]; partial results are
/// discarded. Polls may keep happening briefly after the first `true`, so
/// the method must stay idempotent (an `AtomicBool` load is the typical
/// implementation).
pub trait EngineObserver: Sync {
    /// A phase is starting. `total` is the phase's work estimate in the
    /// unit later reported by [`EngineObserver::on_phase_progress`]
    /// (vertices for counting/index build, edges for peeling); `0` when
    /// unknown.
    fn on_phase_start(&self, phase: Phase, total: u64) {
        let _ = (phase, total);
    }

    /// Coarse progress inside a phase: `done` of `total` units complete.
    /// Ticks are monotone per phase but not dense — expect one every
    /// [`CHECK_INTERVAL`]-ish units, not one per unit. The parallel
    /// engines may tick from several worker threads.
    fn on_phase_progress(&self, phase: Phase, done: u64, total: u64) {
        let _ = (phase, done, total);
    }

    /// A phase finished (not called when the run is cancelled mid-phase).
    fn on_phase_end(&self, phase: Phase) {
        let _ = phase;
    }

    /// Return `true` to request cooperative cancellation. Must be cheap
    /// and idempotent; see the trait docs for polling guarantees.
    fn is_cancelled(&self) -> bool {
        false
    }
}

/// The do-nothing observer used by every legacy (un-observed) entry
/// point. Never cancels, so passes run with it are infallible.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl EngineObserver for NoopObserver {}

/// Polls the observer, converting a cancellation request into
/// [`Error::Cancelled`]. Hot loops call this every
/// [`CHECK_INTERVAL`] units of work.
#[inline]
pub fn checkpoint(observer: &dyn EngineObserver) -> Result<()> {
    if observer.is_cancelled() {
        Err(Error::Cancelled)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn noop_observer_never_cancels() {
        let obs = NoopObserver;
        obs.on_phase_start(Phase::Counting, 10);
        obs.on_phase_progress(Phase::Counting, 5, 10);
        obs.on_phase_end(Phase::Counting);
        assert!(!obs.is_cancelled());
        assert!(checkpoint(&obs).is_ok());
    }

    #[test]
    fn checkpoint_surfaces_cancellation() {
        struct Flag(AtomicBool);
        impl EngineObserver for Flag {
            fn is_cancelled(&self) -> bool {
                self.0.load(Ordering::Relaxed)
            }
        }
        let obs = Flag(AtomicBool::new(false));
        assert!(checkpoint(&obs).is_ok());
        obs.0.store(true, Ordering::Relaxed);
        assert!(matches!(checkpoint(&obs), Err(Error::Cancelled)));
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Counting.name(), "counting");
        assert_eq!(Phase::IndexBuild.to_string(), "index-build");
        assert_eq!(Phase::Peeling.name(), "peeling");
        assert_eq!(Phase::Partition.name(), "partition");
        assert_eq!(Phase::Stitch.name(), "stitch");
        assert_eq!(Phase::Extraction.name(), "extraction");
        assert_eq!(Phase::HierarchyBuild.name(), "hierarchy-build");
        assert_eq!(Phase::AffectedRegion.name(), "affected-region");
    }
}
