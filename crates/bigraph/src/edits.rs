//! Edge-list edits: rebuild a CSR graph under a batch of deletions and
//! insertions while tracking how edge ids move.
//!
//! [`BipartiteGraph`] is immutable by design — every algorithm in the
//! suite relies on its dense, sorted edge-id space. Dynamic maintenance
//! therefore works in generations: [`apply_edits`] produces the *next*
//! generation graph plus the id mappings a maintenance layer needs to
//! carry per-edge state (φ, supports) across the edit. Edge ids are
//! assigned by sorted `(upper, lower)` pair order in both generations, so
//! the mapping is a deterministic function of the edit, not of the order
//! updates were supplied in.

use crate::builder::GraphBuilder;
use crate::error::{Error, Result};
use crate::graph::{BipartiteGraph, EdgeId};

/// Sentinel in [`EditedGraph::old_to_new`] for deleted edges.
pub const DELETED: u32 = u32::MAX;

/// The next-generation graph produced by [`apply_edits`], with the edge
/// id mappings needed to migrate per-edge state.
#[derive(Debug, Clone)]
pub struct EditedGraph {
    /// The rebuilt graph. Layer sizes never shrink; they grow when an
    /// inserted edge addresses a vertex beyond the old layer bounds.
    pub graph: BipartiteGraph,
    /// `old_to_new[old_edge] = new_edge`, or [`DELETED`] for edges
    /// removed by the edit.
    pub old_to_new: Vec<u32>,
    /// New edge ids of the inserted pairs, parallel to the `inserts`
    /// argument of [`apply_edits`].
    pub inserted: Vec<EdgeId>,
}

impl EditedGraph {
    /// Migrates a per-edge array across the edit: surviving edges carry
    /// their value to their new id, inserted edges get `fill`.
    pub fn migrate<T: Clone>(&self, old: &[T], fill: T) -> Vec<T> {
        let mut out = vec![fill; self.graph.num_edges() as usize];
        for (old_e, &new_e) in self.old_to_new.iter().enumerate() {
            if new_e != DELETED {
                out[new_e as usize] = old[old_e].clone();
            }
        }
        out
    }
}

/// Applies a batch of edge deletions and insertions to `g`, returning
/// the rebuilt graph and the edge-id mappings.
///
/// `deletes` are edge ids of `g` (each at most once); `inserts` are
/// layer-local `(upper, lower)` pairs that must not collide with a
/// surviving edge or with each other. Inserted pairs may address
/// vertices beyond the current layer sizes, growing the layer.
///
/// # Errors
///
/// [`Error::Invariant`] for an out-of-range or duplicate delete, an
/// insert of an already-present pair, or a duplicate insert;
/// [`Error::TooLarge`] if the grown graph would leave `u32` id space.
pub fn apply_edits(
    g: &BipartiteGraph,
    deletes: &[EdgeId],
    inserts: &[(u32, u32)],
) -> Result<EditedGraph> {
    let m = g.num_edges() as usize;
    let mut dead = vec![false; m];
    for &d in deletes {
        if d.index() >= m {
            return Err(Error::Invariant(format!(
                "delete of {d} out of range ({m} edges)"
            )));
        }
        if std::mem::replace(&mut dead[d.index()], true) {
            return Err(Error::Invariant(format!("edge {d} deleted twice")));
        }
    }

    // Merge survivors and inserts into one (pair, origin) list. The
    // graph's edge ids are already in sorted pair order, so a linear
    // merge against the (small) sorted insert list reproduces the id
    // order GraphBuilder will assign without re-sorting all m edges.
    const INSERT_TAG: u32 = u32::MAX;
    let mut sorted_inserts: Vec<(u32, u32, u32)> = inserts
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| (u, v, i as u32))
        .collect();
    sorted_inserts.sort_unstable();
    for w in sorted_inserts.windows(2) {
        if (w[0].0, w[0].1) == (w[1].0, w[1].1) {
            return Err(Error::Invariant(format!(
                "edge ({}, {}) inserted twice",
                w[0].0, w[0].1
            )));
        }
    }
    let mut entries: Vec<(u32, u32, u32, u32)> =
        Vec::with_capacity(m - deletes.len() + inserts.len());
    let mut ins_at = 0usize;
    let push_inserts_below = |bound: Option<(u32, u32)>,
                              ins_at: &mut usize,
                              entries: &mut Vec<(u32, u32, u32, u32)>|
     -> Result<()> {
        while *ins_at < sorted_inserts.len() {
            let (u, v, i) = sorted_inserts[*ins_at];
            if let Some(b) = bound {
                if (u, v) > b {
                    break;
                }
                if (u, v) == b {
                    return Err(Error::Invariant(format!(
                        "inserted edge ({u}, {v}) already present"
                    )));
                }
            }
            entries.push((u, v, INSERT_TAG, i));
            *ins_at += 1;
        }
        Ok(())
    };
    for e in g.edges() {
        if dead[e.index()] {
            continue;
        }
        let (u, v) = g.edge(e);
        let pair = (g.layer_index(u), g.layer_index(v));
        push_inserts_below(Some(pair), &mut ins_at, &mut entries)?;
        entries.push((pair.0, pair.1, 0, e.0));
    }
    push_inserts_below(None, &mut ins_at, &mut entries)?;

    let num_upper = inserts
        .iter()
        .map(|&(u, _)| u + 1)
        .max()
        .unwrap_or(0)
        .max(g.num_upper());
    let num_lower = inserts
        .iter()
        .map(|&(_, v)| v + 1)
        .max()
        .unwrap_or(0)
        .max(g.num_lower());

    let mut builder = GraphBuilder::new()
        .with_upper(num_upper)
        .with_lower(num_lower)
        .with_edge_capacity(entries.len());
    for &(u, v, _, _) in &entries {
        builder.push_edge(u, v);
    }
    let graph = builder.build()?;
    debug_assert_eq!(graph.num_edges() as usize, entries.len());

    let mut old_to_new = vec![DELETED; m];
    let mut inserted = vec![EdgeId(0); inserts.len()];
    for (new_id, &(_, _, tag, payload)) in entries.iter().enumerate() {
        if tag == INSERT_TAG {
            inserted[payload as usize] = EdgeId(new_id as u32);
        } else {
            old_to_new[payload as usize] = new_id as u32;
        }
    }
    Ok(EditedGraph {
        graph,
        old_to_new,
        inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> BipartiteGraph {
        GraphBuilder::new()
            .add_edges([(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn delete_and_insert_remap_ids() {
        let g = fig1();
        // Delete (1,0) (id 2), insert (2,2) and (3,0).
        let e = g.edge_between(g.upper(1), g.lower(0)).unwrap();
        let edited = apply_edits(&g, &[e], &[(2, 2), (3, 0)]).unwrap();
        assert_eq!(edited.graph.num_edges(), 7);
        assert_eq!(edited.graph.num_upper(), 4); // grown by (3, 0)
        assert_eq!(edited.graph.num_lower(), 3); // grown by (2, 2)
        assert_eq!(edited.old_to_new[e.index()], DELETED);
        // Every surviving old edge maps to the same pair.
        for old in g.edges() {
            let new = edited.old_to_new[old.index()];
            if new == DELETED {
                continue;
            }
            let (ou, ov) = g.edge(old);
            let (nu, nv) = edited.graph.edge(EdgeId(new));
            assert_eq!(g.layer_index(ou), edited.graph.layer_index(nu));
            assert_eq!(g.layer_index(ov), edited.graph.layer_index(nv));
        }
        // Inserted ids point at the inserted pairs, in argument order.
        let (u, v) = edited.graph.edge(edited.inserted[0]);
        assert_eq!(
            (edited.graph.layer_index(u), edited.graph.layer_index(v)),
            (2, 2)
        );
        let (u, v) = edited.graph.edge(edited.inserted[1]);
        assert_eq!(
            (edited.graph.layer_index(u), edited.graph.layer_index(v)),
            (3, 0)
        );
    }

    #[test]
    fn migrate_carries_state() {
        let g = fig1();
        let e = g.edge_between(g.upper(0), g.lower(0)).unwrap();
        let edited = apply_edits(&g, &[e], &[(2, 2)]).unwrap();
        let phi: Vec<u64> = (0..g.num_edges() as u64).collect();
        let moved = edited.migrate(&phi, u64::MAX);
        for old in g.edges() {
            let new = edited.old_to_new[old.index()];
            if new != DELETED {
                assert_eq!(moved[new as usize], old.0 as u64);
            }
        }
        assert_eq!(moved[edited.inserted[0].index()], u64::MAX);
    }

    #[test]
    fn deleting_everything_and_empty_edits() {
        let g = fig1();
        let all: Vec<EdgeId> = g.edges().collect();
        let edited = apply_edits(&g, &all, &[]).unwrap();
        assert_eq!(edited.graph.num_edges(), 0);
        assert_eq!(edited.graph.num_upper(), g.num_upper()); // layers kept
        let same = apply_edits(&g, &[], &[]).unwrap();
        assert_eq!(same.graph.edge_pairs(), g.edge_pairs());
        assert!(same.old_to_new.iter().enumerate().all(|(i, &n)| {
            let (u, v) = g.edge(EdgeId(i as u32));
            let (nu, nv) = same.graph.edge(EdgeId(n));
            (u, v) == (nu, nv)
        }));
    }

    #[test]
    fn invalid_edits_are_rejected() {
        let g = fig1();
        let e = EdgeId(0);
        assert!(matches!(
            apply_edits(&g, &[EdgeId(99)], &[]),
            Err(Error::Invariant(_))
        ));
        assert!(matches!(
            apply_edits(&g, &[e, e], &[]),
            Err(Error::Invariant(_))
        ));
        // (0,0) is present and not deleted.
        assert!(matches!(
            apply_edits(&g, &[], &[(0, 0)]),
            Err(Error::Invariant(_))
        ));
        // Duplicate insert.
        assert!(matches!(
            apply_edits(&g, &[], &[(5, 5), (5, 5)]),
            Err(Error::Invariant(_))
        ));
        // Deleting (0,0) makes inserting it legal again.
        assert!(apply_edits(&g, &[e], &[(0, 0)]).is_ok());
    }
}
