//! Planted dense blocks: near-bicliques embedded in a sparse background.
//!
//! Dense blocks are what bitruss decomposition is designed to find — the
//! fraud clusters, nested research groups and user-item communities of the
//! paper's §I. A planted `a × b` block with density `p` concentrates
//! butterflies, giving its edges high bitruss numbers, while the
//! background stays near 0.

use bigraph::{BipartiteGraph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One planted near-biclique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block {
    /// First upper-layer vertex of the block (inclusive).
    pub upper_start: u32,
    /// Number of upper-layer vertices in the block.
    pub upper_len: u32,
    /// First lower-layer vertex of the block (inclusive).
    pub lower_start: u32,
    /// Number of lower-layer vertices in the block.
    pub lower_len: u32,
    /// Probability of each block edge existing (1.0 = full biclique).
    pub density: f64,
}

impl Block {
    /// A full biclique block.
    pub fn full(upper_start: u32, upper_len: u32, lower_start: u32, lower_len: u32) -> Block {
        Block {
            upper_start,
            upper_len,
            lower_start,
            lower_len,
            density: 1.0,
        }
    }
}

/// Generates a graph with `blocks` planted on top of `background_edges`
/// uniform noise edges. Blocks may overlap, which creates the *nested*
/// community structure of the paper's research-group example.
///
/// Deterministic given `seed`.
pub fn planted_blocks(
    n_upper: u32,
    n_lower: u32,
    blocks: &[Block],
    background_edges: usize,
    seed: u64,
) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().with_upper(n_upper).with_lower(n_lower);

    for (bi, b) in blocks.iter().enumerate() {
        // xtask:allow(no-panic-lib) generator precondition on caller-supplied shape parameters; failing fast in test-data tooling is the documented contract
        assert!(
            b.upper_start + b.upper_len <= n_upper,
            "block {bi} exceeds upper layer"
        );
        // xtask:allow(no-panic-lib) generator precondition on caller-supplied shape parameters; failing fast in test-data tooling is the documented contract
        assert!(
            b.lower_start + b.lower_len <= n_lower,
            "block {bi} exceeds lower layer"
        );
        for u in b.upper_start..b.upper_start + b.upper_len {
            for v in b.lower_start..b.lower_start + b.lower_len {
                if b.density >= 1.0 || rng.gen_bool(b.density.clamp(0.0, 1.0)) {
                    builder.push_edge(u, v);
                }
            }
        }
    }

    if n_upper > 0 && n_lower > 0 {
        for _ in 0..background_edges {
            builder.push_edge(rng.gen_range(0..n_upper), rng.gen_range(0..n_lower));
        }
    }
    // The builder deduplicates overlap between blocks and noise.
    builder.build().expect("edges in range by construction") // xtask:allow(no-panic-lib) test-data generator: every pushed edge is in the declared layer ranges by construction, so the builder cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_block_is_a_biclique() {
        let g = planted_blocks(10, 10, &[Block::full(0, 4, 0, 5)], 0, 1);
        assert_eq!(g.num_edges(), 20);
        for u in 0..4 {
            for v in 0..5 {
                assert!(g.has_edge(g.upper(u), g.lower(v)));
            }
        }
    }

    #[test]
    fn nested_blocks_overlap_dedups() {
        let outer = Block::full(0, 6, 0, 6);
        let inner = Block::full(0, 3, 0, 3);
        let g = planted_blocks(6, 6, &[outer, inner], 0, 1);
        assert_eq!(g.num_edges(), 36); // overlap deduplicated
    }

    #[test]
    fn density_thins_the_block() {
        let dense = planted_blocks(
            20,
            20,
            &[Block {
                upper_start: 0,
                upper_len: 20,
                lower_start: 0,
                lower_len: 20,
                density: 1.0,
            }],
            0,
            2,
        );
        let sparse = planted_blocks(
            20,
            20,
            &[Block {
                upper_start: 0,
                upper_len: 20,
                lower_start: 0,
                lower_len: 20,
                density: 0.3,
            }],
            0,
            2,
        );
        assert_eq!(dense.num_edges(), 400);
        assert!(sparse.num_edges() < 200);
        assert!(sparse.num_edges() > 50);
    }

    #[test]
    #[should_panic(expected = "exceeds upper layer")]
    fn out_of_range_block_panics() {
        planted_blocks(4, 4, &[Block::full(2, 5, 0, 2)], 0, 1);
    }

    #[test]
    fn determinism() {
        let blocks = [Block::full(0, 3, 0, 3)];
        let a = planted_blocks(30, 30, &blocks, 100, 9);
        let b = planted_blocks(30, 30, &blocks, 100, 9);
        assert_eq!(a.edge_pairs(), b.edge_pairs());
    }
}
