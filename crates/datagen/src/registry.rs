//! The dataset registry: 15 named, laptop-scale synthetic analogues of the
//! KONECT graphs in Table II of the paper.
//!
//! Each entry mirrors the *shape* of its namesake — layer-size ratio,
//! degree skew (source of hub edges), and a planted dense core (source of
//! high bitruss numbers) — at a scale where every experiment of §VI runs
//! in seconds rather than hours. DESIGN.md §4 documents the substitution.

use bigraph::{BipartiteGraph, GraphBuilder};

use crate::block::Block;
use crate::powerlaw;

/// Rough size tier, used by tests and benches to pick subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SizeClass {
    /// ≲ 15 k edges — used in unit tests.
    Small,
    /// ≲ 50 k edges — default experiment tier.
    Medium,
    /// ≳ 50 k edges — the "large-scale" tier where only BiT-PC-style
    /// algorithms stay pleasant.
    Large,
}

/// A named synthetic dataset configuration.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Name matching Table II of the paper.
    pub name: &'static str,
    /// Upper-layer size.
    pub n_upper: u32,
    /// Lower-layer size.
    pub n_lower: u32,
    /// Target Chung–Lu edge count (the realized count is slightly lower
    /// after deduplication; planted block edges add on top).
    pub target_edges: usize,
    /// Power-law tail exponent of the upper layer.
    pub alpha_upper: f64,
    /// Power-law tail exponent of the lower layer.
    pub alpha_lower: f64,
    /// Dense blocks planted on top of the background.
    pub blocks: Vec<Block>,
    /// Generation seed (fixed per dataset for reproducibility).
    pub seed: u64,
    /// Size tier.
    pub size: SizeClass,
}

impl Dataset {
    /// Generates the graph for this configuration.
    pub fn generate(&self) -> BipartiteGraph {
        let background = powerlaw::chung_lu(
            self.n_upper,
            self.n_lower,
            self.target_edges,
            self.alpha_upper,
            self.alpha_lower,
            self.seed,
        );
        if self.blocks.is_empty() {
            return background;
        }
        let planted = crate::block::planted_blocks(
            self.n_upper,
            self.n_lower,
            &self.blocks,
            0,
            self.seed ^ 0xB10C,
        );
        GraphBuilder::new()
            .with_upper(self.n_upper)
            .with_lower(self.n_lower)
            .add_edges(background.edge_pairs())
            .add_edges(planted.edge_pairs())
            .build()
            .expect("registry edges are in range") // xtask:allow(no-panic-lib) test-data generator: every pushed edge is in the declared layer ranges by construction, so the builder cannot fail
    }

    /// A reproducible interleaved insert/delete schedule of `ops`
    /// operations over this dataset's generated graph (see
    /// [`crate::stream::edge_stream`]); the stream seed is derived from
    /// the dataset seed, so `(dataset, ops)` fully determines it.
    pub fn edge_stream(&self, ops: usize) -> Vec<crate::stream::StreamOp> {
        crate::stream::edge_stream(&self.generate(), ops, self.seed ^ 0x5712_EA11)
    }
}

/// Builds the nested community ladder that gives a dataset its bitruss
/// hierarchy: a loose outer community containing a tight full core
/// (the paper's research-group motif), plus two smaller detached
/// communities. Butterfly mass concentrates in these cores — where
/// support ≈ φ — which is the regime in which the paper's datasets live
/// (hub edges are added separately by the power-law background).
fn core_ladder(n_upper: u32, n_lower: u32, scale: u32) -> Vec<Block> {
    let su = scale.clamp(2, n_upper / 5);
    let sl = scale.clamp(2, n_lower / 5);
    let mut blocks = Vec::new();
    // Outer loose community with a nested full core inside it.
    blocks.push(Block {
        upper_start: n_upper / 4,
        upper_len: su,
        lower_start: n_lower / 4,
        lower_len: sl,
        density: 0.8,
    });
    if su >= 6 && sl >= 6 {
        blocks.push(Block::full(
            n_upper / 4 + su / 3,
            (2 * su) / 3,
            n_lower / 4 + sl / 3,
            (2 * sl) / 3,
        ));
    }
    // Detached secondary community, slightly rectangular.
    if su >= 4 && sl >= 4 {
        blocks.push(Block {
            upper_start: n_upper / 2,
            upper_len: su / 2 + 1,
            lower_start: n_lower / 2,
            lower_len: (sl / 2 + 2).min(n_lower - n_lower / 2),
            density: 0.95,
        });
    }
    // Small tertiary community.
    if su >= 6 && sl >= 6 {
        blocks.push(Block::full(
            (3 * n_upper) / 4,
            su / 3 + 1,
            (3 * n_lower) / 4,
            sl / 3 + 1,
        ));
    }
    blocks
}

/// All 15 datasets of Table II, in the paper's order.
pub fn all_datasets() -> Vec<Dataset> {
    use SizeClass::*;
    #[allow(clippy::too_many_arguments)]
    let d = |name: &'static str,
             n_upper: u32,
             n_lower: u32,
             target_edges: usize,
             alpha_upper: f64,
             alpha_lower: f64,
             core_scale: u32,
             seed: u64,
             size: SizeClass| {
        Dataset {
            name,
            n_upper,
            n_lower,
            target_edges,
            alpha_upper,
            alpha_lower,
            blocks: core_ladder(n_upper, n_lower, core_scale),
            seed,
            size,
        }
    };
    vec![
        // name            |U|     |L|      |E|      αU    αL   core seed size
        d("Condmat", 2_300, 3_000, 8_000, 2.6, 2.6, 12, 101, Small),
        d("Marvel", 650, 1_300, 10_000, 2.0, 2.2, 16, 102, Small),
        d("DBPedia", 12_000, 3_700, 20_000, 2.2, 2.0, 14, 103, Medium),
        d("Github", 3_900, 8_300, 30_000, 1.9, 2.1, 20, 104, Medium),
        d("Twitter", 3_500, 10_600, 40_000, 1.9, 2.0, 22, 105, Medium),
        d("D-label", 18_000, 2_800, 55_000, 1.9, 1.8, 26, 106, Large),
        d("D-style", 14_000, 64, 30_000, 2.0, 2.2, 12, 107, Large),
        d("Amazon", 37_000, 21_000, 35_000, 2.4, 2.4, 14, 108, Medium),
        d("DBLP", 46_000, 16_500, 40_000, 2.7, 2.7, 12, 109, Medium),
        d("Wiki-it", 10_600, 115, 35_000, 1.8, 2.3, 20, 110, Large),
        d("Wiki-fr", 1_050, 14_600, 80_000, 1.8, 1.8, 28, 111, Large),
        d("Delicious", 700, 28_000, 90_000, 1.9, 2.2, 20, 112, Large),
        d(
            "Live-journal",
            3_200,
            7_500,
            100_000,
            1.8,
            1.9,
            32,
            113,
            Large,
        ),
        d("Wiki-en", 3_800, 21_500, 110_000, 1.75, 2.0, 30, 114, Large),
        d("Tracker", 9_800, 4_500, 120_000, 1.7, 1.8, 28, 115, Large),
    ]
}

/// Looks a dataset up by its (case-insensitive) Table II name.
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    all_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// The four datasets the paper uses for its drill-down figures
/// (Figures 10–14): Github, D-label, D-style, Wiki-it.
pub fn drilldown_datasets() -> Vec<Dataset> {
    ["Github", "D-label", "D-style", "Wiki-it"]
        .iter()
        .map(|n| dataset_by_name(n).expect("registry contains drill-down set")) // xtask:allow(no-panic-lib) the four names are literals present in the static registry table
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_datasets_in_paper_order() {
        let all = all_datasets();
        assert_eq!(all.len(), 15);
        assert_eq!(all[0].name, "Condmat");
        assert_eq!(all[14].name, "Tracker");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(dataset_by_name("wiki-IT").is_some());
        assert!(dataset_by_name("nope").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let d = dataset_by_name("Condmat").unwrap();
        let a = d.generate();
        let b = d.generate();
        assert_eq!(a.edge_pairs(), b.edge_pairs());
    }

    #[test]
    fn small_datasets_have_expected_shape() {
        for d in all_datasets()
            .into_iter()
            .filter(|d| d.size == SizeClass::Small)
        {
            let g = d.generate();
            assert_eq!(g.num_upper(), d.n_upper, "{}", d.name);
            assert_eq!(g.num_lower(), d.n_lower, "{}", d.name);
            // Deduplication and planted blocks keep us within ±25% of the
            // Chung-Lu target.
            let m = g.num_edges() as usize;
            assert!(
                m > d.target_edges / 2 && m < d.target_edges * 2,
                "{}: {m} edges vs target {}",
                d.name,
                d.target_edges
            );
        }
    }

    #[test]
    fn planted_core_exists() {
        let d = dataset_by_name("Marvel").unwrap();
        let g = d.generate();
        // The nested inner core (second ladder block) is a full biclique.
        let b = d.blocks.iter().find(|b| b.density >= 1.0).unwrap();
        for u in b.upper_start..b.upper_start + b.upper_len {
            for v in b.lower_start..b.lower_start + b.lower_len {
                assert!(g.has_edge(g.upper(u), g.lower(v)));
            }
        }
    }

    #[test]
    fn every_dataset_ladder_fits_its_layers() {
        for d in all_datasets() {
            for b in &d.blocks {
                assert!(b.upper_start + b.upper_len <= d.n_upper, "{}", d.name);
                assert!(b.lower_start + b.lower_len <= d.n_lower, "{}", d.name);
            }
        }
    }

    #[test]
    fn dataset_streams_are_deterministic_and_valid() {
        let d = dataset_by_name("Condmat").unwrap();
        let a = d.edge_stream(40);
        assert_eq!(a, d.edge_stream(40));
        assert_eq!(a.len(), 40);
        // Replays cleanly against the generated edge set.
        let mut present: std::collections::HashSet<(u32, u32)> =
            d.generate().edge_pairs().into_iter().collect();
        for op in &a {
            let pair = (op.upper, op.lower);
            if op.insert {
                assert!(present.insert(pair));
            } else {
                assert!(present.remove(&pair));
            }
        }
    }

    #[test]
    fn drilldown_set_is_the_papers() {
        let names: Vec<_> = drilldown_datasets().iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["Github", "D-label", "D-style", "Wiki-it"]);
    }
}
