//! Bipartite Chung–Lu graphs with power-law expected degrees.
//!
//! Real bipartite networks have skewed degree distributions (§I of the
//! paper highlights Wiki-it and Delicious); this generator reproduces that
//! skew, which is what creates *hub edges* — edges whose butterfly support
//! vastly exceeds their bitruss number, the motivation for BiT-PC.

use bigraph::{BipartiteGraph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Weighted endpoint sampler: cumulative weights + binary search.
struct Cdf {
    cumulative: Vec<f64>,
}

impl Cdf {
    fn from_powerlaw(n: u32, exponent: f64) -> Cdf {
        // Zipf-like weights w_i = (i+1)^(-1/(exponent-1)) produce a degree
        // distribution with tail exponent ~`exponent` under Chung-Lu.
        let gamma = 1.0 / (exponent - 1.0).max(0.1);
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-gamma);
            cumulative.push(acc);
        }
        Cdf { cumulative }
    }

    fn sample(&self, rng: &mut SmallRng) -> u32 {
        let total = *self.cumulative.last().expect("non-empty CDF"); // xtask:allow(no-panic-lib) from_powerlaw pushes at least one entry, so the CDF is never empty
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x) as u32
    }
}

/// Bipartite Chung–Lu graph: ~`m` distinct edges whose upper endpoints
/// follow a power law with tail exponent `alpha_upper` and lower endpoints
/// `alpha_lower` (values near 1.8–2.2 give realistic heavy tails; larger
/// values are closer to uniform).
///
/// The returned graph has *at most* `m` edges (duplicate draws collapse);
/// the shortfall is small unless the weight skew is extreme relative to
/// the layer sizes. Deterministic given `seed`.
pub fn chung_lu(
    n_upper: u32,
    n_lower: u32,
    m: usize,
    alpha_upper: f64,
    alpha_lower: f64,
    seed: u64,
) -> BipartiteGraph {
    if n_upper == 0 || n_lower == 0 || m == 0 {
        return GraphBuilder::new()
            .with_upper(n_upper)
            .with_lower(n_lower)
            .build()
            .expect("empty graph"); // xtask:allow(no-panic-lib) an edgeless builder has nothing out of range, so build cannot fail
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let upper_cdf = Cdf::from_powerlaw(n_upper, alpha_upper);
    let lower_cdf = Cdf::from_powerlaw(n_lower, alpha_lower);

    let possible = (n_upper as u64) * (n_lower as u64);
    let m = (m as u64).min(possible) as usize;
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::new()
        .with_upper(n_upper)
        .with_lower(n_lower)
        .with_edge_capacity(m);
    // Cap the number of draws so extreme skew cannot loop forever; the
    // resulting graph simply has fewer edges in that case.
    let max_draws = m.saturating_mul(20).max(1_000);
    let mut drawn = 0usize;
    let mut accepted = 0usize;
    while accepted < m && drawn < max_draws {
        drawn += 1;
        let u = upper_cdf.sample(&mut rng);
        let v = lower_cdf.sample(&mut rng);
        if seen.insert((u as u64) << 32 | v as u64) {
            builder.push_edge(u, v);
            accepted += 1;
        }
    }
    builder.build().expect("generated edges are in range") // xtask:allow(no-panic-lib) test-data generator: every pushed edge is in the declared layer ranges by construction, so the builder cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_sizes() {
        let a = chung_lu(200, 300, 2_000, 2.0, 2.2, 11);
        let b = chung_lu(200, 300, 2_000, 2.0, 2.2, 11);
        assert_eq!(a.edge_pairs(), b.edge_pairs());
        assert!(a.num_edges() as usize <= 2_000);
        // With these mild parameters the shortfall is tiny.
        assert!(a.num_edges() >= 1_800, "got {}", a.num_edges());
    }

    #[test]
    fn produces_skewed_degrees() {
        let g = chung_lu(500, 500, 5_000, 1.8, 1.8, 7);
        let max_u = g.upper_vertices().map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / 500.0;
        // The hub should be far above the mean.
        assert!(
            (max_u as f64) > 4.0 * avg,
            "max {max_u} vs avg {avg}: not skewed"
        );
    }

    #[test]
    fn heavier_exponent_means_bigger_hubs() {
        let heavy = chung_lu(400, 400, 4_000, 1.7, 1.7, 5);
        let light = chung_lu(400, 400, 4_000, 3.5, 3.5, 5);
        let hub = |g: &BipartiteGraph| g.vertices().map(|v| g.degree(v)).max().unwrap();
        assert!(hub(&heavy) > hub(&light));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(chung_lu(0, 5, 10, 2.0, 2.0, 1).num_edges(), 0);
        assert_eq!(chung_lu(5, 5, 0, 2.0, 2.0, 1).num_edges(), 0);
    }

    #[test]
    fn extreme_skew_caps_draws_instead_of_looping() {
        // With 2×2 vertices and a huge request, dedup exhausts the pair
        // space; the draw cap must terminate generation with fewer edges.
        let g = chung_lu(2, 2, 1_000, 1.2, 1.2, 3);
        assert!(g.num_edges() <= 4);

        // Heavy skew on a narrow layer: still terminates, possibly short
        // of the target.
        let g = chung_lu(1_000, 3, 50_000, 1.5, 1.5, 4);
        assert!(g.num_edges() as usize <= 3_000);
    }
}
