//! Uniform random bipartite graphs.

use bigraph::{BipartiteGraph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bipartite Erdős–Rényi graph `G(n_upper, n_lower, m)`: `m` distinct
/// edges drawn uniformly from the `n_upper × n_lower` grid.
///
/// `m` is clamped to the number of possible edges. Deterministic given
/// `seed`.
pub fn uniform(n_upper: u32, n_lower: u32, m: usize, seed: u64) -> BipartiteGraph {
    let possible = (n_upper as u64) * (n_lower as u64);
    let m = (m as u64).min(possible) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new()
        .with_upper(n_upper)
        .with_lower(n_lower)
        .with_edge_capacity(m);

    if possible == 0 || m == 0 {
        return builder.build().expect("empty graph"); // xtask:allow(no-panic-lib) an edgeless builder has nothing out of range, so build cannot fail
    }

    // Dense request: sample by per-pair inclusion to avoid rejection
    // thrashing; sparse request: rejection sampling with a seen-set.
    if (m as u64) * 3 > possible {
        let mut pairs: Vec<u64> = (0..possible).collect();
        // Partial Fisher-Yates for the first m positions.
        for i in 0..m {
            let j = rng.gen_range(i..possible as usize);
            pairs.swap(i, j);
        }
        for &key in &pairs[..m] {
            builder.push_edge((key / n_lower as u64) as u32, (key % n_lower as u64) as u32);
        }
    } else {
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let u = rng.gen_range(0..n_upper);
            let v = rng.gen_range(0..n_lower);
            if seen.insert((u as u64) << 32 | v as u64) {
                builder.push_edge(u, v);
            }
        }
    }
    builder.build().expect("generated edges are in range") // xtask:allow(no-panic-lib) test-data generator: every pushed edge is in the declared layer ranges by construction, so the builder cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_and_determinism() {
        let a = uniform(50, 70, 800, 3);
        assert_eq!(a.num_edges(), 800);
        assert_eq!(a.num_upper(), 50);
        assert_eq!(a.num_lower(), 70);
        let b = uniform(50, 70, 800, 3);
        assert_eq!(a.edge_pairs(), b.edge_pairs());
        let c = uniform(50, 70, 800, 4);
        assert_ne!(a.edge_pairs(), c.edge_pairs());
    }

    #[test]
    fn clamps_to_complete_graph() {
        let g = uniform(5, 4, 1_000, 1);
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn dense_path_matches_request() {
        let g = uniform(30, 30, 700, 9); // 700 > 900/3 → dense path
        assert_eq!(g.num_edges(), 700);
    }

    #[test]
    fn zero_cases() {
        assert_eq!(uniform(0, 10, 5, 1).num_edges(), 0);
        assert_eq!(uniform(10, 10, 0, 1).num_edges(), 0);
    }
}
