//! Reproducible edge-update streams: seeded, interleaved insert/delete
//! schedules over an existing generator's output, for exercising and
//! benchmarking dynamic maintenance.
//!
//! A stream is *valid by construction* when replayed in order against
//! its base graph: every delete addresses an edge present at that point
//! (original or re-inserted), every insert a pair absent at that point.
//! Deletions sample the current edge set uniformly; insertions re-insert
//! a previously deleted pair half of the time (the hardest maintenance
//! case — φ must be restored exactly) and draw a fresh absent pair
//! otherwise. All choices are deterministic in the seed.

use std::collections::HashSet;
use std::fmt;

use bigraph::BipartiteGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One operation of an edge-update stream, in layer-local indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOp {
    /// `true` = insert, `false` = delete.
    pub insert: bool,
    /// Layer-local upper vertex index.
    pub upper: u32,
    /// Layer-local lower vertex index.
    pub lower: u32,
}

/// Renders the CLI `update` stream format: `+u v` / `-u v`.
impl fmt::Display for StreamOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.insert { '+' } else { '-' };
        write!(f, "{}{} {}", sign, self.upper, self.lower)
    }
}

/// Generates a reproducible interleaved insert/delete schedule of `ops`
/// operations over `g`'s edge set. Roughly half the operations are
/// deletions (fewer when the edge set runs dry). Deterministic in
/// `seed`.
pub fn edge_stream(g: &BipartiteGraph, ops: usize, seed: u64) -> Vec<StreamOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut present: Vec<(u32, u32)> = g.edge_pairs();
    let mut present_set: HashSet<(u32, u32)> = present.iter().copied().collect();
    let mut deleted_pool: Vec<(u32, u32)> = Vec::new();
    let possible = (g.num_upper() as u64) * (g.num_lower() as u64);
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let want_delete = rng.gen_range(0..2u32) == 0 && !present.is_empty();
        if want_delete {
            let i = rng.gen_range(0..present.len());
            let pair = present.swap_remove(i);
            present_set.remove(&pair);
            deleted_pool.push(pair);
            out.push(StreamOp {
                insert: false,
                upper: pair.0,
                lower: pair.1,
            });
        } else {
            // Half re-insertions of deleted pairs, half fresh pairs.
            let pair = if !deleted_pool.is_empty() && rng.gen_range(0..2u32) == 0 {
                deleted_pool.swap_remove(rng.gen_range(0..deleted_pool.len()))
            } else if (present.len() as u64) < possible {
                loop {
                    let cand = (
                        rng.gen_range(0..g.num_upper().max(1)),
                        rng.gen_range(0..g.num_lower().max(1)),
                    );
                    if !present_set.contains(&cand) {
                        deleted_pool.retain(|&p| p != cand);
                        break cand;
                    }
                }
            } else if !deleted_pool.is_empty() {
                deleted_pool.swap_remove(rng.gen_range(0..deleted_pool.len()))
            } else {
                // Complete graph with nothing deleted: no insert is
                // possible; fall back to a delete if one exists.
                if present.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..present.len());
                let pair = present.swap_remove(i);
                present_set.remove(&pair);
                deleted_pool.push(pair);
                out.push(StreamOp {
                    insert: false,
                    upper: pair.0,
                    lower: pair.1,
                });
                continue;
            };
            present_set.insert(pair);
            present.push(pair);
            out.push(StreamOp {
                insert: true,
                upper: pair.0,
                lower: pair.1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::uniform;

    /// Replays a stream against the base edge set, asserting validity.
    fn replay(g: &BipartiteGraph, ops: &[StreamOp]) -> HashSet<(u32, u32)> {
        let mut present: HashSet<(u32, u32)> = g.edge_pairs().into_iter().collect();
        for op in ops {
            let pair = (op.upper, op.lower);
            if op.insert {
                assert!(present.insert(pair), "inserted a present pair {pair:?}");
            } else {
                assert!(present.remove(&pair), "deleted an absent pair {pair:?}");
            }
        }
        present
    }

    #[test]
    fn streams_are_valid_and_deterministic() {
        let g = uniform(20, 20, 120, 5);
        let a = edge_stream(&g, 60, 9);
        let b = edge_stream(&g, 60, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
        replay(&g, &a);
        let c = edge_stream(&g, 60, 10);
        assert_ne!(a, c);
        replay(&g, &c);
    }

    #[test]
    fn streams_mix_inserts_deletes_and_reinserts() {
        let g = uniform(15, 15, 100, 3);
        let ops = edge_stream(&g, 200, 17);
        let inserts = ops.iter().filter(|o| o.insert).count();
        let deletes = ops.len() - inserts;
        assert!(
            inserts > 20 && deletes > 20,
            "{inserts} ins / {deletes} del"
        );
        // At least one re-insertion of a previously deleted pair.
        let mut deleted: HashSet<(u32, u32)> = HashSet::new();
        let mut reinserted = false;
        for op in &ops {
            let pair = (op.upper, op.lower);
            if op.insert {
                reinserted |= deleted.contains(&pair);
            } else {
                deleted.insert(pair);
            }
        }
        assert!(reinserted, "schedule never re-inserted a deleted edge");
    }

    #[test]
    fn stream_ops_render_the_update_format() {
        let op = StreamOp {
            insert: true,
            upper: 3,
            lower: 7,
        };
        assert_eq!(op.to_string(), "+3 7");
        let op = StreamOp {
            insert: false,
            upper: 0,
            lower: 1,
        };
        assert_eq!(op.to_string(), "-0 1");
    }

    #[test]
    fn empty_graph_streams_insert_only() {
        let g = uniform(4, 4, 0, 1);
        let ops = edge_stream(&g, 10, 2);
        replay(&g, &ops);
        assert!(!ops.is_empty());
    }
}
