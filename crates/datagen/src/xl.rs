//! Constant-memory streaming generator for very large power-law
//! bipartite graphs.
//!
//! The in-memory generators of this crate ([`crate::powerlaw`] and
//! friends) materialize every edge before anything is written, which
//! caps them at laptop scale. [`XlConfig`] instead *streams*: its
//! [`edges`](XlConfig::edges) iterator yields one `(upper, lower)` pair
//! at a time from O(1) state, so a multi-hundred-million-edge file can
//! be produced with the same few dozen bytes of working memory as a
//! toy one — the natural companion of the out-of-core decomposition
//! path, which is the only engine that can digest such a file.
//!
//! The construction is deterministic in the seed and duplicate-free *by
//! construction*, with no dedup set: upper vertex `u` receives a
//! power-law degree `d(u) ∝ (u+1)^{-α}` (scaled so the degrees sum to
//! roughly the requested edge count), and its neighbors are the arithmetic
//! progression `base(u) + i·step(u) (mod num_lower)` with `step(u)`
//! coprime to `num_lower` — `d(u) ≤ num_lower` distinct lower vertices,
//! pseudo-randomly placed by the seeded `base`/`step`.

use std::io::{self, Write};

/// Configuration of a streaming power-law bipartite workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XlConfig {
    /// Upper-layer vertex count (the skewed side).
    pub num_upper: u32,
    /// Lower-layer vertex count.
    pub num_lower: u32,
    /// Requested edge count; the generated count ([`XlConfig::count_edges`])
    /// lands close but not exactly on it (degrees are rounded and
    /// clamped per vertex).
    pub target_edges: u64,
    /// Power-law exponent of the upper-layer degree sequence
    /// (`d(u) ∝ (u+1)^{-α}`); larger α = more skew.
    pub alpha: f64,
    /// Seed; equal configs generate identical streams.
    pub seed: u64,
}

impl XlConfig {
    /// The full-size preset: ~250 million edges over a 4M×2M vertex
    /// universe — far beyond what the in-memory path can hold, sized
    /// for exercising the out-of-core engine.
    pub fn xl() -> Self {
        XlConfig {
            num_upper: 4_000_000,
            num_lower: 2_000_000,
            target_edges: 250_000_000,
            alpha: 0.8,
            seed: 42,
        }
    }

    /// The CI preset: the same code path and skew shape at ~40 000
    /// edges, cheap enough for every test run.
    pub fn quick() -> Self {
        XlConfig {
            num_upper: 2_000,
            num_lower: 1_500,
            target_edges: 40_000,
            alpha: 0.8,
            seed: 42,
        }
    }

    /// The power-law weight normalizer `W = Σ_u (u+1)^{-α}`. `O(num_upper)`
    /// time, `O(1)` memory.
    fn weight_sum(&self) -> f64 {
        let mut w = 0.0f64;
        for u in 0..self.num_upper {
            w += f64::from(u + 1).powf(-self.alpha);
        }
        w
    }

    /// Degree of upper vertex `u` given the precomputed normalizer.
    fn degree(&self, u: u32, weight_sum: f64) -> u32 {
        if self.num_lower == 0 || weight_sum <= 0.0 {
            return 0;
        }
        let ideal = f64::from(u + 1).powf(-self.alpha) / weight_sum * self.target_edges as f64;
        // Round, then clamp into [1, num_lower]: every vertex gets at
        // least one edge (so the graph has no trivially-empty tail) and
        // no vertex can exceed the lower layer.
        (ideal.round() as u64).clamp(1, u64::from(self.num_lower)) as u32
    }

    /// The exact number of edges the stream will yield. `O(num_upper)`
    /// time, `O(1)` memory — no edge is generated.
    pub fn count_edges(&self) -> u64 {
        if self.num_upper == 0 || self.num_lower == 0 {
            return 0;
        }
        let w = self.weight_sum();
        (0..self.num_upper)
            .map(|u| u64::from(self.degree(u, w)))
            .sum()
    }

    /// The constant-memory edge stream: `(upper_local, lower_local)`
    /// pairs, grouped by upper vertex, deterministic in the seed.
    pub fn edges(&self) -> XlEdges {
        XlEdges {
            cfg: *self,
            weight_sum: self.weight_sum(),
            u: 0,
            remaining: 0,
            next_lower: 0,
            step: 1,
        }
    }

    /// Streams the whole graph as a zero-based edge-list text file
    /// (`upper lower` per line, `%`-comment header) — the format
    /// `read_edge_list` and the CLI consume. Buffers internally; the
    /// writer sees large sequential writes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O failure.
    pub fn write_edge_list<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = io::BufWriter::new(writer);
        writeln!(
            w,
            "% xl synthetic power-law bipartite graph: {} x {} vertices, {} edges, \
             alpha {}, seed {}",
            self.num_upper,
            self.num_lower,
            self.count_edges(),
            self.alpha,
            self.seed
        )?;
        for (u, v) in self.edges() {
            writeln!(w, "{u} {v}")?;
        }
        w.flush()
    }
}

/// splitmix64 — the usual statelessly-seedable 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The streaming iterator behind [`XlConfig::edges`]. State is a
/// handful of words regardless of graph size.
#[derive(Debug, Clone)]
pub struct XlEdges {
    cfg: XlConfig,
    weight_sum: f64,
    /// Next upper vertex to start (vertices < `u` are done).
    u: u32,
    /// Edges still to yield for the current upper vertex `u - 1`.
    remaining: u32,
    /// Lower endpoint of the next edge of the current vertex.
    next_lower: u32,
    /// Stride of the current vertex's progression (coprime to
    /// `num_lower`).
    step: u32,
}

impl Iterator for XlEdges {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        while self.remaining == 0 {
            if self.u >= self.cfg.num_upper || self.cfg.num_lower == 0 {
                return None;
            }
            let u = self.u;
            self.u += 1;
            self.remaining = self.cfg.degree(u, self.weight_sum);
            let h = mix(self.cfg.seed ^ (u64::from(u) << 1 | 1));
            self.next_lower = (h % u64::from(self.cfg.num_lower)) as u32;
            // Nudge the stride until it is coprime to num_lower: the
            // progression then visits distinct residues, so the
            // vertex's `d ≤ num_lower` neighbors never repeat.
            let mut step = (mix(h) % u64::from(self.cfg.num_lower)) as u32;
            while gcd(step, self.cfg.num_lower) != 1 {
                step = (step + 1) % self.cfg.num_lower;
            }
            self.step = step;
        }
        let pair = (self.u - 1, self.next_lower);
        self.remaining -= 1;
        self.next_lower = ((u64::from(self.next_lower) + u64::from(self.step))
            % u64::from(self.cfg.num_lower)) as u32;
        Some(pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn quick_stream_is_deterministic_duplicate_free_and_in_bounds() {
        let cfg = XlConfig::quick();
        let a: Vec<(u32, u32)> = cfg.edges().collect();
        let b: Vec<(u32, u32)> = cfg.edges().collect();
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, cfg.count_edges());
        let distinct: HashSet<(u32, u32)> = a.iter().copied().collect();
        assert_eq!(distinct.len(), a.len(), "stream yielded duplicate edges");
        assert!(a
            .iter()
            .all(|&(u, v)| u < cfg.num_upper && v < cfg.num_lower));
        let different_seed = XlConfig { seed: 43, ..cfg };
        assert_ne!(a, different_seed.edges().collect::<Vec<_>>());
    }

    #[test]
    fn degrees_are_power_law_skewed() {
        let cfg = XlConfig::quick();
        let mut degree = vec![0u32; cfg.num_upper as usize];
        for (u, _) in cfg.edges() {
            degree[u as usize] += 1;
        }
        // Hubs up front, a long flat tail behind.
        assert!(degree[0] > 50 * degree[cfg.num_upper as usize - 1]);
        assert!(degree[cfg.num_upper as usize - 1] >= 1);
        let total: u64 = degree.iter().map(|&d| u64::from(d)).sum();
        assert!(
            (total as i64 - cfg.target_edges as i64).unsigned_abs() < cfg.target_edges / 10,
            "generated {total} edges for a target of {}",
            cfg.target_edges
        );
    }

    #[test]
    fn xl_preset_is_multi_hundred_million_edges_without_materializing() {
        let cfg = XlConfig::xl();
        // Pure arithmetic — no edge is generated.
        let m = cfg.count_edges();
        assert!(m >= 200_000_000, "{m} edges");
        // The stream itself starts up in O(1) memory; spot-check the
        // first slice for validity.
        for (u, v) in cfg.edges().take(10_000) {
            assert!(u < cfg.num_upper && v < cfg.num_lower);
        }
    }

    #[test]
    fn written_stream_round_trips_through_the_edge_list_reader() {
        let cfg = XlConfig {
            num_upper: 40,
            num_lower: 30,
            target_edges: 400,
            alpha: 0.8,
            seed: 7,
        };
        let mut text = Vec::new();
        cfg.write_edge_list(&mut text).unwrap();
        let g = bigraph::io::read_edge_list(&text[..], bigraph::io::IndexBase::Zero).unwrap();
        assert_eq!(u64::from(g.num_edges()), cfg.count_edges());
        let pairs: HashSet<(u32, u32)> = g.edge_pairs().into_iter().collect();
        for pair in cfg.edges() {
            assert!(pairs.contains(&pair));
        }
    }

    #[test]
    fn empty_layers_yield_empty_streams() {
        for (nu, nl) in [(0, 10), (10, 0), (0, 0)] {
            let cfg = XlConfig {
                num_upper: nu,
                num_lower: nl,
                target_edges: 100,
                alpha: 1.0,
                seed: 1,
            };
            assert_eq!(cfg.count_edges(), 0);
            assert_eq!(cfg.edges().count(), 0);
        }
    }
}
