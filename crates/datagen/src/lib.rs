//! Synthetic bipartite workload generators and the dataset registry.
//!
//! The paper evaluates on 15 KONECT datasets (Table II) that cannot be
//! redistributed here; [`registry`] provides *same-named*, laptop-scale
//! synthetic analogues whose layer-size ratios and degree skew mirror the
//! originals (see DESIGN.md §4 for the substitution argument). The raw
//! generators are public so new workloads can be composed:
//!
//! * [`random::uniform`] — bipartite Erdős–Rényi `G(n_U, n_L, m)`;
//! * [`powerlaw::chung_lu`] — bipartite Chung–Lu with power-law expected
//!   degrees (the source of hub edges);
//! * [`block::planted_blocks`] — dense bicliques planted over a background
//!   (nested communities, fraud blocks);
//! * [`configuration::from_degrees`] — configuration model from explicit
//!   degree sequences;
//! * [`stream::edge_stream`] — seeded interleaved insert/delete
//!   schedules over any generated graph (dynamic-maintenance workloads);
//! * [`xl::XlConfig`] — constant-memory *streaming* power-law generator
//!   for multi-hundred-million-edge files (out-of-core workloads), with
//!   a quick CI-scale preset.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod block;
pub mod configuration;
pub mod powerlaw;
pub mod random;
pub mod registry;
pub mod stream;
pub mod xl;

pub use registry::{all_datasets, dataset_by_name, Dataset, SizeClass};
pub use stream::{edge_stream, StreamOp};
pub use xl::{XlConfig, XlEdges};
