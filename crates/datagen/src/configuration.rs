//! Bipartite configuration model: random graphs with prescribed degree
//! sequences, used when an experiment needs exact control over the degree
//! distribution rather than an expected one.

use bigraph::{BipartiteGraph, GraphBuilder};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Generates a bipartite graph whose upper/lower degree sequences are as
/// close as possible to the requested ones: stubs are matched uniformly at
/// random and duplicate pairings are dropped (simple-graph projection of
/// the configuration model).
///
/// # Panics
///
/// Panics if the two degree sums differ — stub matching requires
/// `Σ upper_degrees == Σ lower_degrees`.
pub fn from_degrees(upper_degrees: &[u32], lower_degrees: &[u32], seed: u64) -> BipartiteGraph {
    let su: u64 = upper_degrees.iter().map(|&d| d as u64).sum();
    let sl: u64 = lower_degrees.iter().map(|&d| d as u64).sum();
    // xtask:allow(no-panic-lib) generator precondition on caller-supplied degree sequences; failing fast in test-data tooling is the documented contract
    assert_eq!(su, sl, "degree sums must match (got {su} vs {sl})");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut upper_stubs: Vec<u32> = Vec::with_capacity(su as usize);
    for (i, &d) in upper_degrees.iter().enumerate() {
        upper_stubs.extend(std::iter::repeat_n(i as u32, d as usize));
    }
    let mut lower_stubs: Vec<u32> = Vec::with_capacity(sl as usize);
    for (i, &d) in lower_degrees.iter().enumerate() {
        lower_stubs.extend(std::iter::repeat_n(i as u32, d as usize));
    }
    upper_stubs.shuffle(&mut rng);
    lower_stubs.shuffle(&mut rng);

    let mut builder = GraphBuilder::new()
        .with_upper(upper_degrees.len() as u32)
        .with_lower(lower_degrees.len() as u32)
        .with_edge_capacity(upper_stubs.len());
    for (&u, &v) in upper_stubs.iter().zip(&lower_stubs) {
        builder.push_edge(u, v); // duplicates removed by the builder
    }
    builder.build().expect("stub indices are in range") // xtask:allow(no-panic-lib) test-data generator: every pushed edge is in the declared layer ranges by construction, so the builder cannot fail
}

/// Convenience: a power-law degree sequence `d_i = max(1, round(c·(i+1)^{-γ}))`
/// rescaled so the sum is exactly `target_sum`.
pub fn powerlaw_degrees(n: u32, gamma: f64, target_sum: u64) -> Vec<u32> {
    if n == 0 || target_sum == 0 {
        return vec![0; n as usize];
    }
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let total: f64 = raw.iter().sum();
    let mut degrees: Vec<u32> = raw
        .iter()
        .map(|w| ((w / total) * target_sum as f64).round().max(1.0) as u32)
        .collect();
    // Fix rounding drift so the sum is exact (adjust the largest entries).
    let mut sum: i64 = degrees.iter().map(|&d| d as i64).sum();
    let mut i = 0usize;
    while sum != target_sum as i64 {
        let idx = i % degrees.len();
        if sum > target_sum as i64 {
            if degrees[idx] > 1 {
                degrees[idx] -= 1;
                sum -= 1;
            }
        } else {
            degrees[idx] += 1;
            sum += 1;
        }
        i += 1;
    }
    degrees
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_degree_budget() {
        let ud = vec![3, 2, 1];
        let ld = vec![2, 2, 2];
        let g = from_degrees(&ud, &ld, 4);
        // Dedup can only lower degrees.
        for (i, &d) in ud.iter().enumerate() {
            assert!(g.degree(g.upper(i as u32)) <= d);
        }
        for (i, &d) in ld.iter().enumerate() {
            assert!(g.degree(g.lower(i as u32)) <= d);
        }
        assert!(g.num_edges() <= 6);
    }

    #[test]
    #[should_panic(expected = "degree sums must match")]
    fn mismatched_sums_panic() {
        from_degrees(&[2, 2], &[1], 0);
    }

    #[test]
    fn powerlaw_sequence_sums_exactly() {
        let d = powerlaw_degrees(100, 1.2, 5_000);
        assert_eq!(d.iter().map(|&x| x as u64).sum::<u64>(), 5_000);
        assert!(d[0] > d[99]);
        assert!(d.iter().all(|&x| x >= 1));
    }

    #[test]
    fn determinism() {
        let ud = powerlaw_degrees(50, 1.0, 600);
        let ld = powerlaw_degrees(80, 1.0, 600);
        let a = from_degrees(&ud, &ld, 77);
        let b = from_degrees(&ud, &ld, 77);
        assert_eq!(a.edge_pairs(), b.edge_pairs());
    }
}
