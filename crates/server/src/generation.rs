//! Immutable published generations and the epoch pointer readers pin.

use std::sync::{Arc, PoisonError, RwLock};

use bitruss_core::BitrussEngine;

/// One committed, immutable state of the service: the graph, its φ
/// decomposition, and the lazily-built hierarchy index, all shared by
/// reference count with the writer's working engine at the moment of
/// publication.
///
/// A generation never changes after it is constructed. Readers that
/// pinned it keep answering against it even while newer generations are
/// published; it is freed when the last pin drops.
#[derive(Debug)]
pub struct Generation {
    /// Dense publication sequence number within this server run: the
    /// initial generation is `0` and every acknowledged *mutating*
    /// batch publishes `number + 1`. Distinct from the store's
    /// checkpoint generation (see `docs/SERVER.md`).
    pub number: u64,
    /// The engine session frozen at this generation. All query verbs
    /// execute against it; the first reader to need the hierarchy
    /// builds it once for every holder of this generation.
    pub engine: BitrussEngine<'static>,
}

/// The epoch pointer: the single place the current [`Generation`] is
/// published. Readers take a cheap snapshot with [`Published::current`];
/// the writer installs a successor with [`Published::publish`].
///
/// Implemented as an `RwLock<Arc<Generation>>` whose write lock is held
/// only for the pointer swap itself — the closest `std`-only equivalent
/// of an atomic `Arc` swap. Readers clone the `Arc` under the read lock
/// (two atomic ops) and drop the lock before touching the data, so a
/// reader can never hold the writer off for the duration of a query.
#[derive(Debug)]
pub struct Published {
    current: RwLock<Arc<Generation>>,
}

impl Published {
    /// Wraps the initial generation.
    pub fn new(initial: Generation) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// Pins and returns the current generation. The returned `Arc`
    /// stays valid (and immutable) no matter how many generations are
    /// published afterwards.
    pub fn current(&self) -> Arc<Generation> {
        // A poisoned lock means another thread panicked mid-swap; the
        // pointer itself is always a valid Arc, so keep serving.
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the current generation. Callers must only
    /// publish monotonically increasing numbers; this type does not
    /// re-check.
    pub fn publish(&self, next: Arc<Generation>) {
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = next;
    }
}
