//! Bitruss-as-a-service: a concurrent line-protocol query server with
//! generation-snapshot isolation.
//!
//! The library half of the CLI `serve` subcommand. It snaps together the
//! two halves the workspace already has — the typed
//! [`Query`](bitruss_core::Query) batch protocol on the read side and
//! the journaling [`DurableEngine`](bitruss_dynamic::DurableEngine) on
//! the write side — into a single-writer / multi-reader service:
//!
//! - **Readers never block on writers.** Every committed state is
//!   published as an immutable [`Generation`] behind an
//!   [`Arc`](std::sync::Arc); a reader pins exactly one generation per
//!   request line and answers entirely against it. Publishing a new
//!   generation is a pointer swap, not a data copy —
//!   [`BitrussEngine::clone_shared`](bitruss_core::BitrussEngine::clone_shared)
//!   shares the graph, φ, and the lazily-built hierarchy by reference
//!   count.
//! - **Acknowledged means durable.** The single writer thread drains a
//!   bounded [`UpdateQueue`], pushes each batch through
//!   [`DurableEngine::apply`](bitruss_dynamic::DurableEngine::apply)
//!   (journal fsync is the point of acknowledgement), and only then
//!   publishes the next generation. A crash after an ack can lose
//!   nothing; a crash before one never exposes the batch.
//! - **Overload sheds, it does not stall.** Admission control reuses the
//!   maintenance work metering: a leaky-bucket [`WorkMeter`] denominated
//!   in support-update units sheds updates while saturated, and the
//!   bounded queue rejects submissions outright when full, so the read
//!   path keeps its latency under any write load.
//!
//! See `docs/SERVER.md` for the wire protocol, the generation
//! lifecycle, and the shutdown semantics. The programmatic entry point
//! is [`BitrussServer::start`]; line-oriented transports (stdin, TCP)
//! layer on top via [`ServerHandle::serve_connection`] and
//! [`ServerHandle::serve_tcp`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod generation;
mod metrics;
mod protocol;
mod queue;
mod server;

pub use generation::{Generation, Published};
pub use metrics::{ServerMetrics, StatsSnapshot};
pub use protocol::{parse_request, Request};
pub use queue::{ResponseSlot, SubmitError, UpdateOutcome, UpdateQueue, WorkMeter};
pub use server::{BitrussServer, LineReply, ServerConfig, ServerHandle};
