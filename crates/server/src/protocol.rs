//! The server's line protocol: the write/control verbs layered on top
//! of the engine's existing query language.
//!
//! One request per line. Lines that are not a server verb pass through
//! verbatim to [`BitrussEngine::query_line`](bitruss_core::BitrussEngine::query_line)
//! — `levels`, `edges <k>`, `community <u> <v> <k>`, comments, blanks —
//! so every valid `query` batch file is also a valid server session.
//!
//! ```text
//! update +0 3 -2 1 …    # one atomic batch of signed edge ops
//! stats                 # one-line key=value counter snapshot
//! generation            # number of the currently published generation
//! shutdown              # end this session (stdin server: stop serving)
//! levels                # …and every engine query verb, unchanged
//! ```

use std::str::FromStr;

use bitruss_dynamic::{UpdateBatch, UpdateOp};

/// One parsed protocol line. `#[non_exhaustive]`: verbs may be added
/// without a semver break (mirroring [`bitruss_core::Query`]).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Anything that is not a server verb: forwarded to the engine's
    /// query parser (which also handles blanks, comments, and its own
    /// error rendering). Holds the raw line.
    Query(String),
    /// `update <signed ops>` — one atomic, durably acknowledged batch.
    Update(UpdateBatch),
    /// `stats` — counter snapshot.
    Stats,
    /// `generation` — current published generation number.
    Generation,
    /// `shutdown` — end the session.
    Shutdown,
}

/// Parses one protocol line. Never fails: a malformed `update` renders
/// as an error *response* (`Err` carries the full response line), which
/// keeps one bad client line from killing a session — the same contract
/// as the engine's query parser.
///
/// # Errors
///
/// The ready-to-send `error: update: …` response for a malformed
/// update line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let trimmed = line.trim();
    let mut tokens = trimmed.split_whitespace();
    match tokens.next() {
        Some("update") => parse_update_ops(tokens).map(Request::Update),
        Some("stats") if tokens.next().is_none() => Ok(Request::Stats),
        Some("generation") if tokens.next().is_none() => Ok(Request::Generation),
        Some("shutdown") if tokens.next().is_none() => Ok(Request::Shutdown),
        // Everything else — including blanks, comments, and engine
        // verbs with trailing arguments — belongs to the query parser.
        _ => Ok(Request::Query(line.to_string())),
    }
}

/// Parses the `+u v` / `-u v` pairs after the `update` verb. The sign
/// is attached to the upper index (`+0 3`), matching the batch stream
/// file format with the newlines swapped for spaces.
fn parse_update_ops<'a, I: Iterator<Item = &'a str>>(mut tokens: I) -> Result<UpdateBatch, String> {
    let mut batch = UpdateBatch::new();
    while let Some(signed) = tokens.next() {
        let (insert, upper_text) = match signed.split_at_checked(1) {
            Some(("+", rest)) => (true, rest),
            Some(("-", rest)) => (false, rest),
            _ => {
                return Err(format!(
                    "error: update: op `{signed}` must start with + or -"
                ))
            }
        };
        let Some(lower_text) = tokens.next() else {
            return Err(format!(
                "error: update: op `{signed}` is missing its lower vertex"
            ));
        };
        let upper = u32::from_str(upper_text)
            .map_err(|_| format!("error: update: bad upper vertex `{upper_text}`"))?;
        let lower = u32::from_str(lower_text)
            .map_err(|_| format!("error: update: bad lower vertex `{lower_text}`"))?;
        batch.push(if insert {
            UpdateOp::Insert { upper, lower }
        } else {
            UpdateOp::Delete { upper, lower }
        });
    }
    if batch.is_empty() {
        return Err("error: update: empty batch (expected `update +u v -u v …`)".to_string());
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_line_parses_signed_pairs() {
        let req = parse_request("update +0 3 -2 1 +4 4").expect("parse");
        let Request::Update(batch) = req else {
            panic!("expected update, got {req:?}");
        };
        assert_eq!(
            batch.ops(),
            &[
                UpdateOp::Insert { upper: 0, lower: 3 },
                UpdateOp::Delete { upper: 2, lower: 1 },
                UpdateOp::Insert { upper: 4, lower: 4 },
            ]
        );
    }

    #[test]
    fn control_verbs_parse() {
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert_eq!(parse_request("  generation  "), Ok(Request::Generation));
        assert_eq!(parse_request("shutdown"), Ok(Request::Shutdown));
    }

    #[test]
    fn engine_lines_pass_through_verbatim() {
        for line in [
            "levels",
            "edges 4",
            "community 0 1 4",
            "",
            "% comment",
            "# note",
        ] {
            assert_eq!(parse_request(line), Ok(Request::Query(line.to_string())));
        }
        // A verb with unexpected arguments is not a control line — the
        // query parser owns the error rendering.
        assert_eq!(
            parse_request("stats now"),
            Ok(Request::Query("stats now".to_string()))
        );
    }

    #[test]
    fn malformed_updates_render_error_responses() {
        for (line, needle) in [
            ("update", "empty batch"),
            ("update 0 3", "must start with"),
            ("update +0", "missing its lower"),
            ("update +x 3", "bad upper"),
            ("update +0 y", "bad lower"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.starts_with("error: update:"), "{err}");
            assert!(err.contains(needle), "{line}: {err}");
        }
    }
}
