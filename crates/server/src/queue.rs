//! The bounded update queue between client sessions and the single
//! writer thread, and the leaky-bucket admission meter in front of it.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use bitruss_dynamic::{MaintenanceStats, UpdateBatch};

/// What became of one submitted update batch. Delivered through the
/// submitter's [`ResponseSlot`] once the writer (or admission control)
/// has decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The batch is durable (journal fsynced) and, if it changed the
    /// graph, its generation is published.
    Acked {
        /// Writer-assigned sequence number of this ack, dense from 1.
        seq: u64,
        /// Generation number the batch is visible in. A batch that nets
        /// out to no change acks with the *current* generation — nothing
        /// new is published for it.
        generation: u64,
        /// Net operations applied (`deleted + inserted` edges).
        ops: u64,
    },
    /// The batch was refused — invalid against the current graph, or
    /// the store has failed and writes are fenced off. The reason is
    /// the engine's error text.
    Rejected(String),
    /// The server is shutting down and no longer accepts updates.
    ShuttingDown,
}

/// Why [`UpdateQueue::try_submit`] refused a batch without queuing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — retry after backoff.
    QueueFull,
    /// The [`WorkMeter`] is saturated — the writer is over its work
    /// budget and the batch was shed.
    Overloaded,
    /// The server is draining; no new updates are accepted.
    ShuttingDown,
}

impl SubmitError {
    /// The protocol-level response line for this refusal.
    pub fn as_response(&self) -> &'static str {
        match self {
            SubmitError::QueueFull => "shed: queue full",
            SubmitError::Overloaded => "shed: overloaded",
            SubmitError::ShuttingDown => "shed: shutting down",
        }
    }
}

/// A one-shot rendezvous the submitter blocks on until the writer fills
/// in the [`UpdateOutcome`]. Cloning shares the slot.
#[derive(Debug, Clone, Default)]
pub struct ResponseSlot {
    inner: Arc<(Mutex<Option<UpdateOutcome>>, Condvar)>,
}

impl ResponseSlot {
    /// A fresh, unfilled slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delivers the outcome and wakes the waiting submitter. Filling a
    /// slot twice keeps the first outcome.
    pub fn fill(&self, outcome: UpdateOutcome) {
        let (lock, cvar) = &*self.inner;
        let mut slot = lock.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(outcome);
        }
        cvar.notify_all();
    }

    /// Blocks until the writer fills the slot, then returns the
    /// outcome.
    pub fn wait(&self) -> UpdateOutcome {
        let (lock, cvar) = &*self.inner;
        let mut slot = lock.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.clone() {
                return outcome;
            }
            slot = cvar.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Queue interior: items plus the closed flag, under one mutex so
/// close/submit/pop order is total.
#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<(UpdateBatch, ResponseSlot)>,
    closed: bool,
}

/// A bounded MPSC queue of update batches. Client sessions
/// [`try_submit`](UpdateQueue::try_submit) (never blocking — a full
/// queue is backpressure, reported to the client); the single writer
/// [`pop`](UpdateQueue::pop)s, blocking while the queue is open and
/// empty.
#[derive(Debug)]
pub struct UpdateQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    capacity: usize,
}

impl UpdateQueue {
    /// An open queue holding at most `capacity` in-flight batches.
    /// A zero capacity is promoted to 1 (a queue that can never accept
    /// anything would wedge every submitter).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `batch` and returns the slot its outcome will arrive
    /// on, or refuses immediately — this never blocks the submitting
    /// session.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] once [`UpdateQueue::close`] has
    /// run, [`SubmitError::QueueFull`] at capacity.
    pub fn try_submit(&self, batch: UpdateBatch) -> Result<ResponseSlot, SubmitError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if state.items.len() >= self.capacity {
            return Err(SubmitError::QueueFull);
        }
        let slot = ResponseSlot::new();
        state.items.push_back((batch, slot.clone()));
        self.not_empty.notify_one();
        Ok(slot)
    }

    /// Dequeues the next batch, blocking while the queue is open and
    /// empty. Returns `None` only when the queue is closed **and**
    /// drained — the writer's signal to exit after serving every
    /// accepted batch.
    pub fn pop(&self) -> Option<(UpdateBatch, ResponseSlot)> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: subsequent submissions are refused, already
    /// queued batches still drain through [`UpdateQueue::pop`].
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        // Wake the writer so it can observe the close even when idle.
        self.not_empty.notify_all();
    }

    /// Batches currently queued (racy — monitoring only).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// `true` when no batch is queued (racy — monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Meter interior: the current debt and when it was last leaked.
#[derive(Debug)]
struct MeterState {
    level: u64,
    last_leak: Instant,
}

/// A leaky-bucket admission meter denominated in the maintenance
/// layer's own work unit (butterfly-support updates, the dominant cost
/// of [`apply_batch`](bitruss_dynamic::apply_batch) — the same unit the
/// incremental path's internal work budget uses).
///
/// The writer [`record`](WorkMeter::record)s each batch's measured
/// [`MaintenanceStats`] cost after the fact; sessions call
/// [`try_admit`](WorkMeter::try_admit) before queueing. While the
/// accumulated, not-yet-leaked cost exceeds `budget`, new updates are
/// shed — the reader pool never has to share the machine with an
/// unbounded maintenance backlog.
#[derive(Debug)]
pub struct WorkMeter {
    state: Mutex<MeterState>,
    budget: u64,
    leak_per_sec: u64,
}

impl WorkMeter {
    /// A meter that sheds above `budget` outstanding work units and
    /// forgives `leak_per_sec` units per second of wall time.
    pub fn new(budget: u64, leak_per_sec: u64) -> Self {
        Self {
            state: Mutex::new(MeterState {
                level: 0,
                last_leak: Instant::now(),
            }),
            budget,
            leak_per_sec,
        }
    }

    /// `true` when the meter is below budget and the update may be
    /// queued. Leaks elapsed time first, so a saturated meter recovers
    /// on its own.
    pub fn try_admit(&self) -> bool {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.leak(&mut state);
        state.level < self.budget
    }

    /// Charges the measured cost of one applied batch: its support
    /// updates plus its affected edges (so even support-free structural
    /// churn registers). A batch settled by full-recompute fallback
    /// charges the whole budget — the strongest possible overload
    /// signal.
    pub fn record(&self, stats: &MaintenanceStats) {
        let cost = if stats.fell_back {
            self.budget
        } else {
            stats.support_updates.saturating_add(stats.affected_edges)
        };
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.leak(&mut state);
        state.level = state.level.saturating_add(cost);
    }

    /// The current outstanding work level (racy — monitoring only).
    pub fn level(&self) -> u64 {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.leak(&mut state);
        state.level
    }

    /// Forgives `leak_per_sec * elapsed` units.
    fn leak(&self, state: &mut MeterState) {
        let now = Instant::now();
        let elapsed = now.duration_since(state.last_leak);
        let forgiven = (elapsed.as_secs_f64() * self.leak_per_sec as f64) as u64;
        if forgiven > 0 {
            state.level = state.level.saturating_sub(forgiven);
            state.last_leak = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn submit_pop_roundtrip() {
        let q = UpdateQueue::new(4);
        let mut batch = UpdateBatch::new();
        batch.insert(1, 2);
        let slot = q.try_submit(batch.clone()).expect("submit");
        let (popped, writer_slot) = q.pop().expect("pop");
        assert_eq!(popped, batch);
        writer_slot.fill(UpdateOutcome::Acked {
            seq: 1,
            generation: 1,
            ops: 1,
        });
        assert_eq!(
            slot.wait(),
            UpdateOutcome::Acked {
                seq: 1,
                generation: 1,
                ops: 1
            }
        );
    }

    #[test]
    fn full_queue_refuses() {
        let q = UpdateQueue::new(1);
        q.try_submit(UpdateBatch::new()).expect("first fits");
        assert_eq!(
            q.try_submit(UpdateBatch::new()).expect_err("should refuse"),
            SubmitError::QueueFull
        );
    }

    #[test]
    fn closed_queue_refuses_but_drains() {
        let q = UpdateQueue::new(4);
        q.try_submit(UpdateBatch::new()).expect("submit");
        q.close();
        assert_eq!(
            q.try_submit(UpdateBatch::new()).expect_err("should refuse"),
            SubmitError::ShuttingDown
        );
        assert!(q.pop().is_some(), "queued batch still drains");
        assert!(q.pop().is_none(), "then the writer sees the close");
    }

    #[test]
    fn pop_blocks_until_submit() {
        let q = Arc::new(UpdateQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = thread::spawn(move || q2.pop().is_some());
        thread::sleep(std::time::Duration::from_millis(20));
        q.try_submit(UpdateBatch::new()).expect("submit");
        assert!(popper.join().expect("join"));
    }

    #[test]
    fn meter_sheds_when_saturated_and_recovers() {
        let meter = WorkMeter::new(100, 1_000_000);
        assert!(meter.try_admit());
        let stats = MaintenanceStats {
            support_updates: 90,
            affected_edges: 20,
            ..Default::default()
        };
        meter.record(&stats);
        assert!(!meter.try_admit(), "110 units > 100 budget");
        // At 1M units/sec the debt is forgiven in ~110 µs.
        thread::sleep(std::time::Duration::from_millis(5));
        assert!(meter.try_admit(), "leak should have drained the debt");
    }

    #[test]
    fn fallback_charges_full_budget() {
        let meter = WorkMeter::new(1 << 30, 1);
        let stats = MaintenanceStats {
            fell_back: true,
            ..Default::default()
        };
        meter.record(&stats);
        assert!(!meter.try_admit());
    }

    #[test]
    fn double_fill_keeps_first_outcome() {
        let slot = ResponseSlot::new();
        slot.fill(UpdateOutcome::Rejected("first".into()));
        slot.fill(UpdateOutcome::ShuttingDown);
        assert_eq!(slot.wait(), UpdateOutcome::Rejected("first".into()));
    }
}
