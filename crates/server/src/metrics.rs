//! Lock-free server counters and the `stats` verb's snapshot.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ latency buckets: bucket `i` counts queries whose
/// latency `t` (in microseconds) satisfies `2^i <= t+1 < 2^(i+1)`, so
/// bucket 0 is sub-microsecond and bucket 63 is "longer than the age of
/// the universe" — the histogram can never overflow its range.
const BUCKETS: usize = 64;

/// Monotone counters every reader and the writer bump as they go. All
/// loads and stores are `Relaxed`: each counter is an independent
/// statistic, nothing synchronizes *through* them, and a `stats`
/// snapshot is explicitly allowed to be torn across counters (it is a
/// monitoring read, not a consistency point).
#[derive(Debug)]
pub struct ServerMetrics {
    /// Query lines answered (blank/comment lines excluded).
    queries_served: AtomicU64,
    /// Update batches durably acknowledged.
    updates_acked: AtomicU64,
    /// Update batches shed by admission control (meter saturated or
    /// queue full) before reaching the writer.
    updates_shed: AtomicU64,
    /// Update batches the writer rejected (validation or store
    /// failure).
    updates_rejected: AtomicU64,
    /// Generations published (the initial generation not counted).
    generations_published: AtomicU64,
    /// Per-query latency histogram, log₂ microsecond buckets.
    latency: [AtomicU64; BUCKETS],
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self {
            queries_served: AtomicU64::new(0),
            updates_acked: AtomicU64::new(0),
            updates_shed: AtomicU64::new(0),
            updates_rejected: AtomicU64::new(0),
            generations_published: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one answered query that took `micros` microseconds.
    pub fn record_query(&self, micros: u64) {
        // Relaxed: independent statistic, see the type docs.
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        let bucket = 63 - micros.saturating_add(1).leading_zeros() as usize;
        // Relaxed: independent statistic, see the type docs.
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one durably acknowledged update batch.
    pub fn record_ack(&self) {
        // Relaxed: independent statistic, see the type docs.
        self.updates_acked.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shed update batch.
    pub fn record_shed(&self) {
        // Relaxed: independent statistic, see the type docs.
        self.updates_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one rejected update batch.
    pub fn record_reject(&self) {
        // Relaxed: independent statistic, see the type docs.
        self.updates_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one published generation.
    pub fn record_publish(&self) {
        // Relaxed: independent statistic, see the type docs.
        self.generations_published.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter plus derived latency
    /// percentiles. Counters may be mutually torn (see the type docs).
    pub fn snapshot(&self) -> StatsSnapshot {
        let histogram: Vec<u64> = self
            .latency
            .iter()
            // Relaxed: independent statistics, see the type docs.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        StatsSnapshot {
            // Relaxed: independent statistic, see the type docs.
            queries_served: self.queries_served.load(Ordering::Relaxed),
            // Relaxed: independent statistic, see the type docs.
            updates_acked: self.updates_acked.load(Ordering::Relaxed),
            // Relaxed: independent statistic, see the type docs.
            updates_shed: self.updates_shed.load(Ordering::Relaxed),
            // Relaxed: independent statistic, see the type docs.
            updates_rejected: self.updates_rejected.load(Ordering::Relaxed),
            // Relaxed: independent statistic, see the type docs.
            generations_published: self.generations_published.load(Ordering::Relaxed),
            p50_us: percentile(&histogram, 0.50),
            p99_us: percentile(&histogram, 0.99),
            // Memory accounting is merged in by the handle, which knows
            // the published generation; the raw counters do not.
            graph_bytes: 0,
            index_peak_bytes: 0,
        }
    }
}

/// The upper bound (in µs) of the bucket holding the `q`-quantile
/// sample, or 0 for an empty histogram. Bucket resolution is a factor
/// of two — precise enough to tell 100 µs from 10 ms, which is what a
/// serving dashboard needs.
fn percentile(histogram: &[u64], q: f64) -> u64 {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return 0;
    }
    // floor(q * total) + 1, clamped to total: the exclusive nearest
    // rank, so a 1-in-100 slow tail still lands in the p99 bucket.
    let rank = ((q * total as f64).floor() as u64 + 1).min(total);
    let mut seen = 0u64;
    for (i, &count) in histogram.iter().enumerate() {
        seen += count;
        if seen >= rank {
            // Upper bound of bucket i: latencies t with t+1 < 2^(i+1).
            return (1u64 << (i + 1).min(63)) - 1;
        }
    }
    u64::MAX
}

/// Point-in-time server statistics, as returned by the `stats` protocol
/// verb and [`ServerHandle::stats`](crate::ServerHandle::stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Query lines answered.
    pub queries_served: u64,
    /// Update batches durably acknowledged.
    pub updates_acked: u64,
    /// Update batches shed by admission control.
    pub updates_shed: u64,
    /// Update batches rejected by the writer.
    pub updates_rejected: u64,
    /// Generations published after the initial one.
    pub generations_published: u64,
    /// Median query latency (µs, bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile query latency (µs, bucket upper bound).
    pub p99_us: u64,
    /// Resident bytes of the published generation's graph.
    pub graph_bytes: u64,
    /// Peak BE-Index bytes of the decomposition that produced the
    /// published generation (0 when the generation was loaded from a
    /// snapshot and never decomposed in this process).
    pub index_peak_bytes: u64,
}

impl fmt::Display for StatsSnapshot {
    /// One line of `key=value` pairs — the exact `stats` verb response.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stats queries={} acked={} shed={} rejected={} generations={} p50_us={} p99_us={} \
             graph_bytes={} index_peak_bytes={}",
            self.queries_served,
            self.updates_acked,
            self.updates_shed,
            self.updates_rejected,
            self.generations_published,
            self.p50_us,
            self.p99_us,
            self.graph_bytes,
            self.index_peak_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let m = ServerMetrics::new();
        // 99 fast queries (~1 µs) and one slow one (~1 ms).
        for _ in 0..99 {
            m.record_query(1);
        }
        m.record_query(1000);
        let s = m.snapshot();
        assert_eq!(s.queries_served, 100);
        assert!(
            s.p50_us <= 3,
            "p50 {} should be in the fast bucket",
            s.p50_us
        );
        assert!(
            (512..=2047).contains(&s.p99_us),
            "p99 {} should cover the 1 ms query",
            s.p99_us
        );
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = ServerMetrics::new().snapshot();
        assert_eq!(s, StatsSnapshot::default());
    }

    #[test]
    fn display_is_single_line_key_value() {
        let m = ServerMetrics::new();
        m.record_ack();
        m.record_publish();
        let text = m.snapshot().to_string();
        assert!(!text.contains('\n'));
        assert!(text.starts_with("stats "));
        assert!(text.contains("acked=1"));
        assert!(text.contains("generations=1"));
    }

    #[test]
    fn huge_latency_does_not_overflow() {
        let m = ServerMetrics::new();
        m.record_query(u64::MAX);
        let s = m.snapshot();
        assert_eq!(s.queries_served, 1);
        assert!(s.p99_us > 0);
    }
}
