//! The server proper: single writer thread, reader sessions, and the
//! stdin/TCP transports.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bigraph::{Error, Result};
use bitruss_dynamic::{DurableEngine, UpdateBatch};

use crate::generation::{Generation, Published};
use crate::metrics::{ServerMetrics, StatsSnapshot};
use crate::protocol::{parse_request, Request};
use crate::queue::{SubmitError, UpdateOutcome, UpdateQueue, WorkMeter};

/// Tuning knobs for [`BitrussServer::start`]. Start from
/// [`ServerConfig::default`] and override fields.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Reader threads the TCP transport runs (stdin mode serves on the
    /// calling thread; the writer thread is always exactly one).
    pub readers: usize,
    /// In-flight update batches the bounded queue holds before
    /// submissions bounce with `shed: queue full`.
    pub queue_capacity: usize,
    /// Outstanding maintenance work (support-update units) above which
    /// the admission meter sheds updates.
    pub work_budget: u64,
    /// Work units the meter forgives per second of wall time.
    pub work_leak_per_sec: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            readers: 4,
            queue_capacity: 256,
            // ~64M outstanding support updates (a few seconds of
            // maintenance on the reference datasets) before shedding;
            // forgiven at ~4M units/sec.
            work_budget: 1 << 26,
            work_leak_per_sec: 1 << 22,
        }
    }
}

/// Everything the reader sessions, the writer thread, and the transports
/// share. All interior mutability — a session only ever holds an `&`.
#[derive(Debug)]
struct Shared {
    published: Published,
    queue: UpdateQueue,
    meter: WorkMeter,
    metrics: ServerMetrics,
    /// Set by the `shutdown` verb or [`ServerHandle::shutdown`]: the
    /// accept loop stops, sessions end after their current line, and
    /// new updates are refused.
    stopping: AtomicBool,
}

/// The server constructor. Holds no state itself —
/// [`BitrussServer::start`] hands everything to the returned
/// [`ServerHandle`].
#[derive(Debug)]
pub struct BitrussServer;

impl BitrussServer {
    /// Takes ownership of a recovered [`DurableEngine`], publishes its
    /// current state as generation 0, and spawns the single writer
    /// thread. The returned handle serves queries immediately; attach
    /// transports with [`ServerHandle::serve_connection`] /
    /// [`ServerHandle::serve_tcp`], and always end with
    /// [`ServerHandle::shutdown`] to drain and recover the store.
    pub fn start(durable: DurableEngine, config: ServerConfig) -> ServerHandle {
        let initial = Generation {
            number: 0,
            engine: durable.engine().clone_shared(),
        };
        let shared = Arc::new(Shared {
            published: Published::new(initial),
            queue: UpdateQueue::new(config.queue_capacity),
            meter: WorkMeter::new(config.work_budget, config.work_leak_per_sec),
            metrics: ServerMetrics::new(),
            stopping: AtomicBool::new(false),
        });
        let writer_shared = Arc::clone(&shared);
        let writer = thread::spawn(move || writer_loop(durable, &writer_shared));
        ServerHandle {
            shared,
            config,
            writer: Some(writer),
        }
    }
}

/// Drains the update queue until it is closed and empty. Each batch:
/// validate → journal+fsync (the ack point) → apply in memory → publish
/// the successor generation. Exits with a best-effort checkpoint (a
/// failed checkpoint loses nothing — every acked batch is already in
/// the journal and replays on the next open).
fn writer_loop(mut durable: DurableEngine, shared: &Shared) -> DurableEngine {
    let mut seq = 0u64;
    let mut store_failed = false;
    while let Some((batch, slot)) = shared.queue.pop() {
        if store_failed {
            shared.metrics.record_reject();
            slot.fill(UpdateOutcome::Rejected(
                "store failed earlier in this run; writes are fenced".into(),
            ));
            continue;
        }
        match durable.apply(&batch) {
            Ok(stats) => {
                seq += 1;
                shared.meter.record(&stats);
                let ops = stats.deleted_edges + stats.inserted_edges;
                let generation = if ops > 0 {
                    let number = shared.published.current().number + 1;
                    shared.published.publish(Arc::new(Generation {
                        number,
                        engine: durable.engine().clone_shared(),
                    }));
                    shared.metrics.record_publish();
                    number
                } else {
                    // No-op batch: durability is trivial and nothing new
                    // to publish — ack against the current generation.
                    shared.published.current().number
                };
                shared.metrics.record_ack();
                slot.fill(UpdateOutcome::Acked {
                    seq,
                    generation,
                    ops,
                });
            }
            Err(Error::Invariant(msg)) => {
                // A batch the graph rejects (duplicate insert, missing
                // delete, out-of-range vertex). State unchanged; keep
                // serving.
                shared.metrics.record_reject();
                slot.fill(UpdateOutcome::Rejected(msg));
            }
            Err(e) => {
                // Journaling failed (I/O). The in-memory state is
                // unchanged and reads stay correct, but the ack
                // guarantee is gone — fence all further writes.
                store_failed = true;
                shared.metrics.record_reject();
                slot.fill(UpdateOutcome::Rejected(format!("store failure: {e}")));
            }
        }
    }
    if !store_failed {
        // Fold the journal into a fresh snapshot generation so the next
        // open replays nothing. Best-effort by design: see above.
        let _ = durable.checkpoint();
    }
    durable
}

/// What one protocol line asks the session to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineReply {
    /// Send this response line, keep the session open.
    Text(String),
    /// Blank/comment line — send nothing.
    Silent,
    /// `shutdown` verb: acknowledge with `bye` and end the session;
    /// the whole server begins draining.
    Goodbye,
}

/// A running server. Cheap to share by reference across reader threads;
/// consumed by [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    config: ServerConfig,
    writer: Option<JoinHandle<DurableEngine>>,
}

impl ServerHandle {
    /// Pins and returns the currently published generation. The
    /// snapshot stays valid and immutable for as long as the caller
    /// holds it, regardless of concurrent publications.
    pub fn current(&self) -> Arc<Generation> {
        self.shared.published.current()
    }

    /// The currently published generation number.
    pub fn generation_number(&self) -> u64 {
        self.shared.published.current().number
    }

    /// A point-in-time counter snapshot (the `stats` verb's payload),
    /// including the memory accounting of the published generation.
    pub fn stats(&self) -> StatsSnapshot {
        let mut stats = self.shared.metrics.snapshot();
        let generation = self.shared.published.current();
        stats.graph_bytes = generation.engine.graph().memory_bytes() as u64;
        stats.index_peak_bytes = generation
            .engine
            .metrics()
            .and_then(|m| m.memory)
            .map_or(0, |r| r.index_peak_bytes as u64);
        stats
    }

    /// Answers one engine query line against a single pinned
    /// generation, recording latency. Same contract as
    /// [`BitrussEngine::query_line`](bitruss_core::BitrussEngine::query_line):
    /// `None` for blank/comment lines, rendered `error:` text for bad
    /// queries.
    ///
    /// # Errors
    ///
    /// Only engine-level failures (a cancelled hierarchy build).
    pub fn query(&self, line: &str) -> Result<Option<String>> {
        let generation = self.shared.published.current();
        let started = Instant::now();
        let answer = generation.engine.query_line(line)?;
        if answer.is_some() {
            self.shared
                .metrics
                .record_query(started.elapsed().as_micros() as u64);
        }
        Ok(answer)
    }

    /// Submits one update batch and blocks until it is durably
    /// acknowledged, rejected, or shed. The ack carries the generation
    /// the batch became visible in.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when admission control refuses the batch before
    /// it reaches the writer (meter saturated, queue full, draining).
    pub fn submit_update(
        &self,
        batch: UpdateBatch,
    ) -> std::result::Result<UpdateOutcome, SubmitError> {
        // Relaxed: advisory fast-path check only — the queue's own
        // closed flag (under its mutex) is the authoritative gate.
        if self.shared.stopping.load(Ordering::Relaxed) {
            self.shared.metrics.record_shed();
            return Err(SubmitError::ShuttingDown);
        }
        if !self.shared.meter.try_admit() {
            self.shared.metrics.record_shed();
            return Err(SubmitError::Overloaded);
        }
        match self.shared.queue.try_submit(batch) {
            Ok(slot) => Ok(slot.wait()),
            Err(e) => {
                self.shared.metrics.record_shed();
                Err(e)
            }
        }
    }

    /// Serves one protocol line: parse, dispatch, render. Never fails
    /// on client mistakes — malformed lines come back as `error: …`
    /// replies.
    ///
    /// # Errors
    ///
    /// Only engine-level failures (a cancelled hierarchy build).
    pub fn handle_line(&self, line: &str) -> Result<LineReply> {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(rendered) => return Ok(LineReply::Text(rendered)),
        };
        Ok(match request {
            Request::Query(raw) => match self.query(&raw)? {
                Some(text) => LineReply::Text(text),
                None => LineReply::Silent,
            },
            Request::Update(batch) => LineReply::Text(match self.submit_update(batch) {
                Ok(UpdateOutcome::Acked {
                    seq,
                    generation,
                    ops,
                }) => format!("acked seq={seq} ops={ops} generation={generation}"),
                Ok(UpdateOutcome::Rejected(reason)) => format!("error: update: {reason}"),
                Ok(UpdateOutcome::ShuttingDown) => {
                    SubmitError::ShuttingDown.as_response().to_string()
                }
                Err(e) => e.as_response().to_string(),
            }),
            Request::Stats => LineReply::Text(self.stats().to_string()),
            Request::Generation => {
                LineReply::Text(format!("generation {}", self.generation_number()))
            }
            Request::Shutdown => LineReply::Goodbye,
        })
    }

    /// Serves a whole session: one request per line from `reader`, one
    /// response per request to `writer`, flushed per line. Ends at EOF
    /// or on the `shutdown` verb (which also puts the whole server into
    /// its draining state — see `docs/SERVER.md`). Returns the number
    /// of responses written.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on transport failures; engine-level failures from
    /// the query path.
    pub fn serve_connection<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> Result<u64> {
        let mut responses = 0u64;
        for line in reader.lines() {
            let line = line?;
            match self.handle_line(&line)? {
                LineReply::Text(text) => {
                    writeln!(writer, "{text}")?;
                    writer.flush()?;
                    responses += 1;
                }
                LineReply::Silent => {}
                LineReply::Goodbye => {
                    self.request_stop();
                    writeln!(writer, "bye")?;
                    writer.flush()?;
                    responses += 1;
                    break;
                }
            }
        }
        Ok(responses)
    }

    /// Accepts TCP connections on `listener` and serves each on one of
    /// `config.readers` pooled reader threads until
    /// [`ServerHandle::request_stop`] (or a client's `shutdown` verb)
    /// flips the stop flag. Connections already being served finish
    /// their current session; queued-but-unaccepted connections are
    /// dropped. Returns once every reader thread has exited.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the listener cannot be switched to non-blocking
    /// accept polling.
    pub fn serve_tcp(&self, listener: TcpListener) -> Result<()> {
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let readers = self.config.readers.max(1);
        thread::scope(|scope| {
            for _ in 0..readers {
                let rx = Arc::clone(&rx);
                scope.spawn(move || {
                    loop {
                        // Lock only around the recv handoff (the Rust
                        // book's worker-pool idiom): the next idle
                        // reader parks here while the rest serve.
                        let next = {
                            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.recv()
                        };
                        let Ok(stream) = next else {
                            return; // sender dropped: server is draining
                        };
                        let Ok(peer) = stream.try_clone() else {
                            continue; // dead socket; next connection
                        };
                        // A failed session (client vanished mid-line)
                        // must not take the reader thread with it.
                        let _ = self.serve_connection(BufReader::new(peer), &stream);
                    }
                });
            }
            // Relaxed: the flag is a latched stop request; readers
            // observing it one poll interval late is harmless.
            while !self.shared.stopping.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        // Send fails only when every reader exited
                        // (stop already requested) — drop the socket.
                        let _ = tx.send(stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    // Transient accept errors (aborted handshake): skip.
                    Err(_) => {}
                }
            }
            drop(tx);
        });
        Ok(())
    }

    /// Flips the latched stop flag: the accept loop winds down and
    /// sessions refuse further updates. Idempotent; does not block.
    /// Reads keep working until [`ServerHandle::shutdown`].
    pub fn request_stop(&self) {
        // Relaxed: latched advisory flag, see `serve_tcp`.
        self.shared.stopping.store(true, Ordering::Relaxed);
    }

    /// Gracefully shuts down: stops accepting work, closes the update
    /// queue, waits for the writer to drain and acknowledge every
    /// queued batch, checkpoints the store (best-effort), and returns
    /// the recovered [`DurableEngine`] plus the final counters.
    ///
    /// # Errors
    ///
    /// [`Error::Invariant`] if the writer thread died or shutdown ran
    /// twice (the store is then unrecoverable from this handle).
    pub fn shutdown(mut self) -> Result<(DurableEngine, StatsSnapshot)> {
        self.request_stop();
        self.shared.queue.close();
        let writer = self
            .writer
            .take()
            .ok_or_else(|| Error::Invariant("server writer already shut down".into()))?;
        let durable = writer
            .join()
            .map_err(|_| Error::Invariant("server writer thread panicked".into()))?;
        Ok((durable, self.stats()))
    }
}

impl Drop for ServerHandle {
    /// A dropped handle still drains the writer (acks are promises) —
    /// but prefer [`ServerHandle::shutdown`], which also returns the
    /// store.
    fn drop(&mut self) {
        self.request_stop();
        self.shared.queue.close();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}
